//! # `open-oodb` — a reproduction of the Open OODB Query Optimizer
//!
//! This facade crate re-exports the whole workspace of
//! *Experiences Building the Open OODB Query Optimizer*
//! (Blakeley, McKenna, Graefe; SIGMOD 1993), reproduced in Rust:
//!
//! | Layer | Crate |
//! |---|---|
//! | Object data model, schema, catalog (Table 1) | [`object`] |
//! | Simulated storage manager, disk, buffer pool, indexes | [`storage`] |
//! | Logical + physical algebra (with the novel `Mat` operator) | [`algebra`] |
//! | Volcano-style optimizer generator framework | [`volcano`] |
//! | The Open OODB optimizer: rules, properties, costs | [`core`] |
//! | Query execution engine | [`exec`] |
//! | ZQL\[C++\]-flavored language front end + simplification | [`zql`] |
//!
//! ## Quickstart
//!
//! ```
//! use open_oodb::prelude::*;
//!
//! // The paper's schema and Table 1 catalog.
//! let m = open_oodb::object::paper::paper_model();
//!
//! // Compile a ZQL query (Query 2 of the paper)...
//! let q = open_oodb::zql::compile(
//!     r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#,
//!     &m.schema,
//!     &m.catalog,
//! ).unwrap();
//!
//! // ...optimize it...
//! let optimizer = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules());
//! let out = optimizer.optimize(&q.plan, q.result_vars).unwrap();
//!
//! // ...and the collapse-to-index-scan rule turned the whole query into
//! // one path-index scan, exactly as in the paper's Figure 8.
//! assert!(matches!(out.plan.op, PhysicalOp::IndexScan { .. }));
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries regenerating every table and figure of the paper.

#![forbid(unsafe_code)]

pub use oodb_algebra as algebra;
pub use oodb_core as core;
pub use oodb_exec as exec;
pub use oodb_fault as fault;
pub use oodb_mem as mem;
pub use oodb_object as object;
pub use oodb_server as server;
pub use oodb_service as service;
pub use oodb_storage as storage;
pub use oodb_telemetry as telemetry;
pub use oodb_wal as wal;
pub use volcano;
pub use zql;

/// The names most programs need.
pub mod prelude {
    pub use oodb_algebra::{
        display::{render_logical, render_physical},
        LogicalOp, LogicalPlan, PhysicalOp, PhysicalPlan, QueryBuilder, QueryEnv, VarSet,
    };
    pub use oodb_core::{greedy_plan, Cost, CostParams, OpenOodb, OptimizerConfig};
    pub use oodb_exec::{execute, execute_traced, try_execute, try_execute_traced, Executor};
    pub use oodb_fault::{CancelToken, FaultConfig, FaultInjector, RunLimits};
    pub use oodb_mem::{MemoryGovernor, MemoryGrant, PressureLevel};
    pub use oodb_object::paper::{paper_model, paper_model_scaled};
    pub use oodb_object::{Catalog, Schema, Value};
    pub use oodb_service::{QueryService, SubmitOptions, WorkerPool};
    pub use oodb_storage::{generate_paper_db, GenConfig, Store};
    pub use oodb_telemetry::{MetricsRegistry, OpTrace};
    pub use oodb_wal::{recover, FlushPolicy, WalSession};
}
