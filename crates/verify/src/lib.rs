//! # `oodb-verify` — static plan analysis
//!
//! The paper's central claim is that a generator-built optimizer stays
//! correct as rules, properties, and algorithms are added. This crate is
//! the machine-checked notion of "a valid plan" backing that claim: a
//! static analyzer over both logical algebra expressions and physical
//! plans, usable as a library pass, from the CLI (`EXPLAIN VERIFY` /
//! `\verify`), and as a debug-mode optimizer hook (`verify_search`).
//!
//! Three passes, all producing structured [`Diagnostic`]s — never panics:
//!
//! * **Plan linter** ([`lint_logical`], [`lint_physical`]) — a typed walk
//!   of the operator tree checking variable scoping/binding (every
//!   variable consumed is produced upstream; `Mat`/`Unnest` introduce
//!   exactly their declared bindings), `Mat`-chain type correctness
//!   against the catalog schema (each link's source field is a
//!   reference / set-of-references whose target extent matches), predicate
//!   and projection attribute resolution, and set-op scope agreement.
//! * **Property checker** ([`check_physical_props`]) — re-derives the
//!   delivered physical properties bottom-up (presence in memory, sort
//!   order) and verifies every operator's requirements are met, i.e. that
//!   enforcers (assembly, sort) are placed where needed and never
//!   redundantly.
//! * **Cost/estimate sanity** ([`check_costs`]) — non-negative, finite,
//!   monotone-non-decreasing cumulative cost up the tree, and cardinality
//!   estimates within bounds derivable from the operator semantics.
//! * **Interval cardinality audit** ([`check_card_intervals`],
//!   [`check_actual_cards`]) — propagates sound `[lo, hi]` row-count
//!   intervals ([`oodb_algebra::CardInterval`]) bottom-up through logical
//!   and physical plans (exact scans, predicate relaxation, reference
//!   equi-join containment, set-op bounds), flagging any *estimate*
//!   outside its interval at verify time and any *measured*
//!   [`OpTrace`] row count outside it at execute time.
//!
//! [`verify_physical`] composes the plan-level passes for a winning plan.

#![forbid(unsafe_code)]

use oodb_algebra::{
    CardInterval, LogicalOp, LogicalPlan, Operand, PhysProps, PhysicalOp, PhysicalPlan, PredId,
    QueryEnv, SortSpec, VarId, VarOrigin, VarSet,
};
use oodb_object::{FieldId, FieldKind, TypeId};
use oodb_telemetry::OpTrace;
use std::fmt;

/// Stable names of the invariants the verifier checks. Diagnostics carry
/// one of these in [`Diagnostic::check`]; tests and telemetry key on them.
pub mod checks {
    /// Operator child count disagrees with its declared arity.
    pub const ARITY: &str = "shape/arity";
    /// A predicate id does not resolve in the environment's arena.
    pub const DANGLING_PRED: &str = "shape/dangling-pred";
    /// A variable id does not resolve in the environment's scope arena.
    pub const DANGLING_VAR: &str = "shape/dangling-var";
    /// An index id does not resolve in the catalog.
    pub const DANGLING_INDEX: &str = "shape/dangling-index";
    /// Assembly window of zero open references.
    pub const ZERO_WINDOW: &str = "shape/zero-window";
    /// Merge join predicate is not an attribute equality.
    pub const MERGE_JOIN_PRED: &str = "shape/merge-join-pred";
    /// Pointer join predicate is not a single reference equality.
    pub const POINTER_JOIN_PRED: &str = "shape/pointer-join-pred";
    /// A consumed variable is not produced by any input.
    pub const UNBOUND_VAR: &str = "scope/unbound-var";
    /// A variable is introduced twice along one tuple stream.
    pub const DUPLICATE_BINDING: &str = "scope/duplicate-binding";
    /// Set-operation inputs bind different variable sets.
    pub const SETOP_MISMATCH: &str = "scope/setop-mismatch";
    /// An operator's declared output variable has the wrong origin kind.
    pub const ORIGIN_MISMATCH: &str = "binding/origin-mismatch";
    /// `Mat` through a field that is a plain attribute, not a reference.
    pub const MAT_OF_ATTRIBUTE: &str = "type/mat-of-attribute";
    /// `Mat` through a set-valued field (requires `Unnest`).
    pub const MAT_OF_SET: &str = "type/mat-of-set";
    /// `Unnest` of a field that is not set-valued.
    pub const UNNEST_OF_NON_SET: &str = "type/unnest-of-non-set";
    /// A link field is not declared on the source variable's type.
    pub const FIELD_NOT_ON_SOURCE: &str = "type/field-not-on-source";
    /// The output variable's type disagrees with the link's target type.
    pub const TARGET_TYPE: &str = "type/target-type-mismatch";
    /// The link's catalog extent holds a different element type.
    pub const EXTENT_TYPE: &str = "type/extent-type-mismatch";
    /// Dereference (`Mat` without a field) of a non-reference variable.
    pub const DEREF_OF_NON_REF: &str = "type/deref-of-non-ref";
    /// An operator reads an object that no input delivers in memory.
    pub const INPUT_NOT_IN_MEMORY: &str = "props/input-not-in-memory";
    /// The root does not deliver the query's required memory residency.
    pub const ROOT_MEMORY: &str = "props/root-memory";
    /// The root does not deliver the query's required sort order.
    pub const ROOT_ORDER: &str = "props/root-order";
    /// A merge-join input is not sorted on its join key.
    pub const MERGE_INPUT_UNSORTED: &str = "props/merge-input-unsorted";
    /// A hash-join reference equality whose OID side is not the left
    /// (build) input — the algorithm is directional.
    pub const HASH_BUILD_SIDE: &str = "props/hash-build-side";
    /// An assembly materializes a variable its input already delivers.
    pub const REDUNDANT_ASSEMBLY: &str = "enforcer/redundant-assembly";
    /// A per-operator cost estimate is negative.
    pub const COST_NEGATIVE: &str = "cost/negative";
    /// A cost or cardinality estimate is NaN or infinite.
    pub const COST_NON_FINITE: &str = "cost/non-finite";
    /// Cumulative cost decreases from child to parent.
    pub const COST_NON_MONOTONE: &str = "cost/non-monotone";
    /// A cardinality estimate is negative.
    pub const CARD_NEGATIVE: &str = "card/negative";
    /// A cardinality estimate exceeds its derivable bound.
    pub const CARD_BOUND: &str = "card/bound";
    /// A cardinality estimate escapes its derivable `[lo, hi]` interval —
    /// the cost model produced an infeasible estimate.
    pub const CARD_INTERVAL: &str = "card/interval";
    /// A measured operator row count escapes its derivable interval —
    /// catalog statistics are stale (or an operator is miscounting).
    pub const ACTUAL_CARD: &str = "card/actual";
}

/// One verifier finding: which invariant fired, where in the plan, and
/// expected vs actual. Diagnostics are data — callers count or print them;
/// the verifier itself never panics on a malformed plan.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable name of the violated invariant (see [`checks`]).
    pub check: &'static str,
    /// Operator path from the root: the child index taken at each level.
    pub path: Vec<usize>,
    /// Display name of the operator at `path`.
    pub op: String,
    /// What the invariant requires.
    pub expected: String,
    /// What the plan actually contains.
    pub actual: String,
}

impl Diagnostic {
    /// Renders the operator path as `root`, `root.0`, `root.0.1`, ...
    pub fn path_string(&self) -> String {
        let mut s = String::from("root");
        for i in &self.path {
            s.push('.');
            s.push_str(&i.to_string());
        }
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] at {} ({}): expected {}, got {}",
            self.check,
            self.path_string(),
            self.op,
            self.expected,
            self.actual
        )
    }
}

/// Lints a logical algebra expression. Empty result = well-formed.
pub fn lint_logical(env: &QueryEnv, plan: &LogicalPlan) -> Vec<Diagnostic> {
    let mut cx = Cx::new(env);
    cx.walk_logical(plan);
    cx.diags
}

/// Lints a physical plan's shape, scoping, and link types.
pub fn lint_physical(env: &QueryEnv, plan: &PhysicalPlan) -> Vec<Diagnostic> {
    let mut cx = Cx::new(env);
    cx.walk_physical(plan);
    cx.diags
}

/// Re-derives delivered physical properties bottom-up and checks every
/// operator's requirements, plus the root's `required` properties.
pub fn check_physical_props(
    env: &QueryEnv,
    plan: &PhysicalPlan,
    required: PhysProps,
) -> Vec<Diagnostic> {
    let mut cx = Cx::new(env);
    let d = cx.walk_props(plan);
    if !required.in_memory.is_subset(d.mem) {
        let missing = required.in_memory.difference(d.mem);
        cx.emit(
            checks::ROOT_MEMORY,
            plan.op.name(),
            format!("{} delivered in memory", cx.vars_string(required.in_memory)),
            format!("{} missing", cx.vars_string(missing)),
        );
    }
    if let Some(o) = required.order {
        if let OrderInfo::Known(delivered) = d.order {
            if delivered != Some(o) {
                cx.emit(
                    checks::ROOT_ORDER,
                    plan.op.name(),
                    format!("output ordered by {}", cx.sort_string(Some(o))),
                    format!("ordered by {}", cx.sort_string(delivered)),
                );
            }
        }
    }
    cx.diags
}

/// Cost/estimate sanity over an annotated physical plan: finite,
/// non-negative per-operator estimates, monotone cumulative cost, and
/// cardinalities within bounds derivable from operator semantics.
pub fn check_costs(env: &QueryEnv, plan: &PhysicalPlan) -> Vec<Diagnostic> {
    let mut cx = Cx::new(env);
    cx.walk_cost(plan);
    cx.diags
}

/// Interval cardinality audit of an annotated physical plan: propagates
/// `[lo, hi]` row-count bounds bottom-up and flags every node whose
/// *estimate* escapes its interval ([`checks::CARD_INTERVAL`]). An
/// estimate inside its interval is *feasible*; one outside it cannot be
/// right whatever the data looks like.
pub fn check_card_intervals(env: &QueryEnv, plan: &PhysicalPlan) -> Vec<Diagnostic> {
    let mut cx = Cx::new(env);
    cx.walk_interval(plan);
    cx.diags
}

/// Audits *measured* row counts against derivable intervals: walks the
/// plan and its [`OpTrace`] in lockstep (the executor's trace tree mirrors
/// the plan, except for children it never runs, e.g. a pointer join's
/// target scan) and flags every operator whose `actual_rows` escapes the
/// interval derived from its children's measured counts
/// ([`checks::ACTUAL_CARD`]). With fresh catalog statistics this is
/// violation-free; a scan outside its interval means the statistics are
/// stale — the static half of feedback-driven re-optimization.
pub fn check_actual_cards(env: &QueryEnv, plan: &PhysicalPlan, trace: &OpTrace) -> Vec<Diagnostic> {
    let mut cx = Cx::new(env);
    cx.walk_actual(plan, trace);
    cx.diags
}

/// The derivable `[lo, hi]` row-count interval of a physical plan's root.
pub fn interval_physical(env: &QueryEnv, plan: &PhysicalPlan) -> CardInterval {
    Cx::new(env).walk_interval(plan)
}

/// The derivable `[lo, hi]` row-count interval of a logical expression's
/// root. Any correct execution of any physical plan for this expression
/// produces a row count inside this interval.
pub fn interval_logical(env: &QueryEnv, plan: &LogicalPlan) -> CardInterval {
    Cx::new(env).logical_interval(plan)
}

/// Full static verification of a winning plan: linter + property checker
/// + cost sanity, with `required` the root goal's physical properties.
pub fn verify_physical(
    env: &QueryEnv,
    plan: &PhysicalPlan,
    required: PhysProps,
) -> Vec<Diagnostic> {
    let mut d = lint_physical(env, plan);
    d.extend(check_physical_props(env, plan, required));
    d.extend(check_costs(env, plan));
    d.extend(check_card_intervals(env, plan));
    d
}

/// The variables a logical expression binds in its output — the linter's
/// bottom-up scope derivation, exposed for harnesses that need to execute
/// an expression as a standalone query.
pub fn logical_vars(env: &QueryEnv, plan: &LogicalPlan) -> VarSet {
    Cx::new(env).walk_logical(plan)
}

/// Relative slack allowed on cardinality bounds (estimates are `f64`
/// chains; exact comparisons would trip on rounding).
const CARD_SLACK: f64 = 1e-6;

/// What the property walk knows about an operator's delivered sort order.
/// `Unknown` keeps the checker conservative: order-dependent diagnostics
/// fire only on positively known mismatches.
#[derive(Clone, Copy, PartialEq, Debug)]
enum OrderInfo {
    /// The delivered order is positively known (possibly "none").
    Known(Option<SortSpec>),
    /// The walk cannot derive the order here; skip order checks above.
    Unknown,
}

/// Delivered physical properties re-derived during the walk.
#[derive(Clone, Copy)]
struct Derived {
    /// Variables bound in the output tuples (scope, not residency).
    produced: VarSet,
    /// Variables whose objects are present in memory.
    mem: VarSet,
    /// Delivered sort order knowledge.
    order: OrderInfo,
}

impl Derived {
    const EMPTY: Derived = Derived {
        produced: VarSet::EMPTY,
        mem: VarSet::EMPTY,
        order: OrderInfo::Known(None),
    };
}

/// Walk context: environment + current path + accumulated diagnostics.
struct Cx<'e> {
    env: &'e QueryEnv,
    path: Vec<usize>,
    diags: Vec<Diagnostic>,
}

impl<'e> Cx<'e> {
    fn new(env: &'e QueryEnv) -> Self {
        Cx {
            env,
            path: Vec::new(),
            diags: Vec::new(),
        }
    }

    fn emit(
        &mut self,
        check: &'static str,
        op: &str,
        expected: impl Into<String>,
        actual: impl Into<String>,
    ) {
        self.diags.push(Diagnostic {
            check,
            path: self.path.clone(),
            op: op.to_string(),
            expected: expected.into(),
            actual: actual.into(),
        });
    }

    fn var_ok(&self, v: VarId) -> bool {
        v.index() < self.env.scopes.len()
    }

    fn pred_ok(&self, p: PredId) -> bool {
        p.index() < self.env.preds.len()
    }

    fn index_ok(&self, id: oodb_object::IndexId) -> bool {
        self.env.catalog.indexes().any(|(i, _)| i == id)
    }

    fn var_name(&self, v: VarId) -> String {
        if self.var_ok(v) {
            self.env.scopes.var(v).name.clone()
        } else {
            format!("v{}", v.index())
        }
    }

    fn vars_string(&self, s: VarSet) -> String {
        let names: Vec<String> = s.iter().map(|v| self.var_name(v)).collect();
        format!("{{{}}}", names.join(", "))
    }

    fn ty_name(&self, t: TypeId) -> String {
        self.env.schema.ty(t).name.clone()
    }

    fn sort_string(&self, o: Option<SortSpec>) -> String {
        match o {
            Some(s) => format!(
                "{}.{}",
                self.var_name(s.var),
                self.env.schema.field(s.field).name
            ),
            None => "nothing".to_string(),
        }
    }

    /// Types compatible up to subtyping in either direction.
    fn compat(&self, a: TypeId, b: TypeId) -> bool {
        a == b || self.env.schema.is_subtype(a, b) || self.env.schema.is_subtype(b, a)
    }

    /// Checks that every variable a predicate mentions is bound upstream.
    fn check_pred_scope(&mut self, pred: PredId, produced: VarSet, op: &str) {
        if !self.pred_ok(pred) {
            self.emit(
                checks::DANGLING_PRED,
                op,
                "an interned predicate id",
                format!("PredId({}) out of range", pred.index()),
            );
            return;
        }
        for v in self.env.preds.vars_used(pred) {
            if !self.var_ok(v) {
                self.emit(
                    checks::DANGLING_VAR,
                    op,
                    "an in-scope variable id",
                    format!("v{} out of range", v.index()),
                );
            } else if !produced.contains(v) {
                self.emit(
                    checks::UNBOUND_VAR,
                    op,
                    format!("predicate variable {} produced upstream", self.var_name(v)),
                    format!("inputs bind only {}", self.vars_string(produced)),
                );
            }
        }
    }

    /// Checks projection item attribute resolution against the scope.
    fn check_items_scope(&mut self, items: &[Operand], produced: VarSet, op: &str) {
        for item in items {
            if let Some(v) = item.var() {
                if !self.var_ok(v) {
                    self.emit(
                        checks::DANGLING_VAR,
                        op,
                        "an in-scope variable id",
                        format!("v{} out of range", v.index()),
                    );
                } else if !produced.contains(v) {
                    self.emit(
                        checks::UNBOUND_VAR,
                        op,
                        format!("projected variable {} produced upstream", self.var_name(v)),
                        format!("inputs bind only {}", self.vars_string(produced)),
                    );
                }
            }
        }
    }

    /// Rebinding guard: an operator may not introduce a variable its input
    /// already binds.
    fn check_intro(&mut self, out: VarId, produced: VarSet, op: &str) {
        if produced.contains(out) {
            self.emit(
                checks::DUPLICATE_BINDING,
                op,
                format!("{} introduced exactly once", self.var_name(out)),
                "already bound by an input".to_string(),
            );
        }
    }

    /// A scan of `coll` may bind `v` iff `coll` is the collection bounding
    /// the population `v` ranges over — its `Get` collection, or (for the
    /// Mat→Join rewrite, which scans a component's extent) the reference
    /// field's declared domain / the target type's extent.
    fn check_scan_domain(&mut self, v: VarId, coll: oodb_object::CollectionId, op: &str) {
        if self.env.var_domain(v) != Some(coll) {
            self.emit(
                checks::ORIGIN_MISMATCH,
                op,
                format!(
                    "{} ranging over scanned collection {}",
                    self.var_name(v),
                    self.env.catalog.collection(coll).name
                ),
                format!(
                    "domain is {}",
                    match self.env.var_domain(v) {
                        Some(c) => self.env.catalog.collection(c).name.clone(),
                        None => "unknown".to_string(),
                    }
                ),
            );
        }
    }

    /// The `Mat`-chain type check: `out` must have a `Mat` origin whose
    /// source is bound upstream, whose link field is a single-valued
    /// reference declared on the source's type, and whose target type and
    /// catalog extent agree with `out`'s declared type.
    fn check_mat_origin(&mut self, out: VarId, produced: VarSet, op: &str) {
        if !self.var_ok(out) {
            self.emit(
                checks::DANGLING_VAR,
                op,
                "an in-scope output variable",
                format!("v{} out of range", out.index()),
            );
            return;
        }
        let sv = self.env.scopes.var(out);
        let VarOrigin::Mat { src, field } = sv.origin else {
            self.emit(
                checks::ORIGIN_MISMATCH,
                op,
                format!("{} bound by a Mat origin", self.var_name(out)),
                format!("{:?}", sv.origin),
            );
            return;
        };
        let out_ty = sv.ty;
        if !self.var_ok(src) {
            self.emit(
                checks::DANGLING_VAR,
                op,
                "a valid Mat source variable",
                format!("v{} out of range", src.index()),
            );
            return;
        }
        if !produced.contains(src) {
            self.emit(
                checks::UNBOUND_VAR,
                op,
                format!("Mat source {} produced upstream", self.var_name(src)),
                format!("inputs bind only {}", self.vars_string(produced)),
            );
        }
        match field {
            Some(f) => self.check_link_field(op, src, f, out_ty, false),
            None => {
                // Dereference of a reference-valued variable (the form a
                // preceding Unnest produces).
                if !self.env.scopes.var(src).is_ref() {
                    self.emit(
                        checks::DEREF_OF_NON_REF,
                        op,
                        format!(
                            "dereference source {} to hold a reference (Unnest origin)",
                            self.var_name(src)
                        ),
                        format!("{:?}", self.env.scopes.var(src).origin),
                    );
                }
            }
        }
    }

    /// Shared link-field validation for `Mat` (`set_valued == false`) and
    /// `Unnest` (`set_valued == true`).
    fn check_link_field(
        &mut self,
        op: &str,
        src: VarId,
        f: FieldId,
        out_ty: TypeId,
        set_valued: bool,
    ) {
        let fd = self.env.schema.field(f);
        let src_ty = self.env.scopes.var(src).ty;
        if !self.env.schema.is_subtype(src_ty, fd.owner) {
            self.emit(
                checks::FIELD_NOT_ON_SOURCE,
                op,
                format!(
                    "link field {} declared on {}'s type {}",
                    fd.name,
                    self.var_name(src),
                    self.ty_name(src_ty)
                ),
                format!("field owner is {}", self.ty_name(fd.owner)),
            );
        }
        let target = match (fd.kind, set_valued) {
            (FieldKind::Attr(a), _) => {
                let check = if set_valued {
                    checks::UNNEST_OF_NON_SET
                } else {
                    checks::MAT_OF_ATTRIBUTE
                };
                self.emit(
                    check,
                    op,
                    format!("{} to be a reference field", fd.name),
                    format!("plain attribute {a:?}"),
                );
                return;
            }
            (FieldKind::Ref(t), false) | (FieldKind::RefSet(t), true) => t,
            (FieldKind::RefSet(_), false) => {
                self.emit(
                    checks::MAT_OF_SET,
                    op,
                    format!("{} to be single-valued (set fields need Unnest)", fd.name),
                    "set of references".to_string(),
                );
                return;
            }
            (FieldKind::Ref(_), true) => {
                self.emit(
                    checks::UNNEST_OF_NON_SET,
                    op,
                    format!("{} to be set-valued", fd.name),
                    "single-valued reference".to_string(),
                );
                return;
            }
        };
        if !self.compat(target, out_ty) {
            self.emit(
                checks::TARGET_TYPE,
                op,
                format!("output typed {}", self.ty_name(target)),
                self.ty_name(out_ty),
            );
        }
        // Each link must lead to an extent whose element type agrees —
        // the catalog half of Mat-chain correctness.
        let extent = self
            .env
            .catalog
            .ref_domain(f)
            .or_else(|| self.env.catalog.extent_of(target));
        if let Some(coll) = extent {
            let et = self.env.catalog.collection(coll).elem_type;
            if !self.compat(et, out_ty) {
                self.emit(
                    checks::EXTENT_TYPE,
                    op,
                    format!(
                        "target extent {} of element type {}",
                        self.env.catalog.collection(coll).name,
                        self.ty_name(et)
                    ),
                    format!("output typed {}", self.ty_name(out_ty)),
                );
            }
        }
    }

    /// The `Unnest` origin check: set-valued field on a bound source.
    fn check_unnest_origin(&mut self, out: VarId, produced: VarSet, op: &str) {
        if !self.var_ok(out) {
            self.emit(
                checks::DANGLING_VAR,
                op,
                "an in-scope output variable",
                format!("v{} out of range", out.index()),
            );
            return;
        }
        let sv = self.env.scopes.var(out);
        let VarOrigin::Unnest { src, field } = sv.origin else {
            self.emit(
                checks::ORIGIN_MISMATCH,
                op,
                format!("{} bound by an Unnest origin", self.var_name(out)),
                format!("{:?}", sv.origin),
            );
            return;
        };
        if !self.var_ok(src) {
            self.emit(
                checks::DANGLING_VAR,
                op,
                "a valid Unnest source variable",
                format!("v{} out of range", src.index()),
            );
            return;
        }
        if !produced.contains(src) {
            self.emit(
                checks::UNBOUND_VAR,
                op,
                format!("Unnest source {} produced upstream", self.var_name(src)),
                format!("inputs bind only {}", self.vars_string(produced)),
            );
        }
        self.check_link_field(op, src, field, sv.ty, true);
    }

    /// The root of a variable's Mat/Unnest origin chain (the base `Get`
    /// variable an index path hangs off).
    fn chain_root(&self, mut v: VarId) -> VarId {
        loop {
            if !self.var_ok(v) {
                return v;
            }
            match self.env.scopes.var(v).origin {
                VarOrigin::Get(_) => return v,
                VarOrigin::Mat { src, .. } | VarOrigin::Unnest { src, .. } => v = src,
            }
        }
    }

    // ------------------------------------------------------------------
    // Logical linter
    // ------------------------------------------------------------------

    /// Walks a logical expression, emitting diagnostics and returning the
    /// variables the expression binds in its output.
    fn walk_logical(&mut self, plan: &LogicalPlan) -> VarSet {
        let op = logical_name(&plan.op);
        if plan.op.arity() != plan.children.len() {
            self.emit(
                checks::ARITY,
                op,
                format!("{} input(s)", plan.op.arity()),
                format!("{}", plan.children.len()),
            );
        }
        let mut kids = Vec::with_capacity(plan.children.len());
        for (i, c) in plan.children.iter().enumerate() {
            self.path.push(i);
            kids.push(self.walk_logical(c));
            self.path.pop();
        }
        let inherit = kids.iter().fold(VarSet::EMPTY, |a, &b| a.union(b));
        match &plan.op {
            LogicalOp::Get { coll, var } => {
                if !self.var_ok(*var) {
                    self.emit(
                        checks::DANGLING_VAR,
                        op,
                        "an in-scope variable",
                        format!("v{} out of range", var.index()),
                    );
                    return VarSet::EMPTY;
                }
                self.check_scan_domain(*var, *coll, op);
                VarSet::single(*var)
            }
            LogicalOp::Select { pred } => {
                self.check_pred_scope(*pred, inherit, op);
                inherit
            }
            LogicalOp::Project { items } => {
                self.check_items_scope(items, inherit, op);
                inherit
            }
            LogicalOp::Join { pred } => {
                if kids.len() == 2 && !kids[0].intersect(kids[1]).is_empty() {
                    self.emit(
                        checks::DUPLICATE_BINDING,
                        op,
                        "disjoint input scopes",
                        format!(
                            "both sides bind {}",
                            self.vars_string(kids[0].intersect(kids[1]))
                        ),
                    );
                }
                self.check_pred_scope(*pred, inherit, op);
                inherit
            }
            LogicalOp::Mat { out } => {
                self.check_intro(*out, inherit, op);
                self.check_mat_origin(*out, inherit, op);
                inherit.insert(*out)
            }
            LogicalOp::Unnest { out } => {
                self.check_intro(*out, inherit, op);
                self.check_unnest_origin(*out, inherit, op);
                inherit.insert(*out)
            }
            LogicalOp::SetOp { .. } => {
                if kids.len() == 2 && kids[0] != kids[1] {
                    self.emit(
                        checks::SETOP_MISMATCH,
                        op,
                        format!("both inputs binding {}", self.vars_string(kids[0])),
                        self.vars_string(kids[1]),
                    );
                }
                kids.first().copied().unwrap_or(VarSet::EMPTY)
            }
        }
    }

    // ------------------------------------------------------------------
    // Physical linter
    // ------------------------------------------------------------------

    /// Walks a physical plan, emitting shape/scope/type diagnostics and
    /// returning the variables bound in the output tuples.
    fn walk_physical(&mut self, plan: &PhysicalPlan) -> VarSet {
        let op = plan.op.name();
        // Pointer join elides its scan side: the emitted plan carries one
        // child even though the algebra declares two.
        let want_arity = match plan.op {
            PhysicalOp::PointerJoin { .. } => 1,
            _ => plan.op.arity(),
        };
        if want_arity != plan.children.len() {
            self.emit(
                checks::ARITY,
                op,
                format!("{want_arity} input(s)"),
                format!("{}", plan.children.len()),
            );
        }
        let mut kids = Vec::with_capacity(plan.children.len());
        for (i, c) in plan.children.iter().enumerate() {
            self.path.push(i);
            kids.push(self.walk_physical(c));
            self.path.pop();
        }
        let inherit = kids.iter().fold(VarSet::EMPTY, |a, &b| a.union(b));
        match &plan.op {
            PhysicalOp::FileScan { coll, var } => {
                if !self.var_ok(*var) {
                    self.emit(
                        checks::DANGLING_VAR,
                        op,
                        "an in-scope variable",
                        format!("v{} out of range", var.index()),
                    );
                    return VarSet::EMPTY;
                }
                self.check_scan_domain(*var, *coll, op);
                VarSet::single(*var)
            }
            PhysicalOp::IndexScan { index, var, pred } => {
                if !self.var_ok(*var) {
                    self.emit(
                        checks::DANGLING_VAR,
                        op,
                        "an in-scope variable",
                        format!("v{} out of range", var.index()),
                    );
                    return VarSet::EMPTY;
                }
                if !self.index_ok(*index) {
                    self.emit(
                        checks::DANGLING_INDEX,
                        op,
                        "a catalog index id",
                        format!("IndexId({}) out of range", index.index()),
                    );
                    return VarSet::single(*var);
                }
                let idx = self.env.catalog.index(*index);
                self.check_scan_domain(*var, idx.collection, op);
                // The scan answers its predicate through the index; the
                // predicate may mention path-chain variables (never
                // materialized), but each must chain back to the base. The
                // base itself is always fair game: the scan binds it
                // directly, whatever its origin — a Mat→Join `Get` scans
                // the reference's domain under the Mat-origin variable.
                if self.pred_ok(*pred) {
                    for v in self.env.preds.vars_used(*pred) {
                        if v != *var && self.chain_root(v) != *var {
                            self.emit(
                                checks::UNBOUND_VAR,
                                op,
                                format!(
                                    "predicate variable {} reachable from scan base {}",
                                    self.var_name(v),
                                    self.var_name(*var)
                                ),
                                format!("chains to {}", self.var_name(self.chain_root(v))),
                            );
                        }
                    }
                } else {
                    self.emit(
                        checks::DANGLING_PRED,
                        op,
                        "an interned predicate id",
                        format!("PredId({}) out of range", pred.index()),
                    );
                }
                VarSet::single(*var)
            }
            PhysicalOp::Filter { pred } => {
                self.check_pred_scope(*pred, inherit, op);
                inherit
            }
            PhysicalOp::HybridHashJoin { pred } => {
                if kids.len() == 2 && !kids[0].intersect(kids[1]).is_empty() {
                    self.emit(
                        checks::DUPLICATE_BINDING,
                        op,
                        "disjoint input scopes",
                        format!(
                            "both sides bind {}",
                            self.vars_string(kids[0].intersect(kids[1]))
                        ),
                    );
                }
                self.check_pred_scope(*pred, inherit, op);
                // Directional: reference equalities resolve against the
                // build (left) side's OIDs.
                if self.pred_ok(*pred) && kids.len() == 2 {
                    for t in &self.env.preds.pred(*pred).terms {
                        if let Some((_, target)) = t.as_ref_eq() {
                            if !kids[0].contains(target) && kids[1].contains(target) {
                                self.emit(
                                    checks::HASH_BUILD_SIDE,
                                    op,
                                    format!(
                                        "reference-equality target {} on the left (build) input",
                                        self.var_name(target)
                                    ),
                                    "bound by the right (probe) input".to_string(),
                                );
                            }
                        }
                    }
                }
                inherit
            }
            PhysicalOp::PointerJoin { pred } => {
                if !self.pred_ok(*pred) {
                    self.emit(
                        checks::DANGLING_PRED,
                        op,
                        "an interned predicate id",
                        format!("PredId({}) out of range", pred.index()),
                    );
                    return inherit;
                }
                let p = self.env.preds.pred(*pred);
                let Some(target) = p.terms.first().and_then(|t| t.as_ref_eq()).map(|(_, t)| t)
                else {
                    self.emit(
                        checks::POINTER_JOIN_PRED,
                        op,
                        "a reference-equality predicate",
                        format!("{} term(s), none a reference equality", p.terms.len()),
                    );
                    return inherit;
                };
                self.check_intro(target, inherit, op);
                // The reference side's variables must come from the
                // surviving (left) input.
                for v in self.env.preds.vars_used(*pred) {
                    if v != target && !inherit.contains(v) {
                        self.emit(
                            checks::UNBOUND_VAR,
                            op,
                            format!("reference variable {} produced upstream", self.var_name(v)),
                            format!("input binds only {}", self.vars_string(inherit)),
                        );
                    }
                }
                inherit.insert(target)
            }
            PhysicalOp::Assembly { targets, window } => {
                if *window == 0 {
                    self.emit(
                        checks::ZERO_WINDOW,
                        op,
                        "a window of at least one open reference",
                        "0".to_string(),
                    );
                }
                let mut produced = inherit;
                for &t in targets {
                    self.check_intro(t, produced, op);
                    self.check_mat_origin(t, produced, op);
                    produced = produced.insert(t);
                }
                produced
            }
            PhysicalOp::WarmAssembly { target } => {
                self.check_intro(*target, inherit, op);
                self.check_mat_origin(*target, inherit, op);
                inherit.insert(*target)
            }
            PhysicalOp::AlgProject { items } => {
                self.check_items_scope(items, inherit, op);
                inherit
            }
            PhysicalOp::AlgUnnest { out } => {
                self.check_intro(*out, inherit, op);
                self.check_unnest_origin(*out, inherit, op);
                inherit.insert(*out)
            }
            PhysicalOp::HashSetOp { .. } => {
                if kids.len() == 2 && kids[0] != kids[1] {
                    self.emit(
                        checks::SETOP_MISMATCH,
                        op,
                        format!("both inputs binding {}", self.vars_string(kids[0])),
                        self.vars_string(kids[1]),
                    );
                }
                kids.first().copied().unwrap_or(VarSet::EMPTY)
            }
            PhysicalOp::Sort { key } => {
                if self.var_ok(key.var) {
                    if !inherit.contains(key.var) {
                        self.emit(
                            checks::UNBOUND_VAR,
                            op,
                            format!("sort variable {} produced upstream", self.var_name(key.var)),
                            format!("input binds only {}", self.vars_string(inherit)),
                        );
                    }
                } else {
                    self.emit(
                        checks::DANGLING_VAR,
                        op,
                        "an in-scope sort variable",
                        format!("v{} out of range", key.var.index()),
                    );
                }
                inherit
            }
            PhysicalOp::MergeJoin { pred } => {
                if kids.len() == 2 && !kids[0].intersect(kids[1]).is_empty() {
                    self.emit(
                        checks::DUPLICATE_BINDING,
                        op,
                        "disjoint input scopes",
                        format!(
                            "both sides bind {}",
                            self.vars_string(kids[0].intersect(kids[1]))
                        ),
                    );
                }
                self.check_pred_scope(*pred, inherit, op);
                if self.pred_ok(*pred) {
                    let p = self.env.preds.pred(*pred);
                    let is_attr_eq = matches!(
                        p.terms.first(),
                        Some(t) if t.op == oodb_algebra::CmpOp::Eq
                            && matches!(t.left, Operand::Attr { .. })
                            && matches!(t.right, Operand::Attr { .. })
                    );
                    if !is_attr_eq {
                        self.emit(
                            checks::MERGE_JOIN_PRED,
                            op,
                            "a leading attribute-equality term",
                            "no Attr == Attr leading term".to_string(),
                        );
                    }
                }
                inherit
            }
        }
    }

    // ------------------------------------------------------------------
    // Property checker
    // ------------------------------------------------------------------

    /// Re-derives delivered properties bottom-up, checking each operator's
    /// own requirements along the way.
    fn walk_props(&mut self, plan: &PhysicalPlan) -> Derived {
        let op = plan.op.name();
        let mut kids = Vec::with_capacity(plan.children.len());
        for (i, c) in plan.children.iter().enumerate() {
            self.path.push(i);
            kids.push(self.walk_props(c));
            self.path.pop();
        }
        let kid = |i: usize| kids.get(i).copied().unwrap_or(Derived::EMPTY);
        match &plan.op {
            PhysicalOp::FileScan { var, .. } => Derived {
                produced: VarSet::single(*var),
                mem: VarSet::single(*var),
                order: OrderInfo::Known(None),
            },
            PhysicalOp::IndexScan { index, var, pred } => {
                // An unqualified scan is the ordered-index-scan form and
                // delivers index-key order; its exact delivered SortSpec
                // depends on the path mapping, so stay conservative.
                let empty_pred = self.pred_ok(*pred) && self.env.preds.pred(*pred).terms.is_empty();
                let order = if !empty_pred {
                    OrderInfo::Known(None)
                } else if self.index_ok(*index) && self.env.catalog.index(*index).path.is_empty() {
                    OrderInfo::Known(Some(SortSpec {
                        var: *var,
                        field: self.env.catalog.index(*index).key,
                    }))
                } else {
                    OrderInfo::Unknown
                };
                Derived {
                    produced: VarSet::single(*var),
                    mem: VarSet::single(*var),
                    order,
                }
            }
            PhysicalOp::Filter { pred } => {
                let d = kid(0);
                self.require_mem(*pred, d.mem, op, "predicate");
                d
            }
            PhysicalOp::HybridHashJoin { pred } => {
                let (l, r) = (kid(0), kid(1));
                self.require_mem(*pred, l.mem.union(r.mem), op, "join predicate");
                Derived {
                    produced: l.produced.union(r.produced),
                    mem: l.mem.union(r.mem),
                    // Order may pass through from the left input, but the
                    // hash table can also reorder probes; stay unknown.
                    order: OrderInfo::Unknown,
                }
            }
            PhysicalOp::PointerJoin { pred } => {
                let d = kid(0);
                self.require_mem(*pred, d.mem, op, "reference predicate");
                let target = self
                    .pred_ok(*pred)
                    .then(|| {
                        self.env
                            .preds
                            .pred(*pred)
                            .terms
                            .first()
                            .and_then(term_ref_eq)
                    })
                    .flatten();
                let mut out = d;
                if let Some(t) = target {
                    out.produced = out.produced.insert(t);
                    out.mem = out.mem.insert(t);
                }
                out
            }
            PhysicalOp::Assembly { targets, .. } => {
                let d = kid(0);
                let mut mem = d.mem;
                for &t in targets {
                    if d.mem.contains(t) {
                        self.emit(
                            checks::REDUNDANT_ASSEMBLY,
                            op,
                            format!("{} not yet resident below", self.var_name(t)),
                            "input already delivers it in memory".to_string(),
                        );
                    }
                    if self.var_ok(t) {
                        if let VarOrigin::Mat {
                            src,
                            field: Some(_),
                        } = self.env.scopes.var(t).origin
                        {
                            if !mem.contains(src) {
                                self.emit(
                                    checks::INPUT_NOT_IN_MEMORY,
                                    op,
                                    format!(
                                        "reference source {} in memory before assembling {}",
                                        self.var_name(src),
                                        self.var_name(t)
                                    ),
                                    format!("delivered {}", self.vars_string(mem)),
                                );
                            }
                        }
                    }
                    mem = mem.insert(t);
                }
                Derived {
                    produced: targets.iter().fold(d.produced, |a, &t| a.insert(t)),
                    mem,
                    order: d.order,
                }
            }
            PhysicalOp::WarmAssembly { target } => {
                let d = kid(0);
                if d.mem.contains(*target) {
                    self.emit(
                        checks::REDUNDANT_ASSEMBLY,
                        op,
                        format!("{} not yet resident below", self.var_name(*target)),
                        "input already delivers it in memory".to_string(),
                    );
                }
                if self.var_ok(*target) {
                    if let VarOrigin::Mat {
                        src,
                        field: Some(_),
                    } = self.env.scopes.var(*target).origin
                    {
                        if !d.mem.contains(src) {
                            self.emit(
                                checks::INPUT_NOT_IN_MEMORY,
                                op,
                                format!("reference source {} in memory", self.var_name(src)),
                                format!("delivered {}", self.vars_string(d.mem)),
                            );
                        }
                    }
                }
                Derived {
                    produced: d.produced.insert(*target),
                    mem: d.mem.insert(*target),
                    order: d.order,
                }
            }
            PhysicalOp::AlgProject { items } => {
                let d = kid(0);
                for item in items {
                    if let Some(v) = item.mem_var() {
                        if self.needs_memory(v) && !d.mem.contains(v) {
                            self.emit(
                                checks::INPUT_NOT_IN_MEMORY,
                                op,
                                format!("projected object {} in memory", self.var_name(v)),
                                format!("delivered {}", self.vars_string(d.mem)),
                            );
                        }
                    }
                }
                d
            }
            PhysicalOp::AlgUnnest { out } => {
                let d = kid(0);
                if self.var_ok(*out) {
                    if let VarOrigin::Unnest { src, .. } = self.env.scopes.var(*out).origin {
                        if !d.mem.contains(src) {
                            self.emit(
                                checks::INPUT_NOT_IN_MEMORY,
                                op,
                                format!("set owner {} in memory", self.var_name(src)),
                                format!("delivered {}", self.vars_string(d.mem)),
                            );
                        }
                    }
                }
                Derived {
                    produced: d.produced.insert(*out),
                    mem: d.mem.insert(*out),
                    order: d.order,
                }
            }
            PhysicalOp::HashSetOp { .. } => {
                let (l, r) = (kid(0), kid(1));
                Derived {
                    produced: l.produced,
                    mem: l.mem.intersect(r.mem),
                    order: OrderInfo::Unknown,
                }
            }
            PhysicalOp::Sort { key } => {
                let d = kid(0);
                if self.var_ok(key.var) && self.needs_memory(key.var) && !d.mem.contains(key.var) {
                    self.emit(
                        checks::INPUT_NOT_IN_MEMORY,
                        op,
                        format!("sort-key object {} in memory", self.var_name(key.var)),
                        format!("delivered {}", self.vars_string(d.mem)),
                    );
                }
                Derived {
                    produced: d.produced,
                    mem: d.mem,
                    order: OrderInfo::Known(Some(*key)),
                }
            }
            PhysicalOp::MergeJoin { pred } => {
                let (l, r) = (kid(0), kid(1));
                self.require_mem(*pred, l.mem.union(r.mem), op, "join predicate");
                if self.pred_ok(*pred) {
                    let p = self.env.preds.pred(*pred);
                    if let Some(t) = p.terms.first() {
                        if let (
                            Operand::Attr { var: av, field: af },
                            Operand::Attr { var: bv, field: bf },
                        ) = (&t.left, &t.right)
                        {
                            // Assign each key to the side binding its
                            // variable, then demand that side be sorted.
                            for (child, d) in [(0usize, l), (1usize, r)] {
                                let key = if d.produced.contains(*av) {
                                    Some(SortSpec {
                                        var: *av,
                                        field: *af,
                                    })
                                } else if d.produced.contains(*bv) {
                                    Some(SortSpec {
                                        var: *bv,
                                        field: *bf,
                                    })
                                } else {
                                    None
                                };
                                if let (Some(k), OrderInfo::Known(got)) = (key, d.order) {
                                    if got != Some(k) {
                                        self.path.push(child);
                                        let expected = format!(
                                            "input sorted by {}",
                                            self.sort_string(Some(k))
                                        );
                                        let actual = format!("sorted by {}", self.sort_string(got));
                                        self.path.pop();
                                        self.emit(
                                            checks::MERGE_INPUT_UNSORTED,
                                            op,
                                            expected,
                                            actual,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                Derived {
                    produced: l.produced.union(r.produced),
                    mem: l.mem.union(r.mem),
                    order: l.order,
                }
            }
        }
    }

    /// Whether evaluating against `v` requires its object state (reference
    /// variables carry their value in the tuple).
    fn needs_memory(&self, v: VarId) -> bool {
        !self.var_ok(v) || !self.env.scopes.var(v).is_ref()
    }

    /// Every variable whose object state the predicate reads must be
    /// delivered in memory.
    fn require_mem(&mut self, pred: PredId, mem: VarSet, op: &str, what: &str) {
        if !self.pred_ok(pred) {
            return; // the linter already reported the dangling id
        }
        for v in self.env.preds.mem_vars(pred) {
            if self.needs_memory(v) && !mem.contains(v) {
                self.emit(
                    checks::INPUT_NOT_IN_MEMORY,
                    op,
                    format!("{} object {} in memory", what, self.var_name(v)),
                    format!("delivered {}", self.vars_string(mem)),
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Cost sanity
    // ------------------------------------------------------------------

    /// Walks the annotated plan, returning `(cumulative_s, out_card)`.
    fn walk_cost(&mut self, plan: &PhysicalPlan) -> (f64, f64) {
        let op = plan.op.name();
        let mut kid_totals = Vec::with_capacity(plan.children.len());
        let mut kid_cards = Vec::with_capacity(plan.children.len());
        for (i, c) in plan.children.iter().enumerate() {
            self.path.push(i);
            let (t, card) = self.walk_cost(c);
            self.path.pop();
            kid_totals.push(t);
            kid_cards.push(card);
        }
        let est = plan.est;
        for (name, v) in [
            ("io_s", est.io_s),
            ("cpu_s", est.cpu_s),
            ("out_card", est.out_card),
        ] {
            if !v.is_finite() {
                self.emit(
                    checks::COST_NON_FINITE,
                    op,
                    format!("finite {name}"),
                    format!("{v}"),
                );
            }
        }
        if est.io_s < 0.0 || est.cpu_s < 0.0 {
            self.emit(
                checks::COST_NEGATIVE,
                op,
                "non-negative operator cost",
                format!("io {} s, cpu {} s", est.io_s, est.cpu_s),
            );
        }
        if est.out_card < 0.0 {
            self.emit(
                checks::CARD_NEGATIVE,
                op,
                "non-negative cardinality",
                format!("{}", est.out_card),
            );
        }
        let total = kid_totals.iter().sum::<f64>() + est.op_total_s();
        // NaN totals are already reported as COST_NON_FINITE, so a plain
        // ordered comparison is enough here.
        for (i, &t) in kid_totals.iter().enumerate() {
            if total < t {
                self.emit(
                    checks::COST_NON_MONOTONE,
                    op,
                    format!("cumulative cost >= input {i}'s {t} s"),
                    format!("{total} s"),
                );
            }
        }
        self.check_card_bound(plan, &kid_cards, op);
        (total, est.out_card)
    }

    /// Per-operator derivable cardinality bounds.
    fn check_card_bound(&mut self, plan: &PhysicalPlan, kids: &[f64], op: &str) {
        let out = plan.est.out_card;
        let kid = |i: usize| kids.get(i).copied().unwrap_or(0.0);
        let bound: Option<(f64, &str)> = match &plan.op {
            PhysicalOp::FileScan { coll, .. } => Some((
                self.env.catalog.collection(*coll).cardinality as f64,
                "collection cardinality",
            )),
            PhysicalOp::IndexScan { index, .. } => self.index_ok(*index).then(|| {
                let c = self.env.catalog.index(*index).collection;
                (
                    self.env.catalog.collection(c).cardinality as f64,
                    "indexed collection cardinality",
                )
            }),
            PhysicalOp::Filter { .. } | PhysicalOp::Sort { .. } => {
                Some((kid(0), "input cardinality"))
            }
            PhysicalOp::Assembly { .. }
            | PhysicalOp::WarmAssembly { .. }
            | PhysicalOp::AlgProject { .. }
            | PhysicalOp::PointerJoin { .. } => Some((kid(0), "input cardinality")),
            PhysicalOp::HybridHashJoin { .. } | PhysicalOp::MergeJoin { .. } => {
                Some((kid(0) * kid(1), "cross-product of the inputs"))
            }
            PhysicalOp::HashSetOp { kind } => Some(match kind {
                oodb_algebra::SetOpKind::Union => (kid(0) + kid(1), "sum of the inputs"),
                oodb_algebra::SetOpKind::Intersect => {
                    (kid(0).min(kid(1)), "smaller input cardinality")
                }
                oodb_algebra::SetOpKind::Difference => (kid(0), "left input cardinality"),
            }),
            // Unnest fans out by set size; no bound derivable here.
            PhysicalOp::AlgUnnest { .. } => None,
        };
        if let Some((b, what)) = bound {
            if out > b * (1.0 + CARD_SLACK) + CARD_SLACK {
                self.emit(
                    checks::CARD_BOUND,
                    op,
                    format!("out_card <= {what} ({b})"),
                    format!("{out}"),
                );
            }
        }
    }

    /// Bottom-up interval propagation over a physical plan, checking each
    /// node's *estimate* against its interval. Returns the root interval.
    fn walk_interval(&mut self, plan: &PhysicalPlan) -> CardInterval {
        let mut kids = Vec::with_capacity(plan.children.len());
        for (i, c) in plan.children.iter().enumerate() {
            self.path.push(i);
            kids.push(self.walk_interval(c));
            self.path.pop();
        }
        let iv = self.phys_interval(plan, &kids);
        let out = plan.est.out_card;
        // Non-finite/negative estimates are COST_NON_FINITE/CARD_NEGATIVE.
        if out.is_finite() && out >= 0.0 && !iv.contains(out) {
            self.emit(
                checks::CARD_INTERVAL,
                plan.op.name(),
                format!("out_card within {iv}"),
                format!("{out}"),
            );
        }
        iv
    }

    /// Walks plan and trace in lockstep, checking each operator's measured
    /// row count against the interval derived from its children's measured
    /// counts. Plan children without a trace node (the executor never ran
    /// them — a pointer join's target scan) keep a vacuous interval.
    fn walk_actual(&mut self, plan: &PhysicalPlan, trace: &OpTrace) -> CardInterval {
        let mut kids = Vec::with_capacity(plan.children.len());
        for (i, (pc, tc)) in plan.children.iter().zip(trace.children.iter()).enumerate() {
            self.path.push(i);
            kids.push(self.walk_actual(pc, tc));
            self.path.pop();
        }
        kids.resize(plan.children.len(), CardInterval::UNBOUNDED);
        let iv = self.phys_interval(plan, &kids);
        let actual = trace.actual_rows as f64;
        if !iv.contains(actual) {
            self.emit(
                checks::ACTUAL_CARD,
                plan.op.name(),
                format!("actual rows within {iv}"),
                format!("{}", trace.actual_rows),
            );
        }
        // Parents bound themselves by what this operator *measurably*
        // produced, not by what it could have.
        CardInterval::exact(actual)
    }

    /// The `[lo, hi]` row-count interval of one physical operator given
    /// its children's intervals. Sound w.r.t. executor semantics: scans
    /// are pinned to catalog cardinality, predicates drop the lower bound,
    /// count-preserving operators (assembly, sort, pointer join in its
    /// well-formed single-reference-equality shape) pass intervals
    /// through, and a reference equi-join against a side that is provably
    /// distinct in the target variable emits at most one row per row of
    /// the other side (containment).
    fn phys_interval(&self, plan: &PhysicalPlan, kids: &[CardInterval]) -> CardInterval {
        let kid = |i: usize| kids.get(i).copied().unwrap_or(CardInterval::UNBOUNDED);
        match &plan.op {
            PhysicalOp::FileScan { coll, .. } => {
                CardInterval::exact(self.env.catalog.collection(*coll).cardinality as f64)
            }
            PhysicalOp::IndexScan { index, pred, .. } => {
                if !self.index_ok(*index) {
                    return CardInterval::UNBOUNDED;
                }
                let c = self.env.catalog.index(*index).collection;
                let n = self.env.catalog.collection(c).cardinality as f64;
                if self.pred_empty(*pred) {
                    // Empty predicate = full ordered sweep: every member.
                    CardInterval::exact(n)
                } else {
                    CardInterval::at_most(n)
                }
            }
            PhysicalOp::Filter { pred } => {
                if self.pred_empty(*pred) {
                    kid(0)
                } else {
                    kid(0).relax_lo()
                }
            }
            PhysicalOp::PointerJoin { pred } => {
                if self.single_ref_eq(*pred) {
                    kid(0)
                } else {
                    kid(0).relax_lo()
                }
            }
            PhysicalOp::Assembly { .. }
            | PhysicalOp::WarmAssembly { .. }
            | PhysicalOp::Sort { .. }
            | PhysicalOp::AlgProject { .. } => kid(0),
            PhysicalOp::AlgUnnest { .. } => CardInterval::UNBOUNDED,
            PhysicalOp::HybridHashJoin { pred } | PhysicalOp::MergeJoin { pred } => {
                self.join_interval(*pred, &plan.children, kid(0), kid(1))
            }
            PhysicalOp::HashSetOp { kind } => match kind {
                oodb_algebra::SetOpKind::Union => kid(0).sum(kid(1)).relax_lo(),
                oodb_algebra::SetOpKind::Intersect => {
                    CardInterval::at_most(kid(0).hi.min(kid(1).hi))
                }
                oodb_algebra::SetOpKind::Difference => CardInterval::at_most(kid(0).hi),
            },
        }
    }

    /// Join interval: cross product, lower bound dropped when a predicate
    /// can eliminate rows, upper bound tightened by reference-equality
    /// containment when the side binding the target variable is provably
    /// distinct in it (each row of the other side then matches at most one
    /// row).
    fn join_interval(
        &self,
        pred: PredId,
        children: &[PhysicalPlan],
        l: CardInterval,
        r: CardInterval,
    ) -> CardInterval {
        let mut iv = if self.pred_empty(pred) {
            l.cross(r)
        } else {
            l.cross(r).relax_lo()
        };
        if !self.pred_ok(pred) || children.len() != 2 {
            return iv;
        }
        for t in &self.env.preds.pred(pred).terms {
            if let Some(tv) = term_ref_eq(t) {
                if phys_binds(&children[0], tv) {
                    if phys_distinct_in(&children[0], tv) {
                        iv = iv.cap(r.hi);
                    }
                } else if phys_binds(&children[1], tv) && phys_distinct_in(&children[1], tv) {
                    iv = iv.cap(l.hi);
                }
            }
        }
        iv
    }

    /// Interval propagation over a logical expression — the physical
    /// table's operator-semantics half, without estimates to check.
    fn logical_interval(&self, plan: &LogicalPlan) -> CardInterval {
        let kids: Vec<CardInterval> = plan
            .children
            .iter()
            .map(|c| self.logical_interval(c))
            .collect();
        let kid = |i: usize| kids.get(i).copied().unwrap_or(CardInterval::UNBOUNDED);
        match &plan.op {
            LogicalOp::Get { coll, .. } => {
                CardInterval::exact(self.env.catalog.collection(*coll).cardinality as f64)
            }
            LogicalOp::Select { pred } => {
                if self.pred_empty(*pred) {
                    kid(0)
                } else {
                    kid(0).relax_lo()
                }
            }
            LogicalOp::Project { .. } | LogicalOp::Mat { .. } => kid(0),
            LogicalOp::Unnest { .. } => CardInterval::UNBOUNDED,
            LogicalOp::Join { pred } => {
                let mut iv = if self.pred_empty(*pred) {
                    kid(0).cross(kid(1))
                } else {
                    kid(0).cross(kid(1)).relax_lo()
                };
                if self.pred_ok(*pred) && plan.children.len() == 2 {
                    for t in &self.env.preds.pred(*pred).terms {
                        if let Some(tv) = term_ref_eq(t) {
                            if logical_binds(&plan.children[0], tv) {
                                if logical_distinct_in(&plan.children[0], tv) {
                                    iv = iv.cap(kid(1).hi);
                                }
                            } else if logical_binds(&plan.children[1], tv)
                                && logical_distinct_in(&plan.children[1], tv)
                            {
                                iv = iv.cap(kid(0).hi);
                            }
                        }
                    }
                }
                iv
            }
            LogicalOp::SetOp { kind } => match kind {
                oodb_algebra::SetOpKind::Union => kid(0).sum(kid(1)).relax_lo(),
                oodb_algebra::SetOpKind::Intersect => {
                    CardInterval::at_most(kid(0).hi.min(kid(1).hi))
                }
                oodb_algebra::SetOpKind::Difference => CardInterval::at_most(kid(0).hi),
            },
        }
    }

    /// True when the predicate resolves and has no terms (always-true).
    fn pred_empty(&self, p: PredId) -> bool {
        self.pred_ok(p) && self.env.preds.pred(p).terms.is_empty()
    }

    /// True when the predicate is a single reference equality — the shape
    /// in which a pointer join is count-preserving.
    fn single_ref_eq(&self, p: PredId) -> bool {
        self.pred_ok(p) && {
            let terms = &self.env.preds.pred(p).terms;
            terms.len() == 1 && terms[0].as_ref_eq().is_some()
        }
    }
}

/// Whether a physical subtree binds `v` in its output tuples.
fn phys_binds(plan: &PhysicalPlan, v: VarId) -> bool {
    let here = match &plan.op {
        PhysicalOp::FileScan { var, .. } | PhysicalOp::IndexScan { var, .. } => *var == v,
        PhysicalOp::Assembly { targets, .. } => targets.contains(&v),
        PhysicalOp::WarmAssembly { target } => *target == v,
        PhysicalOp::AlgUnnest { out } => *out == v,
        _ => false,
    };
    here || plan.children.iter().any(|c| phys_binds(c, v))
}

/// Whether every output row of a physical subtree carries a *distinct*
/// object for `v`. Conservative: `false` whenever distinctness cannot be
/// proven (joins, unnests, unions, variables the operator introduces by
/// dereference).
fn phys_distinct_in(plan: &PhysicalPlan, v: VarId) -> bool {
    let kid0 = |p: &PhysicalPlan| p.children.first().is_some_and(|c| phys_distinct_in(c, v));
    match &plan.op {
        PhysicalOp::FileScan { var, .. } | PhysicalOp::IndexScan { var, .. } => *var == v,
        PhysicalOp::Filter { .. }
        | PhysicalOp::Sort { .. }
        | PhysicalOp::AlgProject { .. }
        | PhysicalOp::PointerJoin { .. } => kid0(plan),
        PhysicalOp::Assembly { targets, .. } => !targets.contains(&v) && kid0(plan),
        PhysicalOp::WarmAssembly { target } => *target != v && kid0(plan),
        PhysicalOp::AlgUnnest { .. }
        | PhysicalOp::HybridHashJoin { .. }
        | PhysicalOp::MergeJoin { .. } => false,
        PhysicalOp::HashSetOp { kind } => match kind {
            oodb_algebra::SetOpKind::Union => false,
            oodb_algebra::SetOpKind::Intersect | oodb_algebra::SetOpKind::Difference => kid0(plan),
        },
    }
}

/// Whether a logical subtree binds `v` in its output scope.
fn logical_binds(plan: &LogicalPlan, v: VarId) -> bool {
    let here = match &plan.op {
        LogicalOp::Get { var, .. } => *var == v,
        LogicalOp::Mat { out } | LogicalOp::Unnest { out } => *out == v,
        _ => false,
    };
    here || plan.children.iter().any(|c| logical_binds(c, v))
}

/// Logical analog of [`phys_distinct_in`].
fn logical_distinct_in(plan: &LogicalPlan, v: VarId) -> bool {
    let kid0 = |p: &LogicalPlan| {
        p.children
            .first()
            .is_some_and(|c| logical_distinct_in(c, v))
    };
    match &plan.op {
        LogicalOp::Get { var, .. } => *var == v,
        LogicalOp::Select { .. } | LogicalOp::Project { .. } => kid0(plan),
        LogicalOp::Mat { out } => *out != v && kid0(plan),
        LogicalOp::Unnest { .. } | LogicalOp::Join { .. } => false,
        LogicalOp::SetOp { kind } => match kind {
            oodb_algebra::SetOpKind::Union => false,
            oodb_algebra::SetOpKind::Intersect | oodb_algebra::SetOpKind::Difference => kid0(plan),
        },
    }
}

/// The ref-eq target of a term, free-function form for use in closures.
fn term_ref_eq(t: &oodb_algebra::Term) -> Option<VarId> {
    t.as_ref_eq().map(|(_, v)| v)
}

fn logical_name(op: &LogicalOp) -> &'static str {
    match op {
        LogicalOp::Get { .. } => "Get",
        LogicalOp::Select { .. } => "Select",
        LogicalOp::Project { .. } => "Project",
        LogicalOp::Join { .. } => "Join",
        LogicalOp::Mat { .. } => "Mat",
        LogicalOp::Unnest { .. } => "Unnest",
        LogicalOp::SetOp { kind } => kind.name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_algebra::QueryBuilder;
    use oodb_object::paper::paper_model;
    use oodb_object::Value;

    /// Query 2's logical form: Select over Mat over Get.
    fn q2() -> (QueryEnv, LogicalPlan, VarId, VarId) {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let (matd, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
        let pred = qb.eq_const(cm, m.ids.person_name, Value::str("Joe"));
        let plan = qb.select(matd, pred);
        (qb.into_env(), plan, c, cm)
    }

    #[test]
    fn valid_logical_plan_lints_clean() {
        let (env, plan, ..) = q2();
        assert_eq!(lint_logical(&env, &plan), vec![]);
    }

    #[test]
    fn dropped_mat_link_is_pinpointed() {
        let (env, plan, ..) = q2();
        // Splice the Mat out: Select directly over Get. The predicate's cm
        // is now unbound, and the Select at the root is the culprit.
        let broken = LogicalPlan {
            op: plan.op.clone(),
            children: vec![plan.children[0].children[0].clone()],
        };
        let diags = lint_logical(&env, &broken);
        assert!(
            diags
                .iter()
                .any(|d| d.check == checks::UNBOUND_VAR && d.path.is_empty() && d.op == "Select"),
            "{diags:?}"
        );
    }

    #[test]
    fn swapped_binding_is_pinpointed() {
        let (env, plan, c, _) = q2();
        // Rebind the Mat to the Get variable: origin kind no longer fits.
        let mut broken = plan.clone();
        broken.children[0].op = LogicalOp::Mat { out: c };
        let diags = lint_logical(&env, &broken);
        assert!(
            diags
                .iter()
                .any(|d| d.check == checks::ORIGIN_MISMATCH && d.path == vec![0]),
            "{diags:?}"
        );
        // Rebinding the already-bound c is also a duplicate binding.
        assert!(
            diags
                .iter()
                .any(|d| d.check == checks::DUPLICATE_BINDING && d.path == vec![0]),
            "{diags:?}"
        );
    }

    /// A Mat→Join `Get` scans the reference's domain collection binding
    /// the Mat-origin variable directly; a collapsed index scan over that
    /// shape predicates on the scan's own base. That is bound by the scan
    /// itself and must not be flagged — only predicate variables that
    /// chain to a *different* root are unbound.
    #[test]
    fn index_scan_predicate_on_its_own_mat_origin_base_is_bound() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (tasks, t) = qb.get(m.ids.tasks, "t");
        let (unnested, mm) = qb.unnest(tasks, t, m.ids.task_team_members, "m");
        let (_matd, me) = qb.mat_deref(unnested, mm, "e");
        let good = qb.eq_const(me, m.ids.person_name, Value::str("Fred"));
        let bad = qb.eq_const(t, m.ids.task_time, Value::Int(100));
        let env = qb.into_env();
        let scan = |pred| PhysicalPlan {
            op: PhysicalOp::IndexScan {
                index: m.ids.idx_employees_name,
                var: me,
                pred,
            },
            children: vec![],
            est: Default::default(),
        };
        // Predicate on the scan's own base variable: bound, whatever the
        // base's origin chain says.
        assert_eq!(lint_physical(&env, &scan(good)), vec![]);
        // A predicate variable rooted elsewhere is still an error.
        let diags = lint_physical(&env, &scan(bad));
        assert!(
            diags.iter().any(|d| d.check == checks::UNBOUND_VAR),
            "{diags:?}"
        );
    }

    #[test]
    fn setop_scope_mismatch_detected() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let (matd, _cm) = qb.mat(cities.clone(), c, m.ids.city_mayor, "cm");
        let bad = qb.set_op(oodb_algebra::SetOpKind::Union, cities, matd);
        let env = qb.into_env();
        let diags = lint_logical(&env, &bad);
        assert!(
            diags.iter().any(|d| d.check == checks::SETOP_MISMATCH),
            "{diags:?}"
        );
    }

    #[test]
    fn cost_sanity_flags_negative_and_non_monotone() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, c) = qb.get(m.ids.cities, "c");
        let env = qb.into_env();
        let cities_card = m.catalog.collection(m.ids.cities).cardinality as f64;
        let scan = PhysicalPlan {
            op: PhysicalOp::FileScan {
                coll: m.ids.cities,
                var: c,
            },
            children: vec![],
            est: oodb_algebra::PlanEst {
                out_card: cities_card,
                io_s: 1.0,
                cpu_s: 0.1,
            },
        };
        let bad = PhysicalPlan {
            op: PhysicalOp::Filter {
                pred: PredId::from_index(0),
            },
            children: vec![scan],
            est: oodb_algebra::PlanEst {
                out_card: cities_card * 10.0, // filters cannot grow output
                io_s: -0.5,                   // negative => non-monotone too
                cpu_s: 0.0,
            },
        };
        let diags = check_costs(&env, &bad);
        for check in [
            checks::COST_NEGATIVE,
            checks::COST_NON_MONOTONE,
            checks::CARD_BOUND,
        ] {
            assert!(diags.iter().any(|d| d.check == check), "{check}: {diags:?}");
        }
    }

    /// Filter-over-scan with parameterized estimates, for interval tests.
    fn scan_filter_plan(
        m: &oodb_object::paper::PaperModel,
        pred: PredId,
        c: VarId,
        scan_card: f64,
        filter_card: f64,
    ) -> PhysicalPlan {
        PhysicalPlan {
            op: PhysicalOp::Filter { pred },
            children: vec![PhysicalPlan {
                op: PhysicalOp::FileScan {
                    coll: m.ids.cities,
                    var: c,
                },
                children: vec![],
                est: oodb_algebra::PlanEst {
                    out_card: scan_card,
                    io_s: 1.0,
                    cpu_s: 0.0,
                },
            }],
            est: oodb_algebra::PlanEst {
                out_card: filter_card,
                io_s: 0.0,
                cpu_s: 0.1,
            },
        }
    }

    fn trace(rows: u64, children: Vec<OpTrace>) -> OpTrace {
        OpTrace {
            label: String::new(),
            actual_rows: rows,
            elapsed_ns: 0,
            buffer_hits: 0,
            buffer_misses: 0,
            sim_io_s: 0.0,
            spill_pages: 0,
            children,
        }
    }

    #[test]
    fn interval_audit_accepts_feasible_estimates_and_flags_escapes() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, c) = qb.get(m.ids.cities, "c");
        let pred = qb.eq_const(c, m.ids.city_name, Value::str("Lima"));
        let env = qb.into_env();
        let n = m.catalog.collection(m.ids.cities).cardinality as f64;
        assert!(n > 2.0, "paper model cities must be non-trivial");
        // Scan pinned to catalog cardinality, filter below it: feasible.
        let good = scan_filter_plan(&m, pred, c, n, n / 2.0);
        assert_eq!(check_card_intervals(&env, &good), vec![]);
        assert_eq!(interval_physical(&env, &good), CardInterval::at_most(n));
        // A scan estimating *below* collection cardinality is infeasible —
        // the lower-bound violation CARD_BOUND cannot see.
        let low = scan_filter_plan(&m, pred, c, n / 2.0, n / 4.0);
        let diags = check_card_intervals(&env, &low);
        assert!(
            diags
                .iter()
                .any(|d| d.check == checks::CARD_INTERVAL && d.path == vec![0]),
            "{diags:?}"
        );
        // A filter estimating above its input escapes upward.
        let high = scan_filter_plan(&m, pred, c, n, n * 2.0);
        let diags = check_card_intervals(&env, &high);
        assert!(
            diags
                .iter()
                .any(|d| d.check == checks::CARD_INTERVAL && d.path.is_empty()),
            "{diags:?}"
        );
    }

    #[test]
    fn actual_rows_outside_interval_detected() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, c) = qb.get(m.ids.cities, "c");
        let pred = qb.eq_const(c, m.ids.city_name, Value::str("Lima"));
        let env = qb.into_env();
        let n = m.catalog.collection(m.ids.cities).cardinality;
        let plan = scan_filter_plan(&m, pred, c, n as f64, 1.0);
        // Fresh statistics: scan sees exactly n, filter keeps a subset.
        let ok = trace(1, vec![trace(n, vec![])]);
        assert_eq!(check_actual_cards(&env, &plan, &ok), vec![]);
        // Stale statistics: the scan no longer matches the catalog.
        let stale = trace(1, vec![trace(n - 2, vec![])]);
        let diags = check_actual_cards(&env, &plan, &stale);
        assert!(
            diags
                .iter()
                .any(|d| d.check == checks::ACTUAL_CARD && d.path == vec![0]),
            "{diags:?}"
        );
        // A filter emitting more rows than its input is miscounting.
        let grew = trace(n + 5, vec![trace(n, vec![])]);
        let diags = check_actual_cards(&env, &plan, &grew);
        assert!(
            diags
                .iter()
                .any(|d| d.check == checks::ACTUAL_CARD && d.path.is_empty()),
            "{diags:?}"
        );
    }

    #[test]
    fn logical_interval_of_select_mat_get() {
        let (env, plan, ..) = q2();
        let iv = interval_logical(&env, &plan);
        // Select drops the lower bound; Mat preserves the count.
        assert_eq!(iv.lo, 0.0);
        let get_iv = interval_logical(&env, &plan.children[0].children[0]);
        assert_eq!(get_iv.lo, get_iv.hi, "Get is exact");
        assert_eq!(iv.hi, get_iv.hi);
    }

    #[test]
    fn ref_eq_join_containment_tightens_the_bound() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (people, p) = qb.get(m.ids.person_extent, "p");
        let (cities, c) = qb.get(m.ids.cities, "c");
        let pred = qb.ref_eq(c, m.ids.city_mayor, p);
        let join = qb.join(people, cities, pred);
        let env = qb.into_env();
        let n_c = m.catalog.collection(m.ids.cities).cardinality as f64;
        let n_p = m.catalog.collection(m.ids.person_extent).cardinality as f64;
        assert!(n_p > n_c, "containment must be visible");
        // Each city references one mayor; the mayor side is distinct in p,
        // so the join emits at most one row per city — not n_c × n_p.
        let iv = interval_logical(&env, &join);
        assert_eq!(iv, CardInterval::at_most(n_c), "logical containment");
        let phys = PhysicalPlan {
            op: PhysicalOp::HybridHashJoin { pred },
            children: vec![
                PhysicalPlan {
                    op: PhysicalOp::FileScan {
                        coll: m.ids.person_extent,
                        var: p,
                    },
                    children: vec![],
                    est: Default::default(),
                },
                PhysicalPlan {
                    op: PhysicalOp::FileScan {
                        coll: m.ids.cities,
                        var: c,
                    },
                    children: vec![],
                    est: Default::default(),
                },
            ],
            est: Default::default(),
        };
        assert_eq!(
            interval_physical(&env, &phys),
            CardInterval::at_most(n_c),
            "physical containment"
        );
    }

    #[test]
    fn diagnostic_renders_with_path() {
        let d = Diagnostic {
            check: checks::UNBOUND_VAR,
            path: vec![0, 1],
            op: "Select".into(),
            expected: "x bound".into(),
            actual: "nothing".into(),
        };
        assert_eq!(d.path_string(), "root.0.1");
        let s = d.to_string();
        assert!(
            s.contains("scope/unbound-var") && s.contains("root.0.1"),
            "{s}"
        );
    }
}
