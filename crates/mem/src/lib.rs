//! Memory governance for the Open OODB reproduction.
//!
//! The paper's hybrid hash join and assembly window exist because memory
//! is finite; this crate makes that constraint explicit at runtime. A
//! process-wide [`MemoryGovernor`] holds a byte capacity and hands out
//! per-query [`MemoryGrant`]s. Operators reserve bytes *before* building
//! hash tables or opening assembly windows and release them when done; a
//! denied reservation is the signal to spill, shrink, or stage rather
//! than to grow without bound.
//!
//! Design points, mirroring `oodb_fault::FaultInjector`:
//!
//! - **Shared by `Clone`.** Both governor and grant are `Arc`-backed;
//!   clones observe the same counters, so a service thread and its
//!   executors reconcile against one ledger.
//! - **Relaxed atomics only.** Reservations are advisory accounting for
//!   a simulated machine, not allocator hooks; the hot path is a couple
//!   of relaxed read-modify-writes per *operator* (never per row).
//! - **Leak-proof by `Drop`.** A grant returns every outstanding byte to
//!   the governor when dropped, so `reserved == 0` and
//!   `reserved_total == released_total` hold at quiesce even on error
//!   paths that unwind mid-operator.
//! - **Detached mode.** [`MemoryGrant::detached`] enforces a per-query
//!   budget with no governor behind it, so `RunLimits::mem_budget` works
//!   even when no process-wide cap is attached.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Coarse utilisation bands for the governor, used by the service's
/// degradation ladder (degrade at [`PressureLevel::High`], shed at
/// [`PressureLevel::Critical`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureLevel {
    /// Under 50% of capacity reserved.
    Nominal,
    /// 50–75% reserved.
    Elevated,
    /// 75–90% reserved: new work should degrade (smaller grants,
    /// greedy plans) before being admitted.
    High,
    /// Over 90% reserved: new work should be shed.
    Critical,
}

impl std::fmt::Display for PressureLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PressureLevel::Nominal => "nominal",
            PressureLevel::Elevated => "elevated",
            PressureLevel::High => "high",
            PressureLevel::Critical => "critical",
        })
    }
}

/// Snapshot of the governor's ledger. At quiesce (no live grants)
/// `reserved == 0` and `reserved_total == released_total`; across any
/// run `spill_bytes_written == spill_bytes_read` because every spilled
/// partition is written once and read back once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Configured capacity in bytes (`u64::MAX` means unlimited).
    pub capacity: u64,
    /// Bytes currently reserved across all live grants.
    pub reserved: u64,
    /// High-water mark of `reserved` since creation/reset.
    pub peak_reserved: u64,
    /// Cumulative bytes ever reserved.
    pub reserved_total: u64,
    /// Cumulative bytes ever released.
    pub released_total: u64,
    /// Reservations refused (budget or capacity exhausted).
    pub grant_denials: u64,
    /// Bytes charged as spill-partition writes.
    pub spill_bytes_written: u64,
    /// Bytes charged as spill-partition reads.
    pub spill_bytes_read: u64,
    /// Grants issued since creation/reset.
    pub grants_issued: u64,
}

#[derive(Debug, Default)]
struct GovInner {
    capacity: u64,
    reserved: AtomicU64,
    peak: AtomicU64,
    reserved_total: AtomicU64,
    released_total: AtomicU64,
    denials: AtomicU64,
    spill_written: AtomicU64,
    spill_read: AtomicU64,
    grants: AtomicU64,
}

/// Process-wide memory ledger. Attach one to a `Store` (see
/// `oodb_storage::Store::attach_memory_governor`) and every executor
/// created against that store draws its per-run [`MemoryGrant`] from it.
#[derive(Clone, Debug)]
pub struct MemoryGovernor {
    inner: Arc<GovInner>,
}

impl MemoryGovernor {
    /// Creates a governor with `capacity_bytes` of simulated memory.
    pub fn new(capacity_bytes: u64) -> Self {
        MemoryGovernor {
            inner: Arc::new(GovInner {
                capacity: capacity_bytes,
                ..Default::default()
            }),
        }
    }

    /// A governor that never denies: accounting without enforcement.
    /// Useful for measuring a workload's working set.
    pub fn unlimited() -> Self {
        MemoryGovernor::new(u64::MAX)
    }

    /// The configured capacity in bytes (`u64::MAX` = unlimited).
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }

    /// Issues a grant against this governor. `budget` bounds what this
    /// one grant may hold at once (`None` = bounded only by capacity).
    pub fn grant(&self, budget: Option<u64>) -> MemoryGrant {
        self.inner.grants.fetch_add(1, Relaxed);
        MemoryGrant {
            inner: Arc::new(GrantInner {
                gov: Some(self.clone()),
                budget: budget.unwrap_or(u64::MAX),
                used: AtomicU64::new(0),
                peak: AtomicU64::new(0),
                denials: AtomicU64::new(0),
            }),
        }
    }

    /// Current utilisation band, by `reserved / capacity`.
    pub fn pressure(&self) -> PressureLevel {
        let cap = self.inner.capacity;
        if cap == 0 {
            return PressureLevel::Critical;
        }
        let frac = self.inner.reserved.load(Relaxed) as f64 / cap as f64;
        if frac < 0.50 {
            PressureLevel::Nominal
        } else if frac < 0.75 {
            PressureLevel::Elevated
        } else if frac < 0.90 {
            PressureLevel::High
        } else {
            PressureLevel::Critical
        }
    }

    /// Snapshot of the ledger.
    pub fn stats(&self) -> MemStats {
        let g = &self.inner;
        MemStats {
            capacity: g.capacity,
            reserved: g.reserved.load(Relaxed),
            peak_reserved: g.peak.load(Relaxed),
            reserved_total: g.reserved_total.load(Relaxed),
            released_total: g.released_total.load(Relaxed),
            grant_denials: g.denials.load(Relaxed),
            spill_bytes_written: g.spill_written.load(Relaxed),
            spill_bytes_read: g.spill_read.load(Relaxed),
            grants_issued: g.grants.load(Relaxed),
        }
    }

    /// Clears cumulative counters (peak, totals, denials, spill bytes,
    /// grants). Live reservations are left untouched.
    pub fn reset(&self) {
        let g = &self.inner;
        g.peak.store(g.reserved.load(Relaxed), Relaxed);
        g.reserved_total.store(0, Relaxed);
        g.released_total.store(0, Relaxed);
        g.denials.store(0, Relaxed);
        g.spill_written.store(0, Relaxed);
        g.spill_read.store(0, Relaxed);
        g.grants.store(0, Relaxed);
    }

    fn try_reserve(&self, bytes: u64) -> bool {
        let g = &self.inner;
        let prev = g.reserved.fetch_add(bytes, Relaxed);
        if prev.saturating_add(bytes) > g.capacity {
            g.reserved.fetch_sub(bytes, Relaxed);
            g.denials.fetch_add(1, Relaxed);
            return false;
        }
        g.reserved_total.fetch_add(bytes, Relaxed);
        g.peak.fetch_max(prev + bytes, Relaxed);
        true
    }

    fn release(&self, bytes: u64) {
        let g = &self.inner;
        g.reserved.fetch_sub(bytes, Relaxed);
        g.released_total.fetch_add(bytes, Relaxed);
    }

    fn note_spill(&self, written: u64, read: u64) {
        self.inner.spill_written.fetch_add(written, Relaxed);
        self.inner.spill_read.fetch_add(read, Relaxed);
    }
}

#[derive(Debug)]
struct GrantInner {
    gov: Option<MemoryGovernor>,
    budget: u64,
    used: AtomicU64,
    peak: AtomicU64,
    denials: AtomicU64,
}

impl Drop for GrantInner {
    fn drop(&mut self) {
        // Return anything an unwound operator failed to release, so the
        // governor reconciles (`reserved == 0`) even on error paths.
        if let Some(gov) = &self.gov {
            let leaked = self.used.load(Relaxed);
            if leaked > 0 {
                gov.release(leaked);
            }
        }
    }
}

/// A per-query slice of the governor's capacity. Cheap to clone (shares
/// the ledger); releases all outstanding bytes on final drop.
#[derive(Clone, Debug)]
pub struct MemoryGrant {
    inner: Arc<GrantInner>,
}

impl MemoryGrant {
    /// A grant with no governor behind it: the per-query `budget` is
    /// still enforced (`None` = effectively unlimited). This is what an
    /// executor uses when no governor is attached to the store.
    pub fn detached(budget: Option<u64>) -> Self {
        MemoryGrant {
            inner: Arc::new(GrantInner {
                gov: None,
                budget: budget.unwrap_or(u64::MAX),
                used: AtomicU64::new(0),
                peak: AtomicU64::new(0),
                denials: AtomicU64::new(0),
            }),
        }
    }

    /// Tries to reserve `bytes` against the budget and (if governed) the
    /// governor's capacity. Returns `false` — charging nothing — when
    /// either would be exceeded; the caller should spill, shrink, or
    /// fail with a typed error.
    pub fn try_reserve(&self, bytes: u64) -> bool {
        let i = &*self.inner;
        let prev = i.used.fetch_add(bytes, Relaxed);
        if prev.saturating_add(bytes) > i.budget {
            i.used.fetch_sub(bytes, Relaxed);
            i.denials.fetch_add(1, Relaxed);
            return false;
        }
        if let Some(gov) = &i.gov {
            if !gov.try_reserve(bytes) {
                i.used.fetch_sub(bytes, Relaxed);
                i.denials.fetch_add(1, Relaxed);
                return false;
            }
        }
        i.peak.fetch_max(prev + bytes, Relaxed);
        true
    }

    /// Returns `bytes` to the grant (and governor). Releasing more than
    /// is held saturates at zero rather than underflowing.
    pub fn release(&self, bytes: u64) {
        let i = &*self.inner;
        let mut cur = i.used.load(Relaxed);
        let give = loop {
            let give = bytes.min(cur);
            match i
                .used
                .compare_exchange_weak(cur, cur - give, Relaxed, Relaxed)
            {
                Ok(_) => break give,
                Err(now) => cur = now,
            }
        };
        if give > 0 {
            if let Some(gov) = &i.gov {
                gov.release(give);
            }
        }
    }

    /// Bytes this grant currently holds.
    pub fn used(&self) -> u64 {
        self.inner.used.load(Relaxed)
    }

    /// High-water mark of bytes held by this grant.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Relaxed)
    }

    /// The per-query budget (`u64::MAX` = unlimited).
    pub fn budget(&self) -> u64 {
        self.inner.budget
    }

    /// Reservations this grant has had refused.
    pub fn denials(&self) -> u64 {
        self.inner.denials.load(Relaxed)
    }

    /// Records spill traffic (in bytes) on the governor's ledger, if
    /// governed. The simulated I/O *time* is charged separately through
    /// the disk model at sequential rates.
    pub fn note_spill(&self, written: u64, read: u64) {
        if let Some(gov) = &self.inner.gov {
            gov.note_spill(written, read);
        }
    }
}

impl Default for MemoryGrant {
    fn default() -> Self {
        MemoryGrant::detached(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_reserve_and_release_against_capacity() {
        let gov = MemoryGovernor::new(1000);
        let g = gov.grant(None);
        assert!(g.try_reserve(600));
        assert!(!g.try_reserve(600), "601..1200 exceeds capacity");
        assert!(g.try_reserve(400));
        assert_eq!(g.used(), 1000);
        g.release(1000);
        let s = gov.stats();
        assert_eq!(s.reserved, 0);
        assert_eq!(s.peak_reserved, 1000);
        assert_eq!(s.reserved_total, s.released_total);
        assert_eq!(s.grant_denials, 1);
    }

    #[test]
    fn budget_binds_before_capacity() {
        let gov = MemoryGovernor::new(1000);
        let g = gov.grant(Some(100));
        assert!(!g.try_reserve(101));
        assert!(g.try_reserve(100));
        assert_eq!(gov.stats().reserved, 100);
        assert_eq!(g.denials(), 1);
    }

    #[test]
    fn drop_returns_outstanding_bytes() {
        let gov = MemoryGovernor::new(1000);
        {
            let g = gov.grant(None);
            assert!(g.try_reserve(700));
            // Simulated error path: no release before drop.
        }
        let s = gov.stats();
        assert_eq!(s.reserved, 0, "drop must reconcile the ledger");
        assert_eq!(s.reserved_total, s.released_total);
    }

    #[test]
    fn clones_share_one_ledger() {
        let gov = MemoryGovernor::new(1000);
        let g = gov.grant(None);
        let g2 = g.clone();
        assert!(g.try_reserve(400));
        assert!(g2.try_reserve(400));
        assert_eq!(g.used(), 800);
        drop(g2);
        assert_eq!(gov.stats().reserved, 800, "clone drop is not final drop");
        drop(g);
        assert_eq!(gov.stats().reserved, 0);
    }

    #[test]
    fn over_release_saturates() {
        let gov = MemoryGovernor::new(1000);
        let g = gov.grant(None);
        assert!(g.try_reserve(10));
        g.release(500);
        assert_eq!(g.used(), 0);
        assert_eq!(gov.stats().reserved, 0);
        assert_eq!(gov.stats().released_total, 10);
    }

    #[test]
    fn pressure_bands() {
        let gov = MemoryGovernor::new(100);
        let g = gov.grant(None);
        assert_eq!(gov.pressure(), PressureLevel::Nominal);
        assert!(g.try_reserve(50));
        assert_eq!(gov.pressure(), PressureLevel::Elevated);
        assert!(g.try_reserve(25));
        assert_eq!(gov.pressure(), PressureLevel::High);
        assert!(g.try_reserve(20));
        assert_eq!(gov.pressure(), PressureLevel::Critical);
        assert!(PressureLevel::Nominal < PressureLevel::Critical);
    }

    #[test]
    fn unlimited_governor_never_denies() {
        let gov = MemoryGovernor::unlimited();
        let g = gov.grant(None);
        assert!(g.try_reserve(1 << 40));
        assert_eq!(gov.pressure(), PressureLevel::Nominal);
    }

    #[test]
    fn detached_grant_enforces_budget_only() {
        let g = MemoryGrant::detached(Some(64));
        assert!(g.try_reserve(64));
        assert!(!g.try_reserve(1));
        g.release(32);
        assert!(g.try_reserve(1));
        assert_eq!(g.peak(), 64);
    }

    #[test]
    fn spill_bytes_reconcile() {
        let gov = MemoryGovernor::new(100);
        let g = gov.grant(None);
        g.note_spill(4096, 0);
        g.note_spill(0, 4096);
        let s = gov.stats();
        assert_eq!(s.spill_bytes_written, s.spill_bytes_read);
    }

    #[test]
    fn reset_clears_cumulative_counters() {
        let gov = MemoryGovernor::new(100);
        let g = gov.grant(Some(10));
        assert!(g.try_reserve(10));
        assert!(!g.try_reserve(10));
        g.note_spill(5, 5);
        gov.reset();
        let s = gov.stats();
        assert_eq!(s.reserved, 10, "live reservations survive reset");
        assert_eq!(s.peak_reserved, 10);
        assert_eq!(
            (s.reserved_total, s.grant_denials, s.spill_bytes_written),
            (0, 0, 0)
        );
    }
}
