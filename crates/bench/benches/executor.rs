//! Executor microbenchmarks over a 1/50-scale Table 1 database: the
//! competing Query 2 plans (index vs naive) and the full Query 1 pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use oodb_bench::queries;
use oodb_core::config::rule_names as rn;
use oodb_core::{OpenOodb, OptimizerConfig};
use oodb_exec::execute;
use oodb_object::paper::paper_model_scaled;
use oodb_storage::{generate_paper_db, GenConfig};
use std::hint::black_box;

fn bench_executor(c: &mut Criterion) {
    let (store, _) = generate_paper_db(GenConfig {
        scale_div: 50,
        ..Default::default()
    });
    let model = paper_model_scaled(50);

    let mut group = c.benchmark_group("executor");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));

    let plan_for = |config: OptimizerConfig, make: fn(&_) -> queries::PaperQuery| {
        let q = make(&model);
        let out = OpenOodb::with_config(&q.env, config)
            .optimize(&q.plan, q.result_vars)
            .expect("plan");
        (q, out.plan)
    };

    let (q2, idx_plan) = plan_for(OptimizerConfig::all_rules(), queries::query2);
    group.bench_function("query2-index-scan", |b| {
        b.iter(|| black_box(execute(&store, &q2.env, &idx_plan)))
    });

    let (q2n, naive_plan) = plan_for(
        OptimizerConfig::without(&[rn::COLLAPSE_TO_INDEX_SCAN, rn::MAT_TO_JOIN]),
        queries::query2,
    );
    group.bench_function("query2-naive-assembly", |b| {
        b.iter(|| black_box(execute(&store, &q2n.env, &naive_plan)))
    });

    let (q1, q1_plan) = plan_for(OptimizerConfig::all_rules(), queries::query1);
    group.bench_function("query1-optimal", |b| {
        b.iter(|| black_box(execute(&store, &q1.env, &q1_plan)))
    });

    let (q4, q4_plan) = plan_for(OptimizerConfig::all_rules(), queries::query4);
    group.bench_function("query4-optimal", |b| {
        b.iter(|| black_box(execute(&store, &q4.env, &q4_plan)))
    });
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
