//! Optimization-time microbenchmarks — the paper's performance goal:
//! "moderately complex queries should be optimized on today's
//! workstations in less than 1 sec" (0.05–0.21 s on the 25 MHz
//! DECstation; microseconds here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oodb_bench::queries;
use oodb_core::{OpenOodb, OptimizerConfig};
use oodb_object::paper::paper_model;
use std::hint::black_box;

fn bench_optimize(c: &mut Criterion) {
    let m = paper_model();
    let mut group = c.benchmark_group("optimize");
    group.sample_size(40);
    group.measurement_time(std::time::Duration::from_secs(2));

    type MakeQuery = fn(&oodb_object::paper::PaperModel) -> queries::PaperQuery;
    let cases: [(&str, MakeQuery); 5] = [
        ("query1", queries::query1),
        ("query2", queries::query2),
        ("query3", queries::query3),
        ("query4", queries::query4),
        ("fig2", queries::fig2_query),
    ];
    for (name, make) in cases {
        let q = make(&m);
        group.bench_with_input(BenchmarkId::new("all-rules", name), &q, |b, q| {
            b.iter(|| {
                let opt = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules());
                black_box(opt.optimize(&q.plan, q.result_vars))
            })
        });
    }

    // Table 2's configurations on Query 1.
    let q1 = queries::query1(&m);
    for (label, config) in [
        (
            "wo-commutativity",
            OptimizerConfig::without_join_commutativity(),
        ),
        ("wo-window", OptimizerConfig::without_window()),
        (
            "pruned",
            OptimizerConfig {
                prune: true,
                ..OptimizerConfig::all_rules()
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new(label, "query1"), &q1, |b, q| {
            b.iter(|| {
                let opt = OpenOodb::with_config(&q.env, config.clone());
                black_box(opt.optimize(&q.plan, q.result_vars))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimize);
criterion_main!(benches);
