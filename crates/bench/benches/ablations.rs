//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! exhaustive search vs branch-and-bound pruning (search effort), the
//! exploration fixpoint itself, and the Lesson 7 warm-start assembly
//! extension.

use criterion::{criterion_group, criterion_main, Criterion};
use oodb_bench::queries;
use oodb_core::{OpenOodb, OptimizerConfig};
use oodb_object::paper::paper_model;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let m = paper_model();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(40);
    group.measurement_time(std::time::Duration::from_secs(2));

    // Exhaustive vs pruned search on the join-heaviest query.
    let q1 = queries::query1(&m);
    group.bench_function("q1-exhaustive", |b| {
        b.iter(|| {
            let opt = OpenOodb::with_config(&q1.env, OptimizerConfig::all_rules());
            black_box(opt.optimize(&q1.plan, q1.result_vars))
        })
    });
    group.bench_function("q1-branch-and-bound", |b| {
        b.iter(|| {
            let opt = OpenOodb::with_config(
                &q1.env,
                OptimizerConfig {
                    prune: true,
                    ..OptimizerConfig::all_rules()
                },
            );
            black_box(opt.optimize(&q1.plan, q1.result_vars))
        })
    });

    // Transformation fixpoint alone (no costing) on the Mat-chain query.
    let fig2 = queries::fig2_query(&m);
    group.bench_function("fig2-explore-only", |b| {
        b.iter(|| {
            let opt = OpenOodb::with_config(&fig2.env, OptimizerConfig::all_rules());
            black_box(opt.explore_alternatives(&fig2.plan))
        })
    });

    // Warm-start assembly enabled: a larger implementation-rule space.
    group.bench_function("fig2-with-warm-assembly", |b| {
        b.iter(|| {
            let opt = OpenOodb::with_config(
                &fig2.env,
                OptimizerConfig {
                    enable_warm_assembly: true,
                    ..OptimizerConfig::all_rules()
                },
            );
            black_box(opt.optimize(&fig2.plan, fig2.result_vars))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
