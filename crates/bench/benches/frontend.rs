//! Front-end microbenchmarks: ZQL lexing/parsing and the simplification
//! stage ("this translation is very straightforward" — and cheap).

use criterion::{criterion_group, criterion_main, Criterion};
use oodb_object::paper::paper_model;
use std::hint::black_box;

const Q1: &str = r#"SELECT Newobject(e.name(), e.job().name(), e.dept().name())
FROM Employee e IN Employees
WHERE e.dept().plant().location() == "Dallas""#;

const Q4: &str = r#"SELECT t FROM Task t IN Tasks
WHERE t.time() == 100
  && EXISTS (SELECT m FROM m IN t.team_members() WHERE m.name() == "Fred")"#;

fn bench_frontend(c: &mut Criterion) {
    let m = paper_model();
    let mut group = c.benchmark_group("frontend");
    group.sample_size(60);
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("parse-q1", |b| {
        b.iter(|| black_box(zql::parser::parse(Q1).unwrap()))
    });
    group.bench_function("parse-q4-exists", |b| {
        b.iter(|| black_box(zql::parser::parse(Q4).unwrap()))
    });
    group.bench_function("compile-q1", |b| {
        b.iter(|| black_box(zql::compile(Q1, &m.schema, &m.catalog).unwrap()))
    });
    group.bench_function("compile-q4-exists", |b| {
        b.iter(|| black_box(zql::compile(Q4, &m.schema, &m.catalog).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
