//! Shared replay-workload helpers for the service-level benches
//! (`plancache`, `scaling`, `memlimit`, `server`): the ZQL query pool
//! built from the paper's four shapes, a Zipf sampler for skewed
//! replay, and the percentile picker the latency reports use.

use rand::rngs::SmallRng;
use rand::Rng;

/// The distinct query pool: the paper's four query shapes, each with a
/// spread of constants drawn from the generator's value pools.
/// `locations`/`mayors`/`times` size the constant spread per shape
/// (the Q2 and Q3 families share the mayor pool).
pub fn paper_query_pool(locations: usize, mayors: usize, times: usize) -> Vec<String> {
    let mut pool = Vec::new();
    // Q1: the Dallas report — path-expression join chain.
    let mut locs = vec!["Dallas".to_string()];
    locs.extend((1..locations).map(|i| format!("loc{i:05}")));
    for loc in locs {
        pool.push(format!(
            "SELECT Newobject(e.name(), e.job().name(), e.dept().name()) \
             FROM Employee e IN Employees \
             WHERE e.dept().plant().location() == \"{loc}\""
        ));
    }
    // Q2: mayor-name selection (collapses to one path-index scan).
    let mut names = vec!["Joe".to_string()];
    names.extend((1..mayors).map(|i| format!("p{i:05}")));
    for name in &names {
        pool.push(format!(
            "SELECT c FROM City c IN Cities WHERE c.mayor().name() == \"{name}\""
        ));
    }
    // Q3: projection needing the mayor in memory (assembly enforcer).
    for name in &names {
        pool.push(format!(
            "SELECT Newobject(c.mayor().age(), c.name()) \
             FROM City c IN Cities WHERE c.mayor().name() == \"{name}\""
        ));
    }
    // Q4: set-valued path with EXISTS (unnest + mat).
    for t in (1..=times).map(|i| i * 10) {
        pool.push(format!(
            "SELECT t FROM Task t IN Tasks WHERE t.time() == {t} \
             && EXISTS (SELECT m FROM m IN t.team_members() WHERE m.name() == \"Fred\")"
        ));
    }
    pool
}

/// One canonical representative per shape (the warm-cache Q1–Q4 set
/// overhead comparisons run against).
pub fn canonical_queries() -> [String; 4] {
    [
        "SELECT Newobject(e.name(), e.job().name(), e.dept().name()) \
         FROM Employee e IN Employees \
         WHERE e.dept().plant().location() == \"Dallas\""
            .to_string(),
        "SELECT c FROM City c IN Cities WHERE c.mayor().name() == \"Joe\"".to_string(),
        "SELECT Newobject(c.mayor().age(), c.name()) \
         FROM City c IN Cities WHERE c.mayor().name() == \"Joe\""
            .to_string(),
        "SELECT t FROM Task t IN Tasks WHERE t.time() == 100 \
         && EXISTS (SELECT m FROM m IN t.team_members() WHERE m.name() == \"Fred\")"
            .to_string(),
    ]
}

/// Zipf(s) sampler over `n` ranks via inverse CDF on a cumulative table.
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the cumulative table for ranks `1..=n` with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let total = *self.cumulative.last().unwrap();
        let u = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c < u)
    }
}

/// Nearest-rank percentile over an already-sorted sample.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}
