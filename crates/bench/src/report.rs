//! Table formatting helpers shared by the experiment binaries.

/// Formats seconds in the paper's style: sub-second values with two
/// decimals, larger values with three significant-ish digits.
pub fn fmt_secs(s: f64) -> String {
    if s < 10.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.0}")
    }
}

/// Renders a simple aligned table: header row + data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Side-by-side paper-vs-measured comparison cell.
pub fn vs(paper: f64, ours: f64) -> String {
    format!("{} (paper {})", fmt_secs(ours), fmt_secs(paper))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["333".into(), "4444".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].ends_with("2"));
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(0.08), "0.08");
        assert_eq!(fmt_secs(119.6), "120");
        assert_eq!(fmt_secs(1.73), "1.73");
    }
}
