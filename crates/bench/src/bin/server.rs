//! Serving-layer benchmark: what does putting `oodb-server` between a
//! client and the `QueryService` cost, and how does the wire behave
//! under load?
//!
//! Four sections, all over loopback against the Table 1 database:
//!
//! 1. **Overhead** — warm-cache Q1–Q4 submitted in-process
//!    (`QueryService::submit_with`) vs through `POST /query` on a
//!    loopback connection, under the same calibrated realized-I/O
//!    stall. The gate: loopback mean latency ≤ 25% over in-process.
//!    A cpu-only (no stall) pair is reported alongside for reference.
//! 2. **Prepared replay** — the full distinct pool registered via
//!    `POST /prepare`, warmed once, then a Zipf-skewed pipelined storm
//!    of `POST /execute/{id}`. The gate: plan-cache hit rate ≥ 99%
//!    measured from the server-side cache-stats delta.
//! 3. **Closed loop** — 1/2/4/8 client connections, each issuing one
//!    request at a time; qps and p50/p99 per client count.
//! 4. **Open loop** — 1/2/4/8 split-connection senders on a fixed
//!    schedule against a deliberately small pool (2 workers, queue
//!    limit 2), receivers draining pipelined responses. Latency is
//!    measured from the *scheduled* send instant (no coordinated
//!    omission); 429/503 answers count as sheds, and at 8 clients the
//!    offered load exceeds capacity so sheds must appear.
//!
//! Writes `BENCH_server.json` at the repo root. Set
//! `OODB_SERVER_BENCH_QUICK=1` for a CI-sized run (same sections and
//! gates, fewer samples).

use oodb_bench::workload::{canonical_queries, paper_query_pool, percentile, Zipf};
use oodb_core::{CostParams, OptimizerConfig};
use oodb_server::{Client, RequestOptions, Server, ServerConfig};
use oodb_service::{QueryService, SubmitOptions};
use oodb_storage::{generate_paper_db, GenConfig, Store};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::mpsc;
use std::time::{Duration, Instant};

const SCALE_DIV: u64 = 10;
const ZIPF_EXPONENT: f64 = 1.0;
const TARGET_STALL_S: f64 = 0.003;
const CLIENTS: &[usize] = &[1, 2, 4, 8];
/// Per-connection send interval for the open-loop section: close
/// enough to the realized stall that eight senders overrun a
/// two-worker pool, far enough that one sender alone never queues.
const OPEN_INTERVAL: Duration = Duration::from_millis(4);

struct Sizes {
    overhead_rounds: usize,
    replay_samples: usize,
    closed_per_client: usize,
    open_per_client: usize,
}

fn quick() -> bool {
    std::env::var("OODB_SERVER_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn service(store: &Store) -> QueryService {
    QueryService::new(
        store.clone(),
        CostParams::default(),
        OptimizerConfig::all_rules(),
        256,
        8,
    )
}

fn mean(ns: &[u64]) -> u64 {
    ns.iter().sum::<u64>() / ns.len().max(1) as u64
}

/// Mean wall-clock per in-process warm submit over the canonical set.
fn inprocess_mean_ns(svc: &QueryService, rounds: usize, io_scale: f64) -> u64 {
    let queries = canonical_queries();
    let opts = SubmitOptions {
        realize_io_scale: io_scale,
        ..Default::default()
    };
    let mut ns = Vec::with_capacity(rounds * queries.len());
    for _ in 0..rounds {
        for q in &queries {
            let t = Instant::now();
            let out = svc.submit_with(q, opts).expect("in-process submit failed");
            ns.push(t.elapsed().as_nanos() as u64);
            assert!(out.cache_hit, "overhead section must run warm");
        }
    }
    mean(&ns)
}

/// Mean wall-clock per loopback `POST /query` over the canonical set.
fn loopback_mean_ns(client: &mut Client, rounds: usize, io_scale: f64) -> u64 {
    let queries = canonical_queries();
    let opts = RequestOptions {
        realize_io_scale: Some(io_scale),
        ..Default::default()
    };
    let mut ns = Vec::with_capacity(rounds * queries.len());
    for _ in 0..rounds {
        for q in &queries {
            let t = Instant::now();
            let out = client.query(q, opts).expect("loopback query failed");
            ns.push(t.elapsed().as_nanos() as u64);
            assert!(out.cache_hit, "overhead section must run warm");
        }
    }
    mean(&ns)
}

fn overhead_pct(inproc_ns: u64, loopback_ns: u64) -> f64 {
    (loopback_ns as f64 / inproc_ns.max(1) as f64 - 1.0) * 100.0
}

#[derive(Clone, Copy, Debug, Default)]
struct LoopStats {
    requests: usize,
    sheds: usize,
    qps: f64,
    p50_latency_ns: u64,
    p99_latency_ns: u64,
}

impl LoopStats {
    fn shed_rate(&self) -> f64 {
        self.sheds as f64 / self.requests.max(1) as f64
    }
}

fn json_loop_run(out: &mut String, clients: usize, r: &LoopStats) {
    let _ = write!(
        out,
        "{{\"clients\": {clients}, \"requests\": {}, \"qps\": {:.1}, \
         \"p50_latency_ns\": {}, \"p99_latency_ns\": {}, \"sheds\": {}, \
         \"shed_rate\": {:.4}}}",
        r.requests,
        r.qps,
        r.p50_latency_ns,
        r.p99_latency_ns,
        r.sheds,
        r.shed_rate()
    );
}

/// Closed loop: `clients` connections, each replaying its share of the
/// Zipf stream one request at a time.
fn closed_loop(
    addr: &str,
    ids: &[u64],
    clients: usize,
    per_client: usize,
    io_scale: f64,
) -> LoopStats {
    let opts = RequestOptions {
        realize_io_scale: Some(io_scale),
        ..Default::default()
    };
    let zipf = Zipf::new(ids.len(), ZIPF_EXPONENT);
    let wall = Instant::now();
    let per_thread: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let zipf = &zipf;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect failed");
                    let mut rng = SmallRng::seed_from_u64(0xc105_ed00 + c as u64);
                    let mut ns = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let id = ids[zipf.sample(&mut rng)];
                        let t = Instant::now();
                        let out = client.execute(id, opts).expect("closed-loop execute");
                        ns.push(t.elapsed().as_nanos() as u64);
                        assert!(out.cache_hit, "closed loop must replay warm plans");
                    }
                    ns
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_s = wall.elapsed().as_secs_f64();
    let mut latencies: Vec<u64> = per_thread.into_iter().flatten().collect();
    latencies.sort_unstable();
    LoopStats {
        requests: latencies.len(),
        sheds: 0,
        qps: latencies.len() as f64 / wall_s,
        p50_latency_ns: percentile(&latencies, 0.50),
        p99_latency_ns: percentile(&latencies, 0.99),
    }
}

/// Open loop: each connection splits into a sender on a fixed schedule
/// and a receiver draining pipelined responses. Latency runs from the
/// *scheduled* send instant to response receipt, so queueing delay the
/// server causes is charged to the server, not silently omitted.
fn open_loop(
    addr: &str,
    ids: &[u64],
    clients: usize,
    per_client: usize,
    io_scale: f64,
) -> LoopStats {
    let opts = RequestOptions {
        realize_io_scale: Some(io_scale),
        ..Default::default()
    };
    let zipf = Zipf::new(ids.len(), ZIPF_EXPONENT);
    let wall = Instant::now();
    let per_conn: Vec<(Vec<u64>, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let zipf = &zipf;
                s.spawn(move || {
                    let client = Client::connect(addr).expect("connect failed");
                    let (mut tx, mut rx) = client.split();
                    let (sched_tx, sched_rx) = mpsc::channel::<Instant>();
                    let sender = s.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(0x09e7_1009 + c as u64);
                        let start = Instant::now();
                        for i in 0..per_client {
                            let target = start + OPEN_INTERVAL * i as u32;
                            if let Some(gap) = target.checked_duration_since(Instant::now()) {
                                std::thread::sleep(gap);
                            }
                            sched_tx.send(target).unwrap();
                            tx.send_execute(ids[zipf.sample(&mut rng)], opts)
                                .expect("open-loop send");
                        }
                    });
                    let mut ns = Vec::new();
                    let mut sheds = 0usize;
                    for _ in 0..per_client {
                        let scheduled = sched_rx.recv().unwrap();
                        let resp = rx.recv().expect("open-loop recv");
                        match resp.status {
                            200 => ns.push(scheduled.elapsed().as_nanos() as u64),
                            429 | 503 => {
                                assert!(
                                    resp.header("retry-after").is_some(),
                                    "shed responses must carry Retry-After"
                                );
                                sheds += 1;
                            }
                            other => panic!("open loop saw HTTP {other}"),
                        }
                    }
                    sender.join().unwrap();
                    (ns, sheds)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_s = wall.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    let mut sheds = 0;
    for (ns, s) in per_conn {
        latencies.extend(ns);
        sheds += s;
    }
    latencies.sort_unstable();
    LoopStats {
        requests: latencies.len() + sheds,
        sheds,
        qps: latencies.len() as f64 / wall_s,
        p50_latency_ns: percentile(&latencies, 0.50),
        p99_latency_ns: percentile(&latencies, 0.99),
    }
}

fn main() {
    let quick = quick();
    let sizes = if quick {
        Sizes {
            overhead_rounds: 10,
            replay_samples: 120,
            closed_per_client: 40,
            open_per_client: 60,
        }
    } else {
        Sizes {
            overhead_rounds: 50,
            replay_samples: 600,
            closed_per_client: 150,
            open_per_client: 250,
        }
    };

    eprintln!("generating the Table 1 database at scale 1/{SCALE_DIV}...");
    let (store, _model) = generate_paper_db(GenConfig {
        scale_div: SCALE_DIV,
        ..Default::default()
    });
    let pool_queries = paper_query_pool(10, 16, 16);

    // Calibrate the realized-I/O scale so the mean stall lands on
    // TARGET_STALL_S, same as the plancache bench.
    let calib = service(&store);
    let mut mean_io_s = 0.0;
    for q in canonical_queries().iter() {
        mean_io_s += calib.submit(q).expect("calibration query failed").sim_io_s;
    }
    mean_io_s /= 4.0;
    let io_scale = (TARGET_STALL_S / mean_io_s.max(1e-9)).clamp(1e-4, 10.0);
    eprintln!("mean simulated I/O {mean_io_s:.3} s -> realize scale {io_scale:.4}");

    // --- 1. Overhead: in-process submit vs loopback /query. -------------
    let svc = service(&store);
    for q in canonical_queries().iter() {
        svc.submit(q).expect("warm query failed");
    }
    let server = Server::start(svc.clone(), "127.0.0.1:0", ServerConfig::default())
        .expect("server start failed");
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect failed");

    let inproc_ns = inprocess_mean_ns(&svc, sizes.overhead_rounds, io_scale);
    let loop_ns = loopback_mean_ns(&mut client, sizes.overhead_rounds, io_scale);
    let realized_overhead = overhead_pct(inproc_ns, loop_ns);
    let inproc_cpu_ns = inprocess_mean_ns(&svc, sizes.overhead_rounds, 0.0);
    let loop_cpu_ns = loopback_mean_ns(&mut client, sizes.overhead_rounds, 0.0);
    let cpu_overhead = overhead_pct(inproc_cpu_ns, loop_cpu_ns);
    eprintln!(
        "overhead: realized {:.3} ms in-process vs {:.3} ms loopback ({realized_overhead:+.1}%); \
         cpu-only {:.1} us vs {:.1} us ({cpu_overhead:+.1}%)",
        inproc_ns as f64 / 1e6,
        loop_ns as f64 / 1e6,
        inproc_cpu_ns as f64 / 1e3,
        loop_cpu_ns as f64 / 1e3,
    );
    assert!(
        realized_overhead <= 25.0,
        "loopback serving overhead {realized_overhead:.1}% exceeds the 25% budget"
    );

    // --- 2. Prepared replay through the plan cache. ----------------------
    let mut ids = Vec::with_capacity(pool_queries.len());
    for q in &pool_queries {
        let (id, _) = client.prepare(q).expect("prepare failed");
        ids.push(id);
    }
    // Warm every statement once so the storm measures steady state.
    for &id in &ids {
        client
            .execute(id, RequestOptions::default())
            .expect("warm execute failed");
    }
    let before = server.service().cache().stats();
    let zipf = Zipf::new(ids.len(), ZIPF_EXPONENT);
    let mut rng = SmallRng::seed_from_u64(0x0b5e_55ed);
    let stream: Vec<u64> = (0..sizes.replay_samples)
        .map(|_| ids[zipf.sample(&mut rng)])
        .collect();
    for batch in stream.chunks(16) {
        for r in client
            .pipeline_execute(batch, RequestOptions::default())
            .expect("replay batch failed")
        {
            r.expect("replay execute failed");
        }
    }
    let after = server.service().cache().stats();
    let (hits, misses) = (after.hits - before.hits, after.misses - before.misses);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    eprintln!(
        "prepared replay: {} statements, {} samples, hit rate {:.2}%",
        ids.len(),
        sizes.replay_samples,
        hit_rate * 100.0
    );
    assert!(
        hit_rate >= 0.99,
        "prepared replay hit rate {hit_rate:.4} below the 99% gate"
    );
    drop(client);
    server.shutdown();

    // --- 3. Closed loop at 1/2/4/8 clients. ------------------------------
    let closed_server = Server::start(
        service(&store),
        "127.0.0.1:0",
        ServerConfig {
            pool_workers: 8,
            ..Default::default()
        },
    )
    .expect("closed-loop server start failed");
    let closed_addr = closed_server.local_addr().to_string();
    let mut warm = Client::connect(&closed_addr).expect("connect failed");
    let mut closed_ids = Vec::with_capacity(pool_queries.len());
    for q in &pool_queries {
        let (id, _) = warm.prepare(q).expect("prepare failed");
        warm.execute(id, RequestOptions::default())
            .expect("warm execute failed");
        closed_ids.push(id);
    }
    drop(warm);
    let mut closed_rows = Vec::new();
    for &clients in CLIENTS {
        let r = closed_loop(
            &closed_addr,
            &closed_ids,
            clients,
            sizes.closed_per_client,
            io_scale,
        );
        eprintln!(
            "closed loop {clients} client(s): {:.0} q/s, p50 {:.2} ms, p99 {:.2} ms",
            r.qps,
            r.p50_latency_ns as f64 / 1e6,
            r.p99_latency_ns as f64 / 1e6
        );
        closed_rows.push((clients, r));
    }
    closed_server.shutdown();

    // --- 4. Open loop against a deliberately small pool. ------------------
    let open_server = Server::start(
        service(&store),
        "127.0.0.1:0",
        ServerConfig {
            pool_workers: 2,
            queue_limit: 2,
            ..Default::default()
        },
    )
    .expect("open-loop server start failed");
    let open_addr = open_server.local_addr().to_string();
    let mut warm = Client::connect(&open_addr).expect("connect failed");
    let mut open_ids = Vec::with_capacity(pool_queries.len());
    for q in &pool_queries {
        let (id, _) = warm.prepare(q).expect("prepare failed");
        warm.execute(id, RequestOptions::default())
            .expect("warm execute failed");
        open_ids.push(id);
    }
    drop(warm);
    let per_conn_qps = 1.0 / OPEN_INTERVAL.as_secs_f64();
    let mut open_rows = Vec::new();
    for &clients in CLIENTS {
        let r = open_loop(
            &open_addr,
            &open_ids,
            clients,
            sizes.open_per_client,
            io_scale,
        );
        eprintln!(
            "open loop {clients} client(s) @ {:.0} q/s offered: {:.0} q/s completed, \
             p50 {:.2} ms, p99 {:.2} ms, shed {:.1}%",
            per_conn_qps * clients as f64,
            r.qps,
            r.p50_latency_ns as f64 / 1e6,
            r.p99_latency_ns as f64 / 1e6,
            r.shed_rate() * 100.0
        );
        open_rows.push((clients, r));
    }
    let overloaded = &open_rows.last().unwrap().1;
    assert!(
        overloaded.sheds > 0,
        "8 clients over a 2-worker/2-queue pool must shed"
    );
    open_server.shutdown();

    // --- JSON report. -----------------------------------------------------
    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"bench\": \"server\",\n  \"scale_div\": {SCALE_DIV},\n  \
         \"quick\": {quick},\n  \"zipf_exponent\": {ZIPF_EXPONENT},\n  \
         \"realize_io_scale\": {io_scale:.6},\n"
    );
    let _ = writeln!(
        json,
        "  \"overhead\": {{\"rounds\": {}, \
         \"realized\": {{\"inprocess_mean_ns\": {inproc_ns}, \
         \"loopback_mean_ns\": {loop_ns}, \"overhead_pct\": {realized_overhead:.2}}}, \
         \"cpu_only\": {{\"inprocess_mean_ns\": {inproc_cpu_ns}, \
         \"loopback_mean_ns\": {loop_cpu_ns}, \"overhead_pct\": {cpu_overhead:.2}}}}},",
        sizes.overhead_rounds
    );
    let _ = writeln!(
        json,
        "  \"prepared_replay\": {{\"statements\": {}, \"samples\": {}, \
         \"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {hit_rate:.4}}},",
        ids.len(),
        sizes.replay_samples
    );
    json.push_str("  \"closed_loop\": [\n");
    for (i, (clients, r)) in closed_rows.iter().enumerate() {
        json.push_str("    ");
        json_loop_run(&mut json, *clients, r);
        json.push_str(if i + 1 < closed_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"open_loop\": {{\"pool_workers\": 2, \"queue_limit\": 2, \
         \"per_client_offered_qps\": {per_conn_qps:.1}, \"runs\": ["
    );
    for (i, (clients, r)) in open_rows.iter().enumerate() {
        json.push_str("    ");
        json_loop_run(&mut json, *clients, r);
        json.push_str(if i + 1 < open_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]}\n}\n");

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(out_path, &json).expect("write BENCH_server.json");
    eprintln!("wrote {out_path}");
    println!("{json}");
}
