//! `scaling` — multicore scaling benchmark and regression gate.
//!
//! Two experiments, one JSON report (`BENCH_scaling.json`):
//!
//! 1. **Inter-query scaling**: replays the plancache bench's Zipf-skewed
//!    warm query stream through the [`oodb_service::QueryService`] at
//!    1/2/4/8 worker threads in cpu-only mode (no realized I/O stalls).
//!    Before the epoch-snapshot refactor this curve *fell* with thread
//!    count (0.61× at 8 threads) because every submission serialized on
//!    service-wide `RwLock`s; with lock-free snapshot reads it must not.
//! 2. **Intra-query scaling**: one big CPU-bound query (filter + hash
//!    join probe + projection over the employee extent) executed by a
//!    single [`oodb_exec::Executor`] at morsel worker counts 1/2/4/8,
//!    asserting byte-identical results at every width.
//!
//! Gates — a failed *enforced* gate exits nonzero, so CI can run this
//! binary directly:
//!
//! * `cliff_8t_vs_1t` (always enforced): 8-thread cpu-only throughput
//!   must be at least 0.95× the 1-thread throughput. This catches the
//!   scaling *cliff* (shared-state contention) even on a single-core
//!   host, where the best possible outcome is parity.
//! * `throughput_3x_at_8t`, `optimize_within_3x_at_8t`,
//!   `morsel_2x_at_4w`: the multiplicative targets. They need real
//!   cores, so they are enforced only when `available_parallelism`
//!   covers the thread count and reported as `"skipped"` otherwise.
//!
//! `SCALING_SAMPLES` overrides the per-run sample count (CI uses a
//! reduced stream); `SCALING_MORSEL_DIV` overrides the scale divisor of
//! the big-query database.

use oodb_algebra::{CmpOp, Operand, PhysicalOp, PhysicalPlan, PlanEst, QueryBuilder, QueryEnv};
use oodb_bench::workload::{paper_query_pool, percentile, Zipf};
use oodb_core::{CostParams, OptimizerConfig};
use oodb_exec::{ExecResult, Executor};
use oodb_object::paper::PaperModel;
use oodb_object::Value;
use oodb_service::{QueryService, SubmitOptions, WorkerPool};
use oodb_storage::{generate_paper_db, GenConfig, Store};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

const SCALE_DIV: u64 = 10;
const DEFAULT_SAMPLES: usize = 600;
const THREADS: &[usize] = &[1, 2, 4, 8];
const MORSEL_WORKERS: &[usize] = &[1, 2, 4, 8];
const ZIPF_EXPONENT: f64 = 1.0;
/// Default scale divisor for the big-query database: 1/4 scale keeps
/// 12,500 employees on the probe side — minutes of morsel work per
/// point, seconds of generation.
const DEFAULT_MORSEL_DIV: u64 = 4;
/// Timed repetitions per morsel worker count (min-of wins).
const MORSEL_REPS: usize = 9;
/// Noise allowance on the always-enforced cliff gate.
const CLIFF_TOLERANCE: f64 = 0.95;

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The same distinct query pool the plancache bench replays (the
/// paper's four shapes with a spread of constants).
fn query_pool() -> Vec<String> {
    paper_query_pool(10, 16, 16)
}

struct ReplayRow {
    threads: usize,
    qps: f64,
    mean_optimize_ns: u64,
    p50_latency_ns: u64,
    p99_latency_ns: u64,
    hit_rate: f64,
}

/// One warm cpu-only replay of `stream` through `threads` pool workers.
fn replay(
    service: &QueryService,
    stream: &[usize],
    queries: &[String],
    threads: usize,
) -> ReplayRow {
    let before = service.cache().stats();
    let pool = WorkerPool::new(service.clone(), threads);
    let opts = SubmitOptions::default();
    let wall = Instant::now();
    let pending: Vec<_> = stream
        .iter()
        .map(|&i| pool.submit(queries[i].as_str(), opts))
        .collect();
    let outputs: Vec<_> = pending
        .into_iter()
        .map(|p| p.wait().expect("query failed"))
        .collect();
    let wall_s = wall.elapsed().as_secs_f64();
    pool.shutdown();
    let after = service.cache().stats();

    let mut latencies: Vec<u64> = outputs
        .iter()
        .map(|o| o.compile_ns + o.optimize_ns + o.execute_ns)
        .collect();
    latencies.sort_unstable();
    let mean_optimize_ns =
        outputs.iter().map(|o| o.optimize_ns).sum::<u64>() / outputs.len().max(1) as u64;
    let lookups = (after.hits + after.misses) - (before.hits + before.misses);
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        (after.hits - before.hits) as f64 / lookups as f64
    };
    ReplayRow {
        threads,
        qps: stream.len() as f64 / wall_s,
        mean_optimize_ns,
        p50_latency_ns: percentile(&latencies, 0.50),
        p99_latency_ns: percentile(&latencies, 0.99),
        hit_rate,
    }
}

/// Builds the big CPU-bound plan: project employee names out of a
/// hash join between the department extent (build) and a filtered
/// employee scan (probe) — every row passes the filter, so the probe
/// side stays at full extent size and all three morsel-parallel
/// segments (filter, probe, projection) see the whole input.
fn big_query(m: &PaperModel) -> (PhysicalPlan, QueryEnv) {
    let plan = |op, children| PhysicalPlan {
        op,
        children,
        est: PlanEst::default(),
    };
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (_, e) = qb.get(m.ids.employees, "e");
    let (_, d) = qb.get(m.ids.department_extent, "d");
    let join = qb.ref_eq(e, m.ids.emp_dept, d);
    let sel = qb.cmp_const(e, m.ids.emp_salary, CmpOp::Ge, Value::Int(0));
    let name = Operand::Attr {
        var: e,
        field: m.ids.person_name,
    };
    let p = plan(
        PhysicalOp::AlgProject { items: vec![name] },
        vec![plan(
            PhysicalOp::HybridHashJoin { pred: join },
            vec![
                plan(
                    PhysicalOp::FileScan {
                        coll: m.ids.department_extent,
                        var: d,
                    },
                    vec![],
                ),
                plan(
                    PhysicalOp::Filter { pred: sel },
                    vec![plan(
                        PhysicalOp::FileScan {
                            coll: m.ids.employees,
                            var: e,
                        },
                        vec![],
                    )],
                ),
            ],
        )],
    );
    (p, qb.into_env())
}

struct MorselPoint {
    workers: usize,
    min_wall_ns: u64,
    speedup: f64,
}

/// Times the big query at each worker count (min of [`MORSEL_REPS`]
/// runs, warm buffer pool) and checks byte-identical output.
fn morsel_curve(store: &Store, env: &QueryEnv, p: &PhysicalPlan) -> (Vec<MorselPoint>, bool, u64) {
    let mut baseline: Option<ExecResult> = None;
    let mut identical = true;
    let mut points = Vec::new();
    let mut t1 = 0u64;
    for &workers in MORSEL_WORKERS {
        let mut ex = Executor::new(store, env);
        ex.set_parallelism(workers);
        ex.run(p); // warm the buffer pool out of the timing
        let mut best = u64::MAX;
        for _ in 0..MORSEL_REPS {
            let wall = Instant::now();
            let res = ex.run(p);
            best = best.min(wall.elapsed().as_nanos() as u64);
            match &baseline {
                None => baseline = Some(res),
                Some(b) => identical &= res == *b,
            }
        }
        if workers == 1 {
            t1 = best;
        }
        points.push(MorselPoint {
            workers,
            min_wall_ns: best,
            speedup: t1 as f64 / best.max(1) as f64,
        });
        eprintln!(
            "morsel {workers}w: {:.2} ms (x{:.2})",
            best as f64 / 1e6,
            t1 as f64 / best.max(1) as f64
        );
    }
    let rows = baseline.as_ref().map_or(0, ExecResult::len) as u64;
    (points, identical, rows)
}

struct Gate {
    name: &'static str,
    ratio: f64,
    target: f64,
    enforced: bool,
    pass: bool,
}

impl Gate {
    fn status(&self) -> &'static str {
        if !self.enforced {
            "skipped"
        } else if self.pass {
            "pass"
        } else {
            "FAIL"
        }
    }
}

fn main() {
    let samples = env_or("SCALING_SAMPLES", DEFAULT_SAMPLES as u64) as usize;
    let morsel_div = env_or("SCALING_MORSEL_DIV", DEFAULT_MORSEL_DIV);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("scaling bench: {cores} cores, {samples} samples/run");

    // --- Inter-query: warm Zipf replay at each thread count. ------------
    let (store, _model) = generate_paper_db(GenConfig {
        scale_div: SCALE_DIV,
        ..Default::default()
    });
    let queries = query_pool();
    let zipf = Zipf::new(queries.len(), ZIPF_EXPONENT);
    let mut rng = SmallRng::seed_from_u64(0x5ca1_ab1e);
    let stream: Vec<usize> = (0..samples).map(|_| zipf.sample(&mut rng)).collect();

    let mut rows: Vec<ReplayRow> = Vec::new();
    for &threads in THREADS {
        let service = QueryService::new(
            store.clone(),
            CostParams::default(),
            OptimizerConfig::all_rules(),
            256,
            8,
        );
        for q in &queries {
            service.submit(q).expect("prime query failed");
        }
        let row = replay(&service, &stream, &queries, threads);
        eprintln!(
            "{threads} thread(s): {:.0} q/s cpu-only, mean optimize {:.1} µs, hit {:.1}%",
            row.qps,
            row.mean_optimize_ns as f64 / 1e3,
            row.hit_rate * 100.0
        );
        rows.push(row);
    }
    let qps_1t = rows[0].qps;
    let qps_8t = rows.last().unwrap().qps;
    let opt_1t = rows[0].mean_optimize_ns;
    let opt_8t = rows.last().unwrap().mean_optimize_ns;

    // --- Intra-query: morsel speedup curve on the big query. ------------
    eprintln!("generating the big-query database at scale 1/{morsel_div}...");
    let (big_store, big_model) = generate_paper_db(GenConfig {
        scale_div: morsel_div,
        ..Default::default()
    });
    let (big_plan, big_env) = big_query(&big_model);
    let (curve, byte_identical, big_rows) = morsel_curve(&big_store, &big_env, &big_plan);
    let speedup_4w = curve
        .iter()
        .find(|p| p.workers == 4)
        .map_or(0.0, |p| p.speedup);

    // --- Gates. ---------------------------------------------------------
    let gates = vec![
        Gate {
            name: "cliff_8t_vs_1t",
            ratio: qps_8t / qps_1t,
            target: CLIFF_TOLERANCE,
            enforced: true,
            pass: qps_8t >= qps_1t * CLIFF_TOLERANCE,
        },
        Gate {
            name: "throughput_3x_at_8t",
            ratio: qps_8t / qps_1t,
            target: 3.0,
            enforced: cores >= 8,
            pass: qps_8t >= qps_1t * 3.0,
        },
        Gate {
            name: "optimize_within_3x_at_8t",
            ratio: opt_8t as f64 / opt_1t.max(1) as f64,
            target: 3.0,
            enforced: cores >= 8,
            pass: opt_8t <= opt_1t.saturating_mul(3),
        },
        Gate {
            name: "morsel_2x_at_4w",
            ratio: speedup_4w,
            target: 2.0,
            enforced: cores >= 4,
            pass: speedup_4w >= 2.0,
        },
    ];
    let mut failed = false;
    for g in &gates {
        eprintln!(
            "gate {:<26} {:>7.2} vs {:>4.2} -> {}",
            g.name,
            g.ratio,
            g.target,
            g.status()
        );
        failed |= g.enforced && !g.pass;
    }
    assert!(
        byte_identical,
        "morsel-parallel results diverged from serial"
    );

    // --- JSON report. ---------------------------------------------------
    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"bench\": \"scaling\",\n  \"scale_div\": {SCALE_DIV},\n  \
         \"samples_per_run\": {samples},\n  \"zipf_exponent\": {ZIPF_EXPONENT},\n  \
         \"available_parallelism\": {cores},\n  \"replay_cpu_only\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"throughput_qps\": {:.1}, \"mean_optimize_ns\": {}, \
             \"p50_latency_ns\": {}, \"p99_latency_ns\": {}, \"hit_rate\": {:.4}}}{}",
            r.threads,
            r.qps,
            r.mean_optimize_ns,
            r.p50_latency_ns,
            r.p99_latency_ns,
            r.hit_rate,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = write!(
        json,
        "  \"morsel\": {{\"scale_div\": {morsel_div}, \"result_rows\": {big_rows}, \
         \"reps_per_point\": {MORSEL_REPS}, \"byte_identical\": {byte_identical}, \
         \"curve\": ["
    );
    for (i, p) in curve.iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"workers\": {}, \"min_wall_ns\": {}, \"speedup\": {:.3}}}",
            if i == 0 { "" } else { ", " },
            p.workers,
            p.min_wall_ns,
            p.speedup
        );
    }
    json.push_str("]},\n  \"gates\": {");
    for (i, g) in gates.iter().enumerate() {
        let _ = write!(
            json,
            "{}\"{}\": {{\"ratio\": {:.3}, \"target\": {:.2}, \"enforced\": {}, \
             \"status\": \"{}\"}}",
            if i == 0 { "" } else { ", " },
            g.name,
            g.ratio,
            g.target,
            g.enforced,
            g.status()
        );
    }
    json.push_str("}\n}\n");

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    std::fs::write(out_path, &json).expect("write BENCH_scaling.json");
    eprintln!("wrote {out_path}");
    println!("{json}");
    if failed {
        eprintln!("scaling gate FAILED");
        std::process::exit(1);
    }
}
