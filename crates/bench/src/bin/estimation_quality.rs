//! **Estimation quality** — beyond the paper: the refinement its future
//! work asks for ("we will evaluate and refine the 'rougher' modules, in
//! particular selectivity and cost estimation").
//!
//! For a battery of predicates over the generated database, compares
//!
//! * the **true** selectivity (counted over the data),
//! * the **1993 estimate** (index distinct counts, naïve 10% default,
//!   1/3 for ranges),
//! * the **histogram estimate** (equi-depth statistics collected by
//!   `Store::collect_statistics`),
//!
//! and reports each estimator's error factor.

use oodb_algebra::{CmpOp, QueryBuilder};
use oodb_bench::report::render_table;
use oodb_core::{CostParams, OodbModel, OptimizerConfig};
use oodb_object::Value;
use oodb_storage::{generate_paper_db, GenConfig};

fn err_factor(est: f64, truth: f64) -> f64 {
    let (a, b) = (est.max(1e-9), truth.max(1e-9));
    (a / b).max(b / a)
}

fn main() {
    let scale = 10;
    let (store, model) = generate_paper_db(GenConfig {
        scale_div: scale,
        ..Default::default()
    });
    let ids = &model.ids;

    // Collect statistics for indexed paths plus a few raw attributes.
    let with_stats = store.collect_statistics(
        &[
            (ids.employees, vec![], ids.person_age),
            (ids.employees, vec![], ids.emp_salary),
            (ids.cities, vec![], ids.city_population),
            (ids.tasks, vec![], ids.task_time),
            (
                ids.department_extent,
                vec![ids.dept_plant],
                ids.plant_location,
            ),
        ],
        32,
    );
    println!(
        "Collected {} histograms over the 1/{scale}-scale database.\n",
        with_stats.histogram_count()
    );

    // Predicate battery: (label, collection, path, key, op, constant).
    type Case = (
        &'static str,
        oodb_object::CollectionId,
        Vec<oodb_object::FieldId>,
        oodb_object::FieldId,
        CmpOp,
        Value,
    );
    let cases: Vec<Case> = vec![
        (
            "e.age >= 40",
            ids.employees,
            vec![],
            ids.person_age,
            CmpOp::Ge,
            Value::Int(40),
        ),
        (
            "e.age >= 65",
            ids.employees,
            vec![],
            ids.person_age,
            CmpOp::Ge,
            Value::Int(65),
        ),
        (
            "e.salary < 40000",
            ids.employees,
            vec![],
            ids.emp_salary,
            CmpOp::Lt,
            Value::Int(40_000),
        ),
        (
            "e.name == Fred",
            ids.employees,
            vec![],
            ids.person_name,
            CmpOp::Eq,
            Value::str("Fred"),
        ),
        (
            "t.time == 100",
            ids.tasks,
            vec![],
            ids.task_time,
            CmpOp::Eq,
            Value::Int(100),
        ),
        (
            "t.time <= 100",
            ids.tasks,
            vec![],
            ids.task_time,
            CmpOp::Le,
            Value::Int(100),
        ),
        (
            "c.mayor.name == Joe",
            ids.cities,
            vec![ids.city_mayor],
            ids.person_name,
            CmpOp::Eq,
            Value::str("Joe"),
        ),
        (
            "d.plant.location == Dallas",
            ids.department_extent,
            vec![ids.dept_plant],
            ids.plant_location,
            CmpOp::Eq,
            Value::str("Dallas"),
        ),
        (
            "c.population >= 2500000",
            ids.cities,
            vec![],
            ids.city_population,
            CmpOp::Ge,
            Value::Int(2_500_000),
        ),
    ];

    let mut rows = Vec::new();
    let mut errs = (0.0f64, 0.0f64);
    for (label, coll, path, key, op, constant) in cases {
        // Truth.
        let total = store.members(coll).len() as f64;
        let matched = store
            .members(coll)
            .iter()
            .filter(|&&o| {
                let v = store.eval_path(o, &path, key);
                v.partial_cmp_val(&constant).is_some_and(|ord| op.test(ord))
            })
            .count() as f64;
        let truth = matched / total;

        // Estimates: build the predicate in a throwaway environment over
        // each catalog.
        let estimate = |catalog: &oodb_object::Catalog| -> f64 {
            let mut qb = QueryBuilder::new(model.schema.clone(), catalog.clone());
            let (mut _plan, mut var) = qb.get(coll, "x");
            for &link in &path {
                let (p2, v2) = qb.mat(_plan, var, link, "m");
                _plan = p2;
                var = v2;
            }
            let pred = qb.cmp_const(var, key, op, constant.clone());
            let env = qb.into_env();
            let m = OodbModel::new(&env, CostParams::default(), OptimizerConfig::all_rules());
            m.selectivity(pred)
        };
        let naive = estimate(&model.catalog);
        let hist = estimate(&with_stats);

        errs.0 += err_factor(naive, truth);
        errs.1 += err_factor(hist, truth);
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", truth),
            format!("{:.4} ({:.1}x)", naive, err_factor(naive, truth)),
            format!("{:.4} ({:.1}x)", hist, err_factor(hist, truth)),
        ]);
    }
    let n = rows.len() as f64;
    println!(
        "{}",
        render_table(
            &[
                "Predicate",
                "True sel.",
                "1993 estimate (err)",
                "Histogram (err)"
            ],
            &rows
        )
    );
    println!(
        "Mean error factor: 1993 heuristics {:.2}x, histograms {:.2}x.",
        errs.0 / n,
        errs.1 / n
    );
}
