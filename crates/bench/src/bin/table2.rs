//! **Table 2** — optimization results for Query 1.
//!
//! Paper (DECstation 5000/125):
//!
//! ```text
//!             Optim.    % of Exh.   Est. Exec.   % of Optimal
//!             Time [s]  Search      Time [s]     Exec. Time
//! All Rules   0.21      103         161          100
//! W/o Comm.   0.12       57         681          422
//! W/o Window  0.11       52        1188          737
//! ```
//!
//! We report the same four columns. Optimization time is the median of
//! repeated runs on *this* machine (expected to be orders of magnitude
//! below the 25 MHz original); "% of exhaustive search" uses the
//! search-effort counters (rule firings + candidates + plans costed), with
//! the time ratio shown for reference, exactly mirroring the paper's
//! methodology of dividing by the all-rules run.

use oodb_bench::{queries, report::render_table};
use oodb_core::{OpenOodb, OptimizerConfig};
use oodb_object::paper::paper_model;
use std::time::Instant;

fn median_opt_time(
    m: &oodb_object::paper::PaperModel,
    config: &OptimizerConfig,
    reps: usize,
) -> (f64, oodb_core::OptimizeOutcome) {
    let mut times = Vec::with_capacity(reps);
    let mut outcome = None;
    for _ in 0..reps {
        let q = queries::query1(m);
        let opt = OpenOodb::with_config(&q.env, config.clone());
        let t0 = Instant::now();
        let out = opt.optimize(&q.plan, q.result_vars).expect("plan");
        times.push(t0.elapsed().as_secs_f64());
        outcome = Some(out);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], outcome.unwrap())
}

fn main() {
    let m = paper_model();
    let reps = 21;
    let configs: [(&str, OptimizerConfig, [f64; 4]); 3] = [
        (
            "All Rules",
            OptimizerConfig::all_rules(),
            [0.21, 103.0, 161.0, 100.0],
        ),
        (
            "W/o Comm.",
            OptimizerConfig::without_join_commutativity(),
            [0.12, 57.0, 681.0, 422.0],
        ),
        (
            "W/o Window",
            OptimizerConfig::without_window(),
            [0.11, 52.0, 1188.0, 737.0],
        ),
    ];

    let mut measured = Vec::new();
    for (name, config, paper) in &configs {
        let (t, out) = median_opt_time(&m, config, reps);
        measured.push((*name, t, out, *paper));
    }
    let base_effort = measured[0].2.stats.effort() as f64;
    let base_time = measured[0].1;
    let base_exec = measured[0].2.cost.total();

    let rows: Vec<Vec<String>> = measured
        .iter()
        .map(|(name, t, out, paper)| {
            vec![
                name.to_string(),
                format!("{:.4} ms (paper {:.2} s)", t * 1e3, paper[0]),
                format!(
                    "{:.0}% effort / {:.0}% time (paper {:.0}%)",
                    out.stats.effort() as f64 / base_effort * 100.0,
                    t / base_time * 100.0,
                    paper[1]
                ),
                format!("{:.0} s (paper {:.0})", out.cost.total(), paper[2]),
                format!(
                    "{:.0}% (paper {:.0}%)",
                    out.cost.total() / base_exec * 100.0,
                    paper[3]
                ),
            ]
        })
        .collect();

    println!("Table 2. Optimization Results for Query 1.\n");
    println!(
        "{}",
        render_table(
            &[
                "Config",
                "Optim. Time",
                "% of Exh. Search",
                "Est. Exec. Time",
                "% of Optimal"
            ],
            &rows
        )
    );
    println!("\nWinning plans:");
    for (name, _, out, _) in &measured {
        let q = queries::query1(&m); // fresh env purely for rendering names
        let _ = q;
        println!("--- {name}:");
        // Re-run once against a kept env so names resolve for display.
        let q = queries::query1(&m);
        let cfg = configs
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, c, _)| c.clone())
            .unwrap();
        let opt = OpenOodb::with_config(&q.env, cfg);
        let shown = opt.optimize(&q.plan, q.result_vars).unwrap();
        println!(
            "{}",
            oodb_algebra::display::render_physical(&q.env, &shown.plan)
        );
        let _ = out;
    }
}
