//! `memlimit` — memory-governance benchmark.
//!
//! Replays a Zipf-skewed stream of the paper's memory-hungry query shapes
//! (hash joins, assembly windows, set ops — pointer/merge join disabled so
//! equi-joins must build hash tables) through the
//! [`oodb_service::QueryService`] at 1/2/4/8 worker threads, with each
//! query's memory grant capped at 100% / 50% / 25% of its *measured*
//! working set, and reports per cell:
//!
//! * aggregate throughput and p50/p99 service latency,
//! * spill pages written/read and grant denials (the price of pressure),
//! * the peak bytes any query actually held (must respect the grant),
//!
//! plus two scalar gates:
//!
//! * **governor overhead** — warm 1-thread replay with no governor vs. an
//!   unlimited governor attached; bounds what byte accounting costs a
//!   deployment that never constrains memory (acceptance: < 1%),
//! * **shed rate** — a burst against a bounded worker pool; how much of
//!   an oversized burst is refused with `Overloaded` while the admitted
//!   remainder completes.
//!
//! Output is JSON in `BENCH_memlimit.json`.

use oodb_bench::workload::{percentile, Zipf};
use oodb_core::config::rule_names;
use oodb_core::{CostParams, OptimizerConfig};
use oodb_service::{QueryService, ServiceError, SubmitOptions, WorkerPool};
use oodb_storage::{generate_paper_db, GenConfig, MemoryGovernor};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

const SCALE_DIV: u64 = 10;
const SAMPLES: usize = 240;
const THREADS: &[usize] = &[1, 2, 4, 8];
const GRANT_PCTS: &[u64] = &[100, 50, 25];
const ZIPF_EXPONENT: f64 = 1.0;
const TARGET_STALL_S: f64 = 0.003;
/// Grant floor in bytes: the smallest budget the service tests prove every
/// operator can make progress under (spilling or shrinking, not erroring).
const BUDGET_FLOOR: u64 = 512;

/// The distinct query pool: only shapes that *reserve* memory. Q2's
/// index scan holds nothing and would dilute the replay.
fn query_pool() -> Vec<String> {
    let mut pool = Vec::new();
    // Explicit two-extent equi-join: with pointer/merge join disabled this
    // is a hybrid hash join, the operator that spills under pressure.
    pool.push(
        "SELECT Newobject(e.name(), d.name()) \
         FROM Employee e IN Employees, Department d IN Department \
         WHERE e.dept() == d"
            .to_string(),
    );
    // Q1 variants: path-expression join chains.
    let mut locations = vec!["Dallas".to_string()];
    locations.extend((1..4).map(|i| format!("loc{i:05}")));
    for loc in &locations {
        pool.push(format!(
            "SELECT Newobject(e.name(), e.job().name(), e.dept().name()) \
             FROM Employee e IN Employees \
             WHERE e.dept().plant().location() == \"{loc}\""
        ));
    }
    // Q3 variants: assembly windows (grant-bounded).
    let mut mayors = vec!["Joe".to_string()];
    mayors.extend((1..4).map(|i| format!("p{i:05}")));
    for name in &mayors {
        pool.push(format!(
            "SELECT Newobject(c.mayor().age(), c.name()) \
             FROM City c IN Cities WHERE c.mayor().name() == \"{name}\""
        ));
    }
    // Q4 variants: set-valued path with EXISTS (staged set ops).
    for t in (1..=4).map(|i| i * 10) {
        pool.push(format!(
            "SELECT t FROM Task t IN Tasks WHERE t.time() == {t} \
             && EXISTS (SELECT m FROM m IN t.team_members() WHERE m.name() == \"Fred\")"
        ));
    }
    pool
}

/// A service whose equi-joins must be hybrid hash joins (memory-bound).
fn hash_join_service(store: &oodb_storage::Store) -> QueryService {
    QueryService::new(
        store.clone(),
        CostParams::default(),
        OptimizerConfig::without(&[rule_names::POINTER_JOIN, rule_names::MERGE_JOIN]),
        256,
        8,
    )
}

#[derive(Clone, Copy, Debug, Default)]
struct CellStats {
    throughput_qps: f64,
    p50_latency_ns: u64,
    p99_latency_ns: u64,
    spill_pages: u64,
    spill_bytes_written: u64,
    grant_denials: u64,
    max_peak_bytes: u64,
}

/// One measured replay: `stream` Zipf draws through `threads` workers,
/// each query under its entry in `budgets` (`None` = ungoverned).
fn run_stream(
    service: &QueryService,
    stream: &[usize],
    pool_queries: &[String],
    budgets: Option<&[u64]>,
    threads: usize,
) -> CellStats {
    let pool = WorkerPool::new(service.clone(), threads);
    let wall = Instant::now();
    let pending: Vec<_> = stream
        .iter()
        .map(|&i| {
            let opts = SubmitOptions {
                mem_budget: budgets.map(|b| b[i]),
                ..Default::default()
            };
            pool.submit(pool_queries[i].as_str(), opts)
        })
        .collect();
    let outputs: Vec<_> = pending
        .into_iter()
        .map(|p| p.wait().expect("query failed under grant"))
        .collect();
    let wall_s = wall.elapsed().as_secs_f64();
    pool.shutdown();

    let mut latencies: Vec<u64> = outputs
        .iter()
        .map(|o| o.compile_ns + o.optimize_ns + o.execute_ns)
        .collect();
    latencies.sort_unstable();
    let governor = service.memory_governor();
    let mem = governor.as_ref().map(|g| g.stats()).unwrap_or_default();
    CellStats {
        throughput_qps: stream.len() as f64 / wall_s,
        p50_latency_ns: percentile(&latencies, 0.50),
        p99_latency_ns: percentile(&latencies, 0.99),
        spill_pages: outputs.iter().map(|o| o.spill_pages).sum(),
        spill_bytes_written: mem.spill_bytes_written,
        grant_denials: mem.grant_denials,
        max_peak_bytes: outputs.iter().map(|o| o.mem_peak_bytes).max().unwrap_or(0),
    }
}

fn json_cell(out: &mut String, label: &str, c: &CellStats) {
    let _ = write!(
        out,
        "\"{label}\": {{\"throughput_qps\": {:.1}, \"p50_latency_ns\": {}, \
         \"p99_latency_ns\": {}, \"spill_pages\": {}, \
         \"spill_bytes_written\": {}, \"grant_denials\": {}, \
         \"max_peak_bytes\": {}}}",
        c.throughput_qps,
        c.p50_latency_ns,
        c.p99_latency_ns,
        c.spill_pages,
        c.spill_bytes_written,
        c.grant_denials,
        c.max_peak_bytes
    );
}

fn main() {
    eprintln!("generating the Table 1 database at scale 1/{SCALE_DIV}...");
    let (store, _model) = generate_paper_db(GenConfig {
        scale_div: SCALE_DIV,
        ..Default::default()
    });
    let queries = query_pool();
    let zipf = Zipf::new(queries.len(), ZIPF_EXPONENT);
    let mut rng = SmallRng::seed_from_u64(0x000d_b3e3);
    let stream: Vec<usize> = (0..SAMPLES).map(|_| zipf.sample(&mut rng)).collect();
    eprintln!(
        "{} distinct queries, {SAMPLES} Zipf(s={ZIPF_EXPONENT}) samples per cell",
        queries.len()
    );

    // --- Working-set measurement: each query once, unlimited governor. --
    let probe = hash_join_service(&store);
    probe.attach_memory_governor(MemoryGovernor::unlimited());
    let mut peaks = Vec::new();
    let mut mean_io_s = 0.0;
    for q in &queries {
        let out = probe.submit(q).expect("measurement query failed");
        peaks.push(out.mem_peak_bytes);
        mean_io_s += out.sim_io_s;
    }
    mean_io_s /= queries.len() as f64;
    let max_peak = peaks.iter().copied().max().unwrap_or(0);
    assert!(max_peak > 0, "pool must contain memory-reserving plans");
    eprintln!(
        "working sets: max {max_peak} B, sum {} B",
        peaks.iter().sum::<u64>()
    );

    // --- Grid: threads x grant percentage. ------------------------------
    // The grant (per-query budget) is the binding constraint under study;
    // the governor is sized so `threads` concurrent grants always fit
    // (capacity contention is exercised by the resilience suite instead).
    let mut cells = Vec::new();
    let mut qps_100_1t = 0.0;
    let mut qps_25_1t = 0.0;
    for &threads in THREADS {
        let service = hash_join_service(&store);
        for q in &queries {
            service.submit(q).expect("prime query failed");
        }
        for &pct in GRANT_PCTS {
            let budgets: Vec<u64> = peaks
                .iter()
                .map(|p| (p * pct / 100).max(BUDGET_FLOOR))
                .collect();
            let max_budget = budgets.iter().copied().max().unwrap();
            let capacity = (threads as u64 * max_budget).max(16 * 1024);
            service.attach_memory_governor(MemoryGovernor::new(capacity));
            let cell = run_stream(&service, &stream, &queries, Some(&budgets), threads);
            assert!(
                cell.max_peak_bytes <= max_budget,
                "grant must cap the peak: {} > {max_budget}",
                cell.max_peak_bytes
            );
            if threads == 1 && pct == 100 {
                qps_100_1t = cell.throughput_qps;
            }
            if threads == 1 && pct == 25 {
                qps_25_1t = cell.throughput_qps;
            }
            eprintln!(
                "{threads} thread(s) @ {pct:>3}% grant: {:>6.0} q/s, p50 {:.2} ms, \
                 {} spill pages, {} denials",
                cell.throughput_qps,
                cell.p50_latency_ns as f64 / 1e6,
                cell.spill_pages,
                cell.grant_denials
            );
            cells.push((threads, pct, cell));
        }
        service.detach_memory_governor();
    }
    let spill_slowdown_1t = qps_100_1t / qps_25_1t.max(1e-9);

    // --- Governor overhead: warm 1-thread replay, detached vs. attached
    // (unlimited). Median of 5 alternated pairs tames noise.
    let overhead_service = hash_join_service(&store);
    for q in &queries {
        overhead_service.submit(q).expect("prime query failed");
    }
    let mut qps_off_runs = Vec::new();
    let mut qps_on_runs = Vec::new();
    for _ in 0..5 {
        overhead_service.detach_memory_governor();
        qps_off_runs.push(run_stream(&overhead_service, &stream, &queries, None, 1).throughput_qps);
        overhead_service.attach_memory_governor(MemoryGovernor::unlimited());
        qps_on_runs.push(run_stream(&overhead_service, &stream, &queries, None, 1).throughput_qps);
    }
    overhead_service.detach_memory_governor();
    qps_off_runs.sort_by(|a, b| a.total_cmp(b));
    qps_on_runs.sort_by(|a, b| a.total_cmp(b));
    let qps_governor_off = qps_off_runs[qps_off_runs.len() / 2];
    let qps_governor_on = qps_on_runs[qps_on_runs.len() / 2];
    let governor_overhead_pct = (1.0 - qps_governor_on / qps_governor_off) * 100.0;
    eprintln!(
        "governor overhead: {qps_governor_off:.0} q/s detached vs \
         {qps_governor_on:.0} q/s attached ({governor_overhead_pct:.2}%)"
    );

    // --- Shed rate: an oversized burst against a bounded pool. ----------
    let shed_service = hash_join_service(&store);
    for q in &queries {
        shed_service.submit(q).expect("prime query failed");
    }
    let realize_scale = (TARGET_STALL_S / mean_io_s.max(1e-9)).clamp(1e-4, 10.0);
    let burst = 64usize;
    let pool = WorkerPool::with_queue_limit(shed_service.clone(), 2, 2);
    let opts = SubmitOptions {
        realize_io_scale: realize_scale,
        ..Default::default()
    };
    let pending: Vec<_> = (0..burst)
        .map(|i| pool.submit(queries[i % queries.len()].as_str(), opts))
        .collect();
    let (mut served, mut shed) = (0u64, 0u64);
    for p in pending {
        match p.wait() {
            Ok(_) => served += 1,
            Err(ServiceError::Overloaded { .. }) => shed += 1,
            Err(e) => panic!("burst reply must be served or shed: {e}"),
        }
    }
    pool.shutdown();
    let shed_rate = shed as f64 / burst as f64;
    eprintln!(
        "saturation burst: {served}/{burst} served, {shed} shed \
         ({:.0}% shed rate, queue depth 2, 2 workers)",
        shed_rate * 100.0
    );

    // --- JSON report. ---------------------------------------------------
    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"bench\": \"memlimit\",\n  \"scale_div\": {SCALE_DIV},\n  \
         \"distinct_queries\": {},\n  \"samples_per_cell\": {SAMPLES},\n  \
         \"zipf_exponent\": {ZIPF_EXPONENT},\n  \
         \"budget_floor_bytes\": {BUDGET_FLOOR},\n  \
         \"max_working_set_bytes\": {max_peak},\n  \
         \"spill_slowdown_100_to_25_pct_1t\": {spill_slowdown_1t:.2},\n  \
         \"cells\": [\n",
        queries.len()
    );
    for (i, (threads, pct, cell)) in cells.iter().enumerate() {
        let _ = write!(json, "    {{\"threads\": {threads}, \"grant_pct\": {pct}, ");
        json_cell(&mut json, "run", cell);
        json.push('}');
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"governor_overhead\": {{\"qps_detached\": {qps_governor_off:.1}, \
         \"qps_attached_unlimited\": {qps_governor_on:.1}, \
         \"overhead_pct\": {governor_overhead_pct:.2}}},"
    );
    let _ = writeln!(
        json,
        "  \"saturation\": {{\"burst\": {burst}, \"workers\": 2, \
         \"queue_limit\": 2, \"served\": {served}, \"shed\": {shed}, \
         \"shed_rate\": {shed_rate:.3}}}"
    );
    json.push_str("}\n");

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_memlimit.json");
    std::fs::write(out_path, &json).expect("write BENCH_memlimit.json");
    eprintln!("wrote {out_path}");
    println!("{json}");
}
