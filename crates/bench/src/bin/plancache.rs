//! `plancache` — plan-cache + query-service benchmark.
//!
//! Replays a Zipf-skewed stream of Q1–Q4 variants (different constants,
//! same shapes — the OLTP pattern plan caches exist for) through the
//! [`oodb_service::QueryService`] at 1/2/4/8 worker threads, and reports:
//!
//! * cold vs. warm mean *optimize* latency (the amortization win),
//! * aggregate throughput per thread count,
//! * p50/p99 per-query service latency,
//! * cache hit rate,
//!
//! as JSON in `BENCH_plancache.json`.
//!
//! Two modes per thread count:
//!
//! * **cpu_only** — queries run back-to-back; on a single-core host the
//!   workers serialize and throughput cannot scale.
//! * **realized_io** — each query additionally sleeps
//!   `simulated_io_seconds × scale`, turning the storage simulator's I/O
//!   estimate into a real stall. Workers overlap stalls exactly the way a
//!   real server overlaps disk waits, so throughput scales with workers
//!   even on one core. The scale is calibrated so the mean stall is a few
//!   milliseconds and is recorded in the JSON.

use oodb_bench::workload::{paper_query_pool, percentile, Zipf};
use oodb_core::{CostParams, OptimizerConfig};
use oodb_service::{QueryService, SubmitOptions, WorkerPool};
use oodb_storage::{generate_paper_db, GenConfig};
use oodb_telemetry::HistogramSnapshot;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

const SCALE_DIV: u64 = 10;
const SAMPLES: usize = 600;
const THREADS: &[usize] = &[1, 2, 4, 8];
const ZIPF_EXPONENT: f64 = 1.0;
const TARGET_STALL_S: f64 = 0.003;

/// The distinct query pool: the paper's four query shapes, each with a
/// spread of constants drawn from the generator's value pools.
fn query_pool() -> Vec<String> {
    paper_query_pool(10, 16, 16)
}

#[derive(Clone, Copy, Debug, Default)]
struct RunStats {
    throughput_qps: f64,
    p50_latency_ns: u64,
    p99_latency_ns: u64,
    mean_optimize_ns: u64,
    hit_rate: f64,
}

/// One measured replay: `samples` Zipf draws through a pool of `threads`
/// workers. Latency = service time per query (plan + execute + any
/// realized stall); throughput = samples / wall.
fn run_stream(
    service: &QueryService,
    stream: &[usize],
    pool_queries: &[String],
    threads: usize,
    realize_io_scale: f64,
) -> RunStats {
    let before = service.cache().stats();
    let pool = WorkerPool::new(service.clone(), threads);
    let opts = SubmitOptions {
        realize_io_scale,
        ..Default::default()
    };
    let wall = Instant::now();
    let pending: Vec<_> = stream
        .iter()
        .map(|&i| pool.submit(pool_queries[i].as_str(), opts))
        .collect();
    let outputs: Vec<_> = pending
        .into_iter()
        .map(|p| p.wait().expect("query failed"))
        .collect();
    let wall_s = wall.elapsed().as_secs_f64();
    pool.shutdown();
    let after = service.cache().stats();

    let mut latencies: Vec<u64> = outputs
        .iter()
        .map(|o| {
            let stall_ns = (o.sim_io_s * realize_io_scale * 1e9) as u64;
            o.compile_ns + o.optimize_ns + o.execute_ns + stall_ns
        })
        .collect();
    latencies.sort_unstable();
    let mean_optimize_ns =
        outputs.iter().map(|o| o.optimize_ns).sum::<u64>() / outputs.len().max(1) as u64;
    let lookups = (after.hits + after.misses) - (before.hits + before.misses);
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        (after.hits - before.hits) as f64 / lookups as f64
    };
    RunStats {
        throughput_qps: stream.len() as f64 / wall_s,
        p50_latency_ns: percentile(&latencies, 0.50),
        p99_latency_ns: percentile(&latencies, 0.99),
        mean_optimize_ns,
        hit_rate,
    }
}

/// The submission pipeline stages whose latency histograms the service
/// records (label values of `oodb_stage_latency_ns`).
const STAGES: &[&str] = &[
    "parse",
    "simplify",
    "fingerprint",
    "cache_probe",
    "optimize",
    "execute",
];

/// Per-stage histogram snapshots from a service's registry.
fn stage_snapshots(service: &QueryService) -> Vec<HistogramSnapshot> {
    STAGES
        .iter()
        .map(|s| {
            service
                .telemetry()
                .histogram("oodb_stage_latency_ns", &[("stage", s)])
                .snapshot()
        })
        .collect()
}

/// JSON object mapping each stage to its p50/p95/p99 over one interval.
fn json_stage_breakdown(before: &[HistogramSnapshot], after: &[HistogramSnapshot]) -> String {
    let mut out = String::from("{");
    for (i, stage) in STAGES.iter().enumerate() {
        let d = after[i].delta(&before[i]);
        let _ = write!(
            out,
            "{}\"{stage}\": {{\"count\": {}, \"p50_ns\": {:.0}, \"p95_ns\": {:.0}, \
             \"p99_ns\": {:.0}}}",
            if i == 0 { "" } else { ", " },
            d.count,
            d.quantile(0.50),
            d.quantile(0.95),
            d.quantile(0.99)
        );
    }
    out.push('}');
    out
}

fn json_run(out: &mut String, label: &str, r: &RunStats) {
    let _ = write!(
        out,
        "\"{label}\": {{\"throughput_qps\": {:.1}, \"p50_latency_ns\": {}, \
         \"p99_latency_ns\": {}, \"mean_optimize_ns\": {}, \"hit_rate\": {:.4}}}",
        r.throughput_qps, r.p50_latency_ns, r.p99_latency_ns, r.mean_optimize_ns, r.hit_rate
    );
}

fn main() {
    eprintln!("generating the Table 1 database at scale 1/{SCALE_DIV}...");
    let (store, _model) = generate_paper_db(GenConfig {
        scale_div: SCALE_DIV,
        ..Default::default()
    });
    let queries = query_pool();
    eprintln!(
        "{} distinct queries, {} Zipf(s={ZIPF_EXPONENT}) samples per run",
        queries.len(),
        SAMPLES
    );

    // One shared Zipf stream so every thread count replays the same work.
    let zipf = Zipf::new(queries.len(), ZIPF_EXPONENT);
    let mut rng = SmallRng::seed_from_u64(0x00db_cafe);
    let stream: Vec<usize> = (0..SAMPLES).map(|_| zipf.sample(&mut rng)).collect();

    // --- Cold pass: every distinct query once, empty cache. -------------
    let cold_service = QueryService::new(
        store.clone(),
        CostParams::default(),
        OptimizerConfig::all_rules(),
        256,
        8,
    );
    let mut cold_optimize_ns: Vec<u64> = Vec::new();
    let mut mean_io_s = 0.0;
    for q in &queries {
        let out = cold_service.submit(q).expect("cold query failed");
        assert!(!out.cache_hit, "cold pass must miss");
        cold_optimize_ns.push(out.optimize_ns);
        mean_io_s += out.sim_io_s;
    }
    mean_io_s /= queries.len() as f64;
    let cold_mean_ns = cold_optimize_ns.iter().sum::<u64>() / cold_optimize_ns.len() as u64;
    let realize_scale = (TARGET_STALL_S / mean_io_s.max(1e-9)).clamp(1e-4, 10.0);
    eprintln!(
        "cold mean optimize: {:.2} ms; mean simulated I/O {:.3} s -> realize scale {realize_scale:.4}",
        cold_mean_ns as f64 / 1e6,
        mean_io_s
    );

    // --- Warm runs per thread count, cpu-only and realized-I/O. ---------
    let mut rows = Vec::new();
    let mut warm_mean_1t = 0u64;
    let mut qps_realized = std::collections::HashMap::new();
    for &threads in THREADS {
        // Fresh service per thread count; prime with one pass over the
        // distinct set so the measured stream is the warm steady state.
        let service = QueryService::new(
            store.clone(),
            CostParams::default(),
            OptimizerConfig::all_rules(),
            256,
            8,
        );
        for q in &queries {
            service.submit(q).expect("prime query failed");
        }
        // Stage-latency histograms for the measured streams only (the
        // prime pass ran with profiling off and is invisible here).
        service.set_profiling(true);
        let stages_before = stage_snapshots(&service);
        let cpu = run_stream(&service, &stream, &queries, threads, 0.0);
        let realized = run_stream(&service, &stream, &queries, threads, realize_scale);
        let stages_after = stage_snapshots(&service);
        let stage_json = json_stage_breakdown(&stages_before, &stages_after);
        if threads == 1 {
            warm_mean_1t = cpu.mean_optimize_ns;
        }
        qps_realized.insert(threads, realized.throughput_qps);
        eprintln!(
            "{threads} thread(s): cpu {:.0} q/s (p50 {:.2} ms, hit {:.1}%), \
             realized {:.0} q/s (p50 {:.2} ms)",
            cpu.throughput_qps,
            cpu.p50_latency_ns as f64 / 1e6,
            cpu.hit_rate * 100.0,
            realized.throughput_qps,
            realized.p50_latency_ns as f64 / 1e6,
        );
        rows.push((threads, cpu, realized, stage_json));
    }

    // --- Profiling overhead: the same warm 1-thread replay with the
    // histogram gate off vs. on. Off-mode is the deployment default; the
    // difference bounds what instrumentation costs a server that never
    // asks for latency data. Median of 5 alternated pairs tames noise.
    let overhead_service = QueryService::new(
        store.clone(),
        CostParams::default(),
        OptimizerConfig::all_rules(),
        256,
        8,
    );
    for q in &queries {
        overhead_service.submit(q).expect("prime query failed");
    }
    let mut qps_off_runs = Vec::new();
    let mut qps_on_runs = Vec::new();
    for _ in 0..5 {
        overhead_service.set_profiling(false);
        qps_off_runs.push(run_stream(&overhead_service, &stream, &queries, 1, 0.0).throughput_qps);
        overhead_service.set_profiling(true);
        qps_on_runs.push(run_stream(&overhead_service, &stream, &queries, 1, 0.0).throughput_qps);
    }
    qps_off_runs.sort_by(|a, b| a.total_cmp(b));
    qps_on_runs.sort_by(|a, b| a.total_cmp(b));
    let qps_profiling_off = qps_off_runs[qps_off_runs.len() / 2];
    let qps_profiling_on = qps_on_runs[qps_on_runs.len() / 2];
    let profiling_overhead_pct = (1.0 - qps_profiling_on / qps_profiling_off) * 100.0;
    eprintln!(
        "profiling overhead: {qps_profiling_off:.0} q/s off vs {qps_profiling_on:.0} q/s on \
         ({profiling_overhead_pct:.2}%)"
    );
    let metrics_snapshot = overhead_service.metrics_json();

    let warm_speedup = cold_mean_ns as f64 / warm_mean_1t.max(1) as f64;
    let scaling_1_to_4 = qps_realized[&4] / qps_realized[&1];
    eprintln!(
        "warm-vs-cold mean optimize speedup: {warm_speedup:.1}x; \
         realized throughput 1->4 threads: {scaling_1_to_4:.2}x"
    );

    // --- JSON report. ---------------------------------------------------
    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"bench\": \"plancache\",\n  \"scale_div\": {SCALE_DIV},\n  \
         \"distinct_queries\": {},\n  \"samples_per_run\": {SAMPLES},\n  \
         \"zipf_exponent\": {ZIPF_EXPONENT},\n  \
         \"realize_io_scale\": {realize_scale:.6},\n  \
         \"cold_mean_optimize_ns\": {cold_mean_ns},\n  \
         \"warm_mean_optimize_ns_1t\": {warm_mean_1t},\n  \
         \"warm_vs_cold_optimize_speedup\": {warm_speedup:.1},\n  \
         \"realized_throughput_scaling_1_to_4\": {scaling_1_to_4:.2},\n  \
         \"runs\": [\n",
        queries.len()
    );
    for (i, (threads, cpu, realized, stage_json)) in rows.iter().enumerate() {
        let _ = write!(json, "    {{\"threads\": {threads}, ");
        json_run(&mut json, "cpu_only", cpu);
        json.push_str(", ");
        json_run(&mut json, "realized_io", realized);
        let _ = write!(json, ", \"stage_latency\": {stage_json}");
        json.push('}');
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Per-thread warm optimize means as a first-class series, so scaling
    // regressions in *optimize* latency (as opposed to throughput) are
    // one jq expression away for dashboards and the scaling gate.
    json.push_str("  \"warm_mean_optimize_ns_series\": [");
    for (i, (threads, cpu, realized, _)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"threads\": {threads}, \"cpu_only_ns\": {}, \"realized_io_ns\": {}}}",
            if i == 0 { "" } else { ", " },
            cpu.mean_optimize_ns,
            realized.mean_optimize_ns
        );
    }
    json.push_str("],\n");
    let _ = writeln!(
        json,
        "  \"telemetry_overhead\": {{\"qps_profiling_off\": {qps_profiling_off:.1}, \
         \"qps_profiling_on\": {qps_profiling_on:.1}, \
         \"profiling_overhead_pct\": {profiling_overhead_pct:.2}}},"
    );
    let _ = writeln!(json, "  \"metrics_snapshot\": {metrics_snapshot}");
    json.push_str("}\n");

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plancache.json");
    std::fs::write(out_path, &json).expect("write BENCH_plancache.json");
    eprintln!("wrote {out_path}");
    println!("{json}");
}
