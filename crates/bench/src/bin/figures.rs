//! **Figures 1–13** — every figure of the paper, regenerated from the
//! live system (parser, simplifier, transformation rules, optimizer,
//! greedy baseline). Run with a figure number argument (`figures 6`) to
//! print just one.

use oodb_algebra::display::{render_logical, render_physical};
use oodb_bench::queries;
use oodb_core::config::rule_names as rn;
use oodb_core::{greedy_plan, CostParams, OpenOodb, OptimizerConfig};
use oodb_object::paper::{paper_model, PaperModel};

fn want(n: u32) -> bool {
    match std::env::args().nth(1) {
        None => true,
        Some(arg) => arg.parse() == Ok(n),
    }
}

fn header(n: u32, caption: &str) {
    println!("==================================================================");
    println!("Figure {n}. {caption}");
    println!("==================================================================");
}

fn optimal(m: &PaperModel, q: &queries::PaperQuery, config: OptimizerConfig) -> String {
    let _ = m;
    let opt = OpenOodb::with_config(&q.env, config);
    let out = opt.optimize(&q.plan, q.result_vars).expect("plan");
    format!(
        "{}(estimated cost: {:.2} s)\n",
        render_physical(&q.env, &out.plan),
        out.cost.total()
    )
}

fn main() {
    let m = paper_model();

    if want(1) {
        header(1, "Example ZQL[C++] Query");
        let src = r#"SELECT Newobject( e.name(), d.name() )
FROM Employee e IN Employees, Department d IN Department
WHERE d.floor() == 3 && e.age() >= 32 && e.last_raise() >= Date(1992,1,1)
  && e.dept() == d ;"#;
        println!("{src}\n");
        let q = zql::compile(src, &m.schema, &m.catalog).expect("figure 1 compiles");
        println!("...simplified to:\n{}", render_logical(&q.env, &q.plan));
    }

    if want(2) {
        header(2, "A Logical Algebra Expression Using the Mat Operator");
        let q = queries::fig2_query(&m);
        println!("{}", render_logical(&q.env, &q.plan));
    }

    if want(3) {
        header(3, "Algebra Expression for Set-Valued Path Expression");
        let src = r#"SELECT t FROM Task t IN Tasks
WHERE EXISTS (SELECT m FROM m IN t.team_members() WHERE m.age() >= 0)"#;
        let q = zql::compile(src, &m.schema, &m.catalog).expect("figure 3 compiles");
        // Show just the Unnest/Mat skeleton (drop the vacuous select).
        println!("{}", render_logical(&q.env, &q.plan.children[0]));
    }

    if want(4) {
        header(4, "Transforming a Mat Operator into a Join");
        let q = queries::fig2_query(&m);
        println!("Input (Figure 2):\n{}", render_logical(&q.env, &q.plan));
        let opt = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules());
        let (alts, stats) = opt.explore_alternatives(&q.plan);
        let joined = alts
            .iter()
            .find(|p| {
                let text = render_logical(&q.env, p);
                text.contains("Join c.country ==") && text.contains("Get extent(Country)")
            })
            .expect("exploration must produce the Mat->Join form");
        println!(
            "One of the {} logical alternatives generated ({} groups, {} exprs):\n{}",
            alts.len(),
            stats.groups,
            stats.exprs,
            render_logical(&q.env, joined)
        );
    }

    if want(5) {
        header(5, "Query 1");
        let q = queries::query1(&m);
        println!("{}", render_logical(&q.env, &q.plan));
    }

    if want(6) {
        header(6, "Optimal Execution Plan for Query 1");
        let q = queries::query1(&m);
        println!("{}", optimal(&m, &q, OptimizerConfig::all_rules()));
    }

    if want(7) {
        header(7, "Query 1 Plan w/o Join Commutativity");
        let q = queries::query1(&m);
        println!(
            "{}",
            optimal(&m, &q, OptimizerConfig::without_join_commutativity())
        );
    }

    if want(8) {
        header(8, "Query 2 and its Optimal Execution Plan");
        let q = queries::query2(&m);
        println!("{}", render_logical(&q.env, &q.plan));
        println!("{}", optimal(&m, &q, OptimizerConfig::all_rules()));
    }

    if want(9) {
        header(9, "Query 2 Plan w/o Collapse-to-Index-Scan");
        let q = queries::query2(&m);
        // The paper's Figure 9 plan (filter over assembly over file scan)
        // appears when reference-join alternatives are also unavailable.
        let fig9 = OptimizerConfig::without(&[rn::COLLAPSE_TO_INDEX_SCAN, rn::MAT_TO_JOIN]);
        println!("{}", optimal(&m, &q, fig9));
        println!(
            "(Deviation note: with only the collapse rule disabled, our rule set\n\
             additionally finds a reverse-traversal hash join — see EXPERIMENTS.md:)\n"
        );
        println!(
            "{}",
            optimal(
                &m,
                &q,
                OptimizerConfig::without(&[rn::COLLAPSE_TO_INDEX_SCAN])
            )
        );
    }

    if want(10) {
        header(10, "Query 3 and its Optimal Execution Plan");
        let q = queries::query3(&m);
        println!("{}", render_logical(&q.env, &q.plan));
        println!("{}", optimal(&m, &q, OptimizerConfig::all_rules()));
    }

    if want(11) {
        header(11, "Search State while Optimizing Query 3");
        let q = queries::query3(&m);
        println!(
            "Alg-Project c.name, c.mayor.age\n\
             Required phys. property: city and mayor components present in memory\n\
             |\n{}",
            render_logical(&q.env, &q.plan.children[0])
        );
        let opt = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules());
        let (_, trace) = opt
            .optimize_traced(&q.plan, q.result_vars)
            .expect("traced plan");
        println!("Actual goal decomposition recorded by the search engine:");
        for line in &trace {
            println!("  {line}");
        }
        println!(
            "\nThe collapse-to-index-scan rule cannot serve the {{city, mayor}}\n\
             goal (the index scan delivers city objects only); the assembly\n\
             ENFORCER solves the weaker {{city}} goal with the index scan and\n\
             assembles the two surviving mayors on top — the plan of Figure 10."
        );
    }

    if want(12) {
        header(12, "Query 4 and its Optimal Execution Plan");
        let q = queries::query4(&m);
        println!("{}", render_logical(&q.env, &q.plan));
        println!("{}", optimal(&m, &q, OptimizerConfig::all_rules()));
    }

    if want(13) {
        header(13, "Greedy Evaluation Plan for Query 4");
        let q = queries::query4(&m);
        let plan = greedy_plan(&q.env, CostParams::default(), &q.plan).expect("greedy");
        println!(
            "{}(estimated cost: {:.2} s)",
            render_physical(&q.env, &plan),
            plan.total_io_s() + plan.total_cpu_s()
        );
    }
}
