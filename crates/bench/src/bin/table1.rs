//! **Table 1** — the catalog information all experiments assume.
//!
//! Regenerates the paper's catalog table from the live catalog object (so
//! the printed numbers are the ones the optimizer actually uses), plus the
//! reconstruction notes for the OCR-damaged cells.

use oodb_bench::report::render_table;
use oodb_object::paper::paper_model;
use oodb_object::CollectionKind;

fn main() {
    let m = paper_model();
    let mut sets: Vec<Vec<String>> = Vec::new();
    let mut extents: Vec<Vec<String>> = Vec::new();
    for (_, def) in m.catalog.collections() {
        let row = vec![
            m.schema.ty(def.elem_type).name.clone(),
            def.name.clone(),
            def.cardinality.to_string(),
            def.obj_bytes.to_string(),
        ];
        match def.kind {
            CollectionKind::UserSet => sets.push(row),
            CollectionKind::Extent => extents.push(row),
        }
    }
    println!("Table 1. Catalog Information (reconstructed).\n");
    println!("User-defined sets:");
    println!(
        "{}",
        render_table(&["Type", "Set Name", "Card.", "Obj. bytes"], &sets)
    );
    println!("Type extents:");
    println!(
        "{}",
        render_table(&["Type", "Extent", "Card.", "Obj. bytes"], &extents)
    );
    println!("Indexes:");
    let idx_rows: Vec<Vec<String>> = m
        .catalog
        .indexes()
        .map(|(_, d)| {
            let coll = m.catalog.collection(d.collection);
            let path = d
                .path
                .iter()
                .map(|&f| m.schema.field(f).name.clone())
                .chain(std::iter::once(m.schema.field(d.key).name.clone()))
                .collect::<Vec<_>>()
                .join(".");
            vec![
                d.name.clone(),
                coll.name.clone(),
                path,
                d.distinct_keys.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Index", "Collection", "Path", "Distinct"], &idx_rows)
    );
    println!(
        "Notes: Plant deliberately has NO extent (cardinality-blind for the\n\
         optimizer — drives the paper's 50,000-fault estimate). OCR-damaged\n\
         cells reconstructed as documented in DESIGN.md / EXPERIMENTS.md."
    );
}
