//! `durability` — WAL logging overhead, recovery time, and checkpoint
//! compaction, reported as JSON in `BENCH_durability.json`.
//!
//! Three experiments:
//!
//! * **Logging overhead.** A statistics-refresh mutation workload replayed
//!   with durability off, with batched flushing (`Batch(32)`), and with
//!   `EveryRecord` syncing, alternated to cancel thermal drift. The bench
//!   **gates** on the batched policy costing under 5% over the in-memory
//!   baseline — the paper-grade argument that durability is affordable.
//!   `EveryRecord` is report-only: it pays a sync per mutation by design.
//!
//! * **Recovery time vs. log length.** A checkpointed store plus logs of
//!   increasing record counts, each recovered from disk with a timed
//!   [`oodb_wal::recover`]. Reported per log length, with the replayed
//!   record count asserted exact.
//!
//! * **Checkpoint compaction.** After the longest log, a checkpoint folds
//!   the log into the snapshot; the bench reports the log bytes reclaimed
//!   and the records compacted.
//!
//! `OODB_DURABILITY_QUICK=1` shrinks the replay for local smoke runs;
//! correctness assertions still apply, the overhead gate is report-only
//! (short runs are too noisy to fail over). CI runs the full, gated
//! mode.

use oodb_core::{CostParams, OptimizerConfig};
use oodb_service::QueryService;
use oodb_storage::{generate_paper_db, GenConfig, Store};
use oodb_wal::{
    apply_to, recover, store_digest, FlushPolicy, ScratchDir, WalRecord, WalSession, WAL_FILE,
};
use std::fmt::Write as _;
use std::time::Instant;

const SCALE_DIV: u64 = 100;
const OVERHEAD_GATE_PCT: f64 = 5.0;

fn quick() -> bool {
    std::env::var("OODB_DURABILITY_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn fresh_store() -> Store {
    generate_paper_db(GenConfig {
        scale_div: SCALE_DIV,
        ..Default::default()
    })
    .0
}

fn service(store: Store) -> QueryService {
    QueryService::new(
        store,
        CostParams::default(),
        OptimizerConfig::all_rules(),
        64,
        4,
    )
}

/// Runs `rounds` statistics refreshes (the service's logged mutation) and
/// returns mutations/second.
fn mutation_rate(svc: &QueryService, rounds: usize) -> f64 {
    let wall = Instant::now();
    for i in 0..rounds {
        svc.refresh_statistics(16 + (i % 4) * 8);
    }
    rounds as f64 / wall.elapsed().as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let quick = quick();
    let (rounds, pairs) = if quick { (4, 3) } else { (12, 5) };

    // --- Logging overhead. ----------------------------------------------
    eprintln!("generating the paper database (scale 1/{SCALE_DIV})...");
    let svc = service(fresh_store());
    let dir = ScratchDir::new("bench-overhead").expect("scratch dir");
    let batch_dir = dir.path().join("batch");
    let sync_dir = dir.path().join("sync");

    let mut off_runs = Vec::new();
    let mut batch_runs = Vec::new();
    let mut sync_runs = Vec::new();
    mutation_rate(&svc, rounds); // warm-up
    for _ in 0..pairs {
        assert!(!svc.durability_enabled());
        off_runs.push(mutation_rate(&svc, rounds));
        svc.enable_durability(&batch_dir, FlushPolicy::Batch(32))
            .expect("batch durability on");
        batch_runs.push(mutation_rate(&svc, rounds));
        svc.disable_durability();
        svc.enable_durability(&sync_dir, FlushPolicy::EveryRecord)
            .expect("sync durability on");
        sync_runs.push(mutation_rate(&svc, rounds));
        svc.disable_durability();
    }
    let rate_off = median(off_runs);
    let rate_batch = median(batch_runs);
    let rate_sync = median(sync_runs);
    let batch_overhead_pct = ((1.0 - rate_batch / rate_off) * 100.0).max(0.0);
    let sync_overhead_pct = ((1.0 - rate_sync / rate_off) * 100.0).max(0.0);
    eprintln!(
        "logging overhead: {rate_off:.1} mut/s off, {rate_batch:.1} batched \
         ({batch_overhead_pct:.2}%), {rate_sync:.1} every-record ({sync_overhead_pct:.2}%)"
    );
    if !quick {
        assert!(
            batch_overhead_pct < OVERHEAD_GATE_PCT,
            "batched logging overhead {batch_overhead_pct:.2}% (gate: {OVERHEAD_GATE_PCT}%)"
        );
    }

    // --- Recovery time vs. log length. ----------------------------------
    // Cheap membership rewrites dominate the log; a stats refresh every
    // 16th record keeps replay exercising the expensive path too.
    let store = fresh_store();
    let (coll, members) = store
        .catalog()
        .collections()
        .map(|(c, _)| (c, store.members(c).to_vec()))
        .max_by_key(|(_, m)| m.len())
        .expect("populated collection");
    let log_lengths: &[usize] = if quick {
        &[0, 8, 32]
    } else {
        &[0, 16, 64, 256]
    };
    let mut recovery_rows = Vec::new();
    let mut last_dir: Option<ScratchDir> = None;
    let mut last_store = None;
    for &len in log_lengths {
        let rdir = ScratchDir::new("bench-recovery").expect("scratch dir");
        let mut s = store.clone();
        let mut session = WalSession::create(rdir.path(), &s, FlushPolicy::Batch(32), None)
            .expect("session creates");
        for i in 0..len {
            let rec = if i % 16 == 15 {
                WalRecord::StatsRefresh { buckets: 16 }
            } else {
                WalRecord::SetMembers {
                    coll,
                    oids: members.clone(),
                }
            };
            session.append(&rec).expect("append");
            apply_to(&mut s, &rec).expect("apply");
        }
        session.flush().expect("flush");
        let log_bytes = std::fs::metadata(rdir.path().join(WAL_FILE))
            .expect("log metadata")
            .len();
        let wall = Instant::now();
        let (recovered, report) = recover(rdir.path()).expect("recovery succeeds");
        let recover_ms = wall.elapsed().as_secs_f64() * 1e3;
        assert_eq!(report.replayed_records as usize, len);
        assert_eq!(store_digest(&recovered), store_digest(&s));
        eprintln!("recovery: {len} records ({log_bytes} log bytes) in {recover_ms:.1} ms");
        recovery_rows.push((len, log_bytes, recover_ms));
        last_dir = Some(rdir);
        last_store = Some((session, s));
    }

    // --- Checkpoint compaction. ------------------------------------------
    let rdir = last_dir.expect("at least one log");
    let (mut session, s) = last_store.expect("at least one log");
    let pre_log_bytes = session.wal_stats().bytes;
    let ckpt = session.checkpoint(&s).expect("checkpoint succeeds");
    let post_log_bytes = std::fs::metadata(rdir.path().join(WAL_FILE))
        .expect("log metadata")
        .len();
    let compacted = session.compacted_records();
    let compaction_ratio = if ckpt.bytes > 0 {
        (pre_log_bytes + ckpt.bytes) as f64 / (post_log_bytes + ckpt.bytes) as f64
    } else {
        1.0
    };
    eprintln!(
        "compaction: {compacted} records ({pre_log_bytes} log bytes) folded into a \
         {}-record / {}-byte checkpoint (ratio {compaction_ratio:.2}x)",
        ckpt.records, ckpt.bytes
    );
    assert_eq!(compacted as usize, *log_lengths.last().expect("nonempty"));
    let (recovered, report) = recover(rdir.path()).expect("post-compaction recovery");
    assert_eq!(report.replayed_records, 0);
    assert_eq!(store_digest(&recovered), store_digest(&s));

    // --- JSON report. ----------------------------------------------------
    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"bench\": \"durability\",\n  \"quick\": {quick},\n  \
         \"scale_div\": {SCALE_DIV},\n  \
         \"overhead\": {{\"mutations_per_s_off\": {rate_off:.1}, \
         \"mutations_per_s_batch\": {rate_batch:.1}, \
         \"mutations_per_s_every_record\": {rate_sync:.1}, \
         \"batch_overhead_pct\": {batch_overhead_pct:.2}, \
         \"every_record_overhead_pct\": {sync_overhead_pct:.2}, \
         \"gate_pct\": {OVERHEAD_GATE_PCT}, \"gated\": {}}},\n  \
         \"recovery\": [\n",
        !quick
    );
    for (i, (len, bytes, ms)) in recovery_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"log_records\": {len}, \"log_bytes\": {bytes}, \"recover_ms\": {ms:.2}}}"
        );
        json.push_str(if i + 1 < recovery_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(
        json,
        "  ],\n  \"compaction\": {{\"compacted_records\": {compacted}, \
         \"pre_log_bytes\": {pre_log_bytes}, \"post_log_bytes\": {post_log_bytes}, \
         \"checkpoint_records\": {}, \"checkpoint_bytes\": {}, \
         \"compaction_ratio\": {compaction_ratio:.2}}}",
        ckpt.records, ckpt.bytes
    );
    json.push('}');
    json.push('\n');

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_durability.json");
    std::fs::write(out_path, &json).expect("write BENCH_durability.json");
    eprintln!("wrote {out_path}");
    println!("{json}");
}
