//! `reopt` — feedback-driven re-optimization benchmark.
//!
//! Two experiments, reported as JSON in `BENCH_reopt.json`:
//!
//! * **Convergence.** A database generated with a deliberately skewed
//!   `Employees` set (half the set shares one name) while the catalog's
//!   distinct-key statistics still claim a uniform ~1% — exactly the
//!   estimate-vs-reality drift the feedback loop exists to catch. The
//!   hot-key query is submitted repeatedly; the bench records each
//!   execution's cache behavior and the `oodb_reopt_total` counter, and
//!   **gates** on the suspect → probe → re-optimize ladder converging to
//!   a stable corrected cached plan within 5 executions.
//!
//! * **No-drift overhead.** The same replay over an honestly-generated
//!   database (estimates agree with actuals, so the ladder never fires)
//!   with the feedback loop disabled vs. enabled, alternated to cancel
//!   thermal drift. The loop's hot-path cost is one root row-count
//!   observation and one overlay probe per submission; the bench gates
//!   on the median throughput difference staying under 1%.
//!
//! `OODB_REOPT_QUICK=1` shrinks the replay for CI; the convergence gate
//! still applies, the overhead gate is report-only (short runs are too
//! noisy to fail a build over).

use oodb_bench::workload::canonical_queries;
use oodb_core::{CostParams, OptimizerConfig};
use oodb_service::QueryService;
use oodb_storage::{generate_paper_db, GenConfig, Store};
use std::fmt::Write as _;
use std::time::Instant;

const SCALE_DIV: u64 = 100;
const HOT_FRACTION: f64 = 0.5;
const MAX_EXECS: usize = 8;
const CONVERGENCE_GATE: usize = 5;
const OVERHEAD_GATE_PCT: f64 = 1.0;

/// The hot-key query: the catalog estimates `500/100 = 5` rows from the
/// name index's distinct-key count, the data actually holds ~250.
const Q_FRED: &str = "SELECT e FROM Employee e IN Employees WHERE e.name() == \"Fred\"";

fn quick() -> bool {
    std::env::var("OODB_REOPT_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn service(store: &Store) -> QueryService {
    QueryService::new(
        store.clone(),
        CostParams::default(),
        OptimizerConfig::all_rules(),
        256,
        8,
    )
}

/// One execution's observable state, for the convergence table.
struct ExecRecord {
    cache_hit: bool,
    rows: usize,
    est_cost_s: f64,
    sim_io_s: f64,
    execute_ns: u64,
    reopt_total: u64,
    suspect: u64,
}

fn reopt_total(svc: &QueryService) -> u64 {
    svc.telemetry().counter("oodb_reopt_total", &[]).get()
}

/// Replays the whole pool `rounds` times single-threaded and returns
/// throughput in queries/second.
fn replay_qps(svc: &QueryService, pool: &[String], rounds: usize) -> f64 {
    let wall = Instant::now();
    let mut n = 0usize;
    for _ in 0..rounds {
        for q in pool {
            svc.submit(q).expect("replay query failed");
            n += 1;
        }
    }
    n as f64 / wall.elapsed().as_secs_f64()
}

fn main() {
    let quick = quick();

    // --- Convergence on skewed data. ------------------------------------
    eprintln!(
        "generating the skewed database (scale 1/{SCALE_DIV}, hot-name fraction {HOT_FRACTION})..."
    );
    let (skewed_store, _) = generate_paper_db(GenConfig {
        scale_div: SCALE_DIV,
        hot_employee_name_fraction: HOT_FRACTION,
        ..Default::default()
    });
    let svc = service(&skewed_store);
    let mut execs: Vec<ExecRecord> = Vec::new();
    let mut converged_at: Option<usize> = None;
    for i in 1..=MAX_EXECS {
        let out = svc.submit(Q_FRED).expect("hot-key query failed");
        let fb = svc.feedback_stats();
        let rec = ExecRecord {
            cache_hit: out.cache_hit,
            rows: out.row_count,
            est_cost_s: out.est_cost_s,
            sim_io_s: out.sim_io_s,
            execute_ns: out.execute_ns,
            reopt_total: reopt_total(&svc),
            suspect: fb.suspect,
        };
        eprintln!(
            "exec {i}: hit={} rows={} est_cost={:.4}s sim_io={:.4}s reopt_total={} suspect={}",
            rec.cache_hit, rec.rows, rec.est_cost_s, rec.sim_io_s, rec.reopt_total, rec.suspect
        );
        // Converged: the corrected plan came from the cache (the ladder
        // re-optimized and is no longer churning).
        if converged_at.is_none() && rec.cache_hit && rec.reopt_total >= 1 {
            converged_at = Some(i);
        }
        execs.push(rec);
    }
    let converged_at = converged_at
        .unwrap_or_else(|| panic!("feedback ladder never converged within {MAX_EXECS} executions"));
    assert!(
        converged_at <= CONVERGENCE_GATE,
        "convergence took {converged_at} executions (gate: {CONVERGENCE_GATE})"
    );
    assert!(
        execs.iter().all(|e| e.rows == execs[0].rows),
        "row counts diverged across the ladder"
    );
    assert!(
        execs[converged_at..].iter().all(|e| e.cache_hit),
        "post-convergence executions must be stable cache hits"
    );
    let fb = svc.feedback_stats();
    eprintln!(
        "converged in {converged_at} execution(s); worst drift {:.1}x, {} override(s) active",
        fb.worst_drift, fb.overrides
    );

    // --- No-drift overhead on honest data. ------------------------------
    eprintln!("generating the honest database (scale 1/{SCALE_DIV})...");
    let (honest_store, _) = generate_paper_db(GenConfig {
        scale_div: SCALE_DIV,
        ..Default::default()
    });
    // The canonical Q1–Q4 set: every constant exists in the generated
    // data, so estimates are honest and the ladder must stay quiet.
    // (The synthetic-constant pool variants estimate rows for values the
    // generator never produced — real drift, which belongs in the
    // convergence experiment, not the baseline.)
    let pool = canonical_queries();
    let (rounds, pairs) = if quick { (10, 3) } else { (40, 5) };
    let osvc = service(&honest_store);
    for q in &pool {
        osvc.submit(q).expect("prime query failed");
    }
    let mut qps_off_runs = Vec::new();
    let mut qps_on_runs = Vec::new();
    for _ in 0..pairs {
        osvc.feedback().set_enabled(false);
        qps_off_runs.push(replay_qps(&osvc, &pool, rounds));
        osvc.feedback().set_enabled(true);
        qps_on_runs.push(replay_qps(&osvc, &pool, rounds));
    }
    qps_off_runs.sort_by(|a, b| a.total_cmp(b));
    qps_on_runs.sort_by(|a, b| a.total_cmp(b));
    let qps_off = qps_off_runs[qps_off_runs.len() / 2];
    let qps_on = qps_on_runs[qps_on_runs.len() / 2];
    let overhead_pct = ((1.0 - qps_on / qps_off) * 100.0).max(0.0);
    eprintln!(
        "no-drift overhead: {qps_off:.0} q/s feedback off vs {qps_on:.0} q/s on \
         ({overhead_pct:.2}%)"
    );
    // The honest workload must never trip the ladder.
    let honest_fb = osvc.feedback_stats();
    for e in osvc.feedback().snapshot() {
        if e.suspect {
            eprintln!(
                "suspect fp {:016x}: est {:.2} vs actual {} (drift {:.1}x)",
                e.fingerprint, e.last_est, e.last_actual, e.worst_drift
            );
        }
    }
    assert_eq!(honest_fb.suspect, 0, "honest data marked suspect");
    assert_eq!(reopt_total(&osvc), 0, "honest data re-optimized");
    if !quick {
        assert!(
            overhead_pct < OVERHEAD_GATE_PCT,
            "feedback overhead {overhead_pct:.2}% (gate: {OVERHEAD_GATE_PCT}%)"
        );
    }

    // --- JSON report. ----------------------------------------------------
    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"bench\": \"reopt\",\n  \"quick\": {quick},\n  \
         \"scale_div\": {SCALE_DIV},\n  \
         \"hot_employee_name_fraction\": {HOT_FRACTION},\n  \
         \"drift_threshold\": {:.1},\n  \
         \"converged_at_execution\": {converged_at},\n  \
         \"convergence_gate\": {CONVERGENCE_GATE},\n  \
         \"worst_drift\": {:.1},\n  \"overrides_active\": {},\n  \
         \"executions\": [\n",
        svc.feedback().threshold(),
        fb.worst_drift,
        fb.overrides
    );
    for (i, e) in execs.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"exec\": {}, \"cache_hit\": {}, \"rows\": {}, \
             \"est_cost_s\": {:.6}, \"sim_io_s\": {:.6}, \"execute_ns\": {}, \
             \"reopt_total\": {}, \"suspect\": {}}}",
            i + 1,
            e.cache_hit,
            e.rows,
            e.est_cost_s,
            e.sim_io_s,
            e.execute_ns,
            e.reopt_total,
            e.suspect
        );
        json.push_str(if i + 1 < execs.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(
        json,
        "  ],\n  \"no_drift_overhead\": {{\"qps_feedback_off\": {qps_off:.1}, \
         \"qps_feedback_on\": {qps_on:.1}, \"overhead_pct\": {overhead_pct:.2}, \
         \"gate_pct\": {OVERHEAD_GATE_PCT}, \"gated\": {}}}",
        !quick
    );
    json.push('}');
    json.push('\n');

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reopt.json");
    std::fs::write(out_path, &json).expect("write BENCH_reopt.json");
    eprintln!("wrote {out_path}");
    println!("{json}");
}
