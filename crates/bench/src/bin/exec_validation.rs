//! **Execution validation** — the experiment the paper could not run.
//!
//! "Actual assembly performance including the effects of buffer hits can
//! only be studied in the context of a real, working system; therefore, we
//! delay validating and refining assembly's cost function until the query
//! plan executor becomes operational."
//!
//! Our executor IS operational: this binary generates the Table 1 database
//! (full scale by default, `--scale N` divides), runs each paper query's
//! competing plans, and reports
//!
//! * the optimizer's estimated cost,
//! * the *simulated* I/O time actually incurred on the modeled disk
//!   (with a real LRU buffer pool in front),
//! * result cardinalities,
//! * and agreement between competing plans' result sets.
//!
//! The claim being validated is *ordinal*: wherever the optimizer prefers
//! plan A to plan B, the simulated run agrees.

use oodb_bench::{queries, report::render_table};
use oodb_core::config::rule_names as rn;
use oodb_core::{OpenOodb, OptimizerConfig};
use oodb_exec::{execute, Executor};
use oodb_object::paper::paper_model_scaled;
use oodb_storage::{generate_paper_db, GenConfig};

type Case = (
    &'static str,
    Box<dyn Fn() -> queries::PaperQuery>,
    Vec<(&'static str, OptimizerConfig)>,
);

fn main() {
    let scale: u64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    println!("Generating the Table 1 database at scale 1/{scale}...");
    let (store, model) = generate_paper_db(GenConfig {
        scale_div: scale,
        ..Default::default()
    });
    let _ = paper_model_scaled(scale);

    let cases: Vec<Case> = vec![
        (
            "Query 1",
            Box::new({
                let m = model.clone();
                move || queries::query1(&m)
            }),
            vec![
                ("optimal", OptimizerConfig::all_rules()),
                (
                    "w/o commutativity",
                    OptimizerConfig::without_join_commutativity(),
                ),
                ("w/o window", OptimizerConfig::without_window()),
            ],
        ),
        (
            "Query 2",
            Box::new({
                let m = model.clone();
                move || queries::query2(&m)
            }),
            vec![
                ("optimal (index)", OptimizerConfig::all_rules()),
                (
                    "figure 9 (naive)",
                    OptimizerConfig::without(&[rn::COLLAPSE_TO_INDEX_SCAN, rn::MAT_TO_JOIN]),
                ),
            ],
        ),
        (
            "Query 3",
            Box::new({
                let m = model.clone();
                move || queries::query3(&m)
            }),
            vec![
                ("optimal (enforcer)", OptimizerConfig::all_rules()),
                (
                    "no enforcer",
                    OptimizerConfig::without(&[
                        rn::ASSEMBLY_ENFORCER,
                        rn::COLLAPSE_TO_INDEX_SCAN,
                        rn::MAT_TO_JOIN,
                    ]),
                ),
            ],
        ),
        (
            "Query 4",
            Box::new({
                let m = model.clone();
                move || queries::query4(&m)
            }),
            vec![
                ("optimal", OptimizerConfig::all_rules()),
                (
                    "naive",
                    OptimizerConfig::without(&[
                        rn::COLLAPSE_TO_INDEX_SCAN,
                        rn::MAT_TO_JOIN,
                        rn::SELECT_SPLIT,
                    ]),
                ),
            ],
        ),
    ];

    for (name, make_query, configs) in cases {
        println!("\n=== {name} ===");
        let mut rows = Vec::new();
        let mut result_sizes = Vec::new();
        let mut ordering_ok = true;
        let mut morsel_identical = true;
        let mut prev: Option<(f64, f64)> = None; // (estimate, simulated)
        for (label, config) in configs {
            let q = make_query();
            let opt = OpenOodb::with_config(&q.env, config);
            let out = opt.optimize(&q.plan, q.result_vars).expect("plan");
            let (result, stats) = execute(&store, &q.env, &out.plan);
            // Morsel-parallel replay of the very same plan must be
            // byte-identical to the serial run — same rows, same order.
            let mut par = Executor::new(&store, &q.env);
            par.set_parallelism(4);
            if par.run(&out.plan) != result {
                morsel_identical = false;
            }
            result_sizes.push(result.len());
            if let Some((pe, ps)) = prev {
                // Ordinal agreement: if estimates increase, simulated I/O
                // must not decrease (beyond noise).
                if (out.cost.total() > pe * 1.5) && (stats.disk.total_s < ps * 0.67) {
                    ordering_ok = false;
                }
            }
            prev = Some((out.cost.total(), stats.disk.total_s));
            rows.push(vec![
                label.to_string(),
                format!("{:.2}", out.cost.total()),
                format!("{:.2}", stats.disk.total_s),
                format!("{}", stats.disk.pages()),
                format!("{}/{}", stats.buffer_hits, stats.buffer_misses),
                format!("{}", result.len()),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "Plan",
                    "Est. cost [s]",
                    "Simulated I/O [s]",
                    "Pages",
                    "Buf hit/miss",
                    "Rows"
                ],
                &rows
            )
        );
        let consistent = result_sizes.windows(2).all(|w| w[0] == w[1]);
        println!(
            "Result cardinalities agree across plans: {}",
            if consistent { "YES" } else { "NO  <-- BUG" }
        );
        println!(
            "Optimizer preference confirmed by simulated execution: {}",
            if ordering_ok { "YES" } else { "NO  <-- check" }
        );
        println!(
            "Morsel-parallel (4 workers) results byte-identical: {}",
            if morsel_identical {
                "YES"
            } else {
                "NO  <-- BUG"
            }
        );
        assert!(morsel_identical, "{name}: morsel run diverged from serial");
    }
}
