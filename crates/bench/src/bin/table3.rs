//! **Table 3** — anticipated execution times for Query 4 under index
//! availability, cost-based optimal vs ObjectStore-style greedy.
//!
//! Paper:
//!
//! ```text
//! Indices      None   Time only   Name only   Both
//! All rules    108    1.73        28.4         1.73
//! Greedy use   108    1.73        28.4        10.1
//! ```
//!
//! The headline: with both indexes available the greedy strategy uses both
//! and lands >5× off optimal — "the greedy algorithm is too simplistic to
//! permit effective query optimization in object-oriented database
//! systems."
//!
//! Known deviation (recorded in EXPERIMENTS.md): our optimizer additionally
//! pushes the `t.time == 100` selection below the unnest even without an
//! index, improving the "None" and "Name only" optimal cells below the
//! paper's values; the greedy row reproduces the paper's numbers, which
//! correspond to the plans its optimizer reported.

use oodb_bench::{queries, report::render_table};
use oodb_core::{greedy_plan, CostParams, OpenOodb, OptimizerConfig};
use oodb_object::paper::paper_model;

fn main() {
    let m = paper_model();
    let sweeps: [(&str, Vec<&str>, f64, f64); 4] = [
        ("None", vec![], 108.0, 108.0),
        ("Time only", vec!["Tasks_time"], 1.73, 1.73),
        ("Name only", vec!["Employees_name"], 28.4, 28.4),
        ("Both", vec!["Tasks_time", "Employees_name"], 1.73, 10.1),
    ];

    let mut opt_row = vec!["All rules".to_string()];
    let mut greedy_row = vec!["Greedy use".to_string()];
    let mut plans = Vec::new();
    for (label, keep, paper_opt, paper_greedy) in &sweeps {
        let catalog = m.catalog.with_only_indexes(keep);
        let q = queries::query4_with_catalog(&m, catalog);
        let (out, greedy, greedy_cost) = {
            let opt = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules());
            let out = opt.optimize(&q.plan, q.result_vars).expect("plan");
            let greedy = greedy_plan(&q.env, CostParams::default(), &q.plan).expect("greedy");
            let cost = greedy.total_io_s() + greedy.total_cpu_s();
            (out, greedy, cost)
        };
        opt_row.push(format!("{:.2} (paper {paper_opt})", out.cost.total()));
        greedy_row.push(format!("{greedy_cost:.2} (paper {paper_greedy})"));
        plans.push((label.to_string(), q, out, greedy, greedy_cost));
    }

    println!("Table 3. Anticipated Execution Times for Query 4 [seconds].\n");
    println!(
        "{}",
        render_table(
            &["Indices", "None", "Time only", "Name only", "Both"],
            &[opt_row, greedy_row]
        )
    );

    let (_, q, out, greedy, greedy_cost) = plans.pop().expect("Both sweep");
    println!(
        "\nWith both indexes — optimal plan (Figure 12, {:.2} s):",
        out.cost.total()
    );
    println!(
        "{}",
        oodb_algebra::display::render_physical(&q.env, &out.plan)
    );
    println!("Greedy plan (Figure 13, {greedy_cost:.2} s):");
    println!(
        "{}",
        oodb_algebra::display::render_physical(&q.env, &greedy)
    );
    println!(
        "Greedy is {:.1}× slower than optimal with both indexes present.",
        greedy_cost / out.cost.total()
    );
}
