//! Calibration harness: prints every paper-reported estimate next to ours
//! under the current `CostParams`, for tuning the device/CPU constants.
//! Not one of the paper's tables itself — `table2`/`table3`/`figures` are
//! the official reproductions; this is the lab notebook behind them.

use oodb_algebra::display::render_physical;
use oodb_bench::queries;
use oodb_core::{greedy_plan, OpenOodb, OptimizerConfig};
use oodb_object::paper::paper_model;

fn main() {
    let m = paper_model();
    let verbose = std::env::args().any(|a| a == "-v");

    println!("=== Query 1 (Table 2) ===");
    for (label, config, paper) in [
        ("All rules", OptimizerConfig::all_rules(), 161.0),
        (
            "W/o Comm.",
            OptimizerConfig::without_join_commutativity(),
            681.0,
        ),
        ("W/o Window", OptimizerConfig::without_window(), 1188.0),
    ] {
        let q = queries::query1(&m);
        let opt = OpenOodb::with_config(&q.env, config);
        let out = opt.optimize(&q.plan, q.result_vars).expect("plan");
        println!(
            "{label:12} est {:8.2}s (paper {paper:7.1})   opt_time {:?} effort {}",
            out.cost.total(),
            out.stats.elapsed,
            out.stats.effort()
        );
        if verbose {
            println!("{}", render_physical(&q.env, &out.plan));
        }
    }

    println!("\n=== Query 2 (Figures 8/9) ===");
    for (label, config, paper) in [
        ("Collapse", OptimizerConfig::all_rules(), 0.08),
        (
            "No collapse",
            OptimizerConfig::without(&[oodb_core::config::rule_names::COLLAPSE_TO_INDEX_SCAN]),
            119.6,
        ),
    ] {
        let q = queries::query2(&m);
        let opt = OpenOodb::with_config(&q.env, config);
        let out = opt.optimize(&q.plan, q.result_vars).expect("plan");
        println!(
            "{label:12} est {:8.3}s (paper {paper:7.2})",
            out.cost.total()
        );
        if verbose {
            println!("{}", render_physical(&q.env, &out.plan));
        }
    }

    println!("\n=== Query 3 (Figure 10) ===");
    {
        let q = queries::query3(&m);
        let opt = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules());
        let out = opt.optimize(&q.plan, q.result_vars).expect("plan");
        println!("Enforcer     est {:8.3}s (paper    0.12)", out.cost.total());
        if verbose {
            println!("{}", render_physical(&q.env, &out.plan));
        }
    }

    println!("\n=== Query 4 (Table 3) ===");
    let sweeps: [(&str, Vec<&str>, f64, f64); 4] = [
        ("None", vec![], 108.0, 108.0),
        ("Time only", vec!["Tasks_time"], 1.73, 1.73),
        ("Name only", vec!["Employees_name"], 28.4, 28.4),
        ("Both", vec!["Tasks_time", "Employees_name"], 1.73, 10.1),
    ];
    for (label, keep, paper_opt, paper_greedy) in sweeps {
        let catalog = m.catalog.with_only_indexes(&keep);
        let q = queries::query4_with_catalog(&m, catalog);
        let opt = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules());
        let out = opt.optimize(&q.plan, q.result_vars).expect("plan");
        let greedy =
            greedy_plan(&q.env, oodb_core::CostParams::default(), &q.plan).expect("greedy plan");
        let greedy_cost = greedy.total_io_s() + greedy.total_cpu_s();
        println!(
            "{label:10} optimal {:8.2} (paper {paper_opt:6.2})   greedy {:8.2} (paper {paper_greedy:6.2})",
            out.cost.total(),
            greedy_cost,
        );
        if verbose {
            println!("--- optimal:\n{}", render_physical(&q.env, &out.plan));
            println!("--- greedy:\n{}", render_physical(&q.env, &greedy));
        }
    }
}
