//! The paper's evaluation queries (§4), in their simplified-algebra form.
//!
//! Each constructor returns the exact logical expression the corresponding
//! figure shows as optimizer input, together with the environment and the
//! result variables the query must deliver in memory.

use oodb_algebra::{LogicalPlan, QueryBuilder, QueryEnv, VarId, VarSet};
use oodb_object::paper::PaperModel;
use oodb_object::Value;

/// A ready-to-optimize query: environment + plan + required result.
pub struct PaperQuery {
    /// Shared context (scopes, predicates).
    pub env: QueryEnv,
    /// The simplified logical algebra (the figure's expression).
    pub plan: LogicalPlan,
    /// Variables the result must deliver in memory.
    pub result_vars: VarSet,
    /// Interesting variables by role, for assertions and display.
    pub vars: Vec<(String, VarId)>,
}

impl PaperQuery {
    /// Looks up a named variable.
    pub fn var(&self, name: &str) -> VarId {
        self.vars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("no var {name:?}"))
    }
}

/// **Query 1** (Figure 5): names, department and job of all employees who
/// work in a plant in Dallas.
///
/// ```text
/// Project e.name, e.job.name, e.dept.name
///   Select e.dept.plant.location == "Dallas"
///     Mat e.dept.plant
///       Mat e.dept
///         Mat e.job
///           Get Employees: e
/// ```
pub fn query1(m: &PaperModel) -> PaperQuery {
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (emp, e) = qb.get(m.ids.employees, "e");
    let (p, j) = qb.mat(emp, e, m.ids.emp_job, "j");
    let (p, d) = qb.mat(p, e, m.ids.emp_dept, "d");
    let (p, dp) = qb.mat(p, d, m.ids.dept_plant, "dp");
    let pred = qb.eq_const(dp, m.ids.plant_location, Value::str("Dallas"));
    let sel = qb.select(p, pred);
    let plan = qb.project(
        sel,
        vec![
            qb.attr(e, m.ids.person_name),
            qb.attr(j, m.ids.job_name),
            qb.attr(d, m.ids.dept_name),
        ],
    );
    PaperQuery {
        env: qb.into_env(),
        plan,
        result_vars: VarSet::EMPTY, // the projection decides
        vars: vec![
            ("e".into(), e),
            ("j".into(), j),
            ("d".into(), d),
            ("dp".into(), dp),
        ],
    }
}

/// **Query 2** (Figure 8): cities whose mayor is called "Joe".
///
/// ```text
/// Select c.mayor.name == "Joe"
///   Mat c.mayor
///     Get Cities: c
/// ```
pub fn query2(m: &PaperModel) -> PaperQuery {
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (cities, c) = qb.get(m.ids.cities, "c");
    let (p, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
    let pred = qb.eq_const(cm, m.ids.person_name, Value::str("Joe"));
    let plan = qb.select(p, pred);
    PaperQuery {
        env: qb.into_env(),
        plan,
        result_vars: VarSet::single(c),
        vars: vec![("c".into(), c), ("cm".into(), cm)],
    }
}

/// **Query 3** (Figure 10): Query 2 plus the mayor's age in the result —
/// the mayor component must actually be retrieved.
///
/// ```text
/// Project c.mayor.age, c.name
///   Select c.mayor.name == "Joe"
///     Mat c.mayor
///       Get Cities: c
/// ```
pub fn query3(m: &PaperModel) -> PaperQuery {
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (cities, c) = qb.get(m.ids.cities, "c");
    let (p, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
    let pred = qb.eq_const(cm, m.ids.person_name, Value::str("Joe"));
    let sel = qb.select(p, pred);
    let plan = qb.project(
        sel,
        vec![qb.attr(cm, m.ids.person_age), qb.attr(c, m.ids.city_name)],
    );
    PaperQuery {
        env: qb.into_env(),
        plan,
        result_vars: VarSet::EMPTY,
        vars: vec![("c".into(), c), ("cm".into(), cm)],
    }
}

/// **Query 4** (Figure 12, after \[14\] with a slight modification): tasks
/// with a completion time of 100 hours and a team member called "Fred".
///
/// ```text
/// Select e.name == "Fred" and t.time == 100
///   Mat m.employee: e
///     Unnest t.team_members: m
///       Get Tasks: t
/// ```
pub fn query4(m: &PaperModel) -> PaperQuery {
    query4_with_catalog(m, m.catalog.clone())
}

/// Query 4 against a modified catalog (the Table 3 index-availability
/// sweep).
pub fn query4_with_catalog(m: &PaperModel, catalog: oodb_object::Catalog) -> PaperQuery {
    let mut qb = QueryBuilder::new(m.schema.clone(), catalog);
    let (tasks, t) = qb.get(m.ids.tasks, "t");
    let (p, mm) = qb.unnest(tasks, t, m.ids.task_team_members, "m");
    let (p, e) = qb.mat_deref(p, mm, "e");
    let name_term = qb.term(
        oodb_algebra::Operand::Attr {
            var: e,
            field: m.ids.person_name,
        },
        oodb_algebra::CmpOp::Eq,
        oodb_algebra::Operand::Const(Value::str("Fred")),
    );
    let time_term = qb.term(
        oodb_algebra::Operand::Attr {
            var: t,
            field: m.ids.task_time,
        },
        oodb_algebra::CmpOp::Eq,
        oodb_algebra::Operand::Const(Value::Int(100)),
    );
    let pred = qb.conj(vec![name_term, time_term]);
    let plan = qb.select(p, pred);
    PaperQuery {
        env: qb.into_env(),
        plan,
        result_vars: VarSet::single(t),
        vars: vec![("t".into(), t), ("m".into(), mm), ("e".into(), e)],
    }
}

/// The **Figure 2** query: cities whose mayor shares the name of their
/// country's president — a two-branch path expression.
///
/// ```text
/// Select c.mayor.name == c.country.president.name
///   Mat c.country.president
///     Mat c.country
///       Mat c.mayor
///         Get Cities: c
/// ```
pub fn fig2_query(m: &PaperModel) -> PaperQuery {
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (cities, c) = qb.get(m.ids.cities, "c");
    let (p, cm) = qb.mat(cities, c, m.ids.city_mayor, "c.mayor");
    let (p, cc) = qb.mat(p, c, m.ids.city_country, "c.country");
    let (p, pres) = qb.mat(p, cc, m.ids.country_president, "c.country.president");
    let pred = qb.eq_attr(cm, m.ids.person_name, pres, m.ids.person_name);
    let plan = qb.select(p, pred);
    PaperQuery {
        env: qb.into_env(),
        plan,
        result_vars: VarSet::single(c),
        vars: vec![
            ("c".into(), c),
            ("cm".into(), cm),
            ("cc".into(), cc),
            ("pres".into(), pres),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_object::paper::paper_model;

    #[test]
    fn all_queries_build() {
        let m = paper_model();
        assert_eq!(query1(&m).plan.size(), 6);
        assert_eq!(query2(&m).plan.size(), 3);
        assert_eq!(query3(&m).plan.size(), 4);
        assert_eq!(query4(&m).plan.size(), 4);
        assert_eq!(fig2_query(&m).plan.size(), 5);
    }

    #[test]
    fn figure5_rendering_matches_paper_shape() {
        let m = paper_model();
        let q = query1(&m);
        let text = oodb_algebra::display::render_logical(&q.env, &q.plan);
        assert!(
            text.contains("Project e.name, e.job.name, e.dept.name"),
            "{text}"
        );
        assert!(
            text.contains("Select d.plant.location == \"Dallas\""),
            "{text}"
        );
        assert!(text.contains("Mat e.dept: d"), "{text}");
        assert!(text.contains("Get Employees: e"), "{text}");
    }
}
