//! # `oodb-bench` — experiment harness for the Open OODB reproduction
//!
//! The library half holds the paper's four evaluation queries as reusable
//! constructors ([`queries`]) and the table-formatting helpers
//! ([`report`]); the binaries (`table1`, `table2`, `table3`, `figures`,
//! `exec_validation`) regenerate every table and figure of the paper's §4,
//! and the Criterion benches measure optimization time itself.

#![forbid(unsafe_code)]

pub mod queries;
pub mod report;
pub mod workload;
