//! # `oodb-exec` — the query execution engine
//!
//! The paper deferred running plans: "we delay validating and refining
//! assembly's cost function until the query plan executor becomes
//! operational." This crate is that executor, operating against the
//! simulated storage manager of [`oodb_storage`], so every plan the
//! optimizer emits can actually be run and its simulated I/O compared with
//! the optimizer's estimate.
//!
//! Every physical operator of the algebra is implemented:
//!
//! * file scan (sequential page touches), index scan (B-tree walk + fetch),
//! * filter (predicate evaluation over bound objects),
//! * hybrid hash join (hash table on the left/build input),
//! * pointer join (partitioned reference fetching),
//! * **assembly** with a genuine *window of open references*: references
//!   are resolved in windows, each window's pages fetched in one elevator
//!   sweep — window 1 degenerates to one random fault per reference,
//! * Alg-Unnest, Alg-Project, and the hash set operations.
//!
//! I/O is charged through [`oodb_storage::Io`] (buffer pool + seek-aware
//! disk); CPU-ish work is reported as operation counts ([`OpCounts`]) so
//! callers can convert with whatever cost constants they calibrate.

#![forbid(unsafe_code)]

pub mod engine;
pub mod eval;
pub mod morsel;
pub mod tuple;

pub use engine::{
    execute, execute_traced, try_execute, try_execute_parallel, try_execute_traced, ExecError,
    ExecResult, ExecStats, Executor, MemEffort, OpCounts,
};
/// Run-limit and fault types, re-exported so executor callers reach the
/// cancellation and injection machinery without a separate dependency.
pub use oodb_fault::{CancelToken, Fault, FaultClass, RunLimits};
/// Memory-governance types, re-exported for the same reason.
pub use oodb_mem::{MemStats, MemoryGovernor, MemoryGrant, PressureLevel};
pub use oodb_telemetry::OpTrace;
pub use tuple::Tuple;
