//! Tuples: per-variable object bindings.

use oodb_algebra::VarId;
use oodb_object::Oid;

/// A tuple binds scope variables to object identities. Whether the bound
/// object's *state* is resident is a physical-property concern handled by
/// the optimizer; at execution time each operator fetches what it needs
/// and charges the shared I/O stack.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Tuple {
    slots: Vec<Option<Oid>>,
}

impl Tuple {
    /// An empty tuple over `n_vars` variables.
    pub fn empty(n_vars: usize) -> Self {
        Tuple {
            slots: vec![None; n_vars],
        }
    }

    /// A tuple with a single binding.
    pub fn single(n_vars: usize, var: VarId, oid: Oid) -> Self {
        let mut t = Tuple::empty(n_vars);
        t.bind(var, oid);
        t
    }

    /// Binds a variable.
    pub fn bind(&mut self, var: VarId, oid: Oid) {
        self.slots[var.index()] = Some(oid);
    }

    /// Returns a copy with an extra binding.
    #[must_use]
    pub fn with(&self, var: VarId, oid: Oid) -> Self {
        let mut t = self.clone();
        t.bind(var, oid);
        t
    }

    /// The binding of a variable; panics when unbound (an optimizer bug —
    /// plans must bind variables before use).
    pub fn get(&self, var: VarId) -> Oid {
        self.slots[var.index()]
            .unwrap_or_else(|| panic!("variable v{} unbound in tuple", var.index()))
    }

    /// The binding, if any.
    pub fn try_get(&self, var: VarId) -> Option<Oid> {
        self.slots[var.index()]
    }

    /// Merges two tuples with disjoint bindings (join output). Overlapping
    /// bindings must agree.
    #[must_use]
    pub fn merge(&self, other: &Tuple) -> Tuple {
        let mut out = self.clone();
        for (i, s) in other.slots.iter().enumerate() {
            if let Some(oid) = s {
                debug_assert!(
                    out.slots[i].is_none() || out.slots[i] == Some(*oid),
                    "conflicting bindings in join"
                );
                out.slots[i] = Some(*oid);
            }
        }
        out
    }

    /// Bound variables, for set-operation keys.
    pub fn bound(&self) -> impl Iterator<Item = (usize, Oid)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|o| (i, o)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_object::TypeId;

    fn oid(i: u32) -> Oid {
        Oid::new(TypeId::from_index(0), i)
    }
    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn bind_and_get() {
        let mut t = Tuple::empty(4);
        t.bind(v(2), oid(7));
        assert_eq!(t.get(v(2)), oid(7));
        assert_eq!(t.try_get(v(0)), None);
    }

    #[test]
    fn merge_disjoint() {
        let a = Tuple::single(4, v(0), oid(1));
        let b = Tuple::single(4, v(3), oid(9));
        let m = a.merge(&b);
        assert_eq!(m.get(v(0)), oid(1));
        assert_eq!(m.get(v(3)), oid(9));
    }

    #[test]
    #[should_panic(expected = "unbound")]
    fn unbound_get_panics() {
        Tuple::empty(2).get(v(1));
    }
}
