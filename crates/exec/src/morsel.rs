//! Morsel-driven parallel dispatch for pure-CPU operator segments.
//!
//! The executor's I/O paths (scans, assembly, spill traffic) mutate the
//! per-run [`crate::engine::Executor`] accounting and must stay serial.
//! But three operator segments are pure functions of shared immutable
//! state — predicate filtering, root projection, and the probe phase of
//! an in-memory hash join — and those dominate CPU time on cached
//! workloads. This module splits their input into fixed-size *morsels*
//! (à la HyPer's morsel-driven parallelism) and runs them on a scoped
//! worker set:
//!
//! * Workers claim morsel indexes from one atomic counter — no work
//!   queue, no channel, no per-tuple synchronization.
//! * Each worker accumulates its own [`OpCounts`] and output run;
//!   the dispatcher merges counts once and concatenates outputs **in
//!   morsel order**, so a parallel run produces byte-identical results
//!   to the serial path.
//! * The run's [`RunLimits`] (cancel flag, deadline) are re-checked at
//!   every morsel claim — the same cooperative granularity the serial
//!   engine gets from its batch-boundary checkpoints. Row budgets are
//!   enforced by the caller right after the merge, against the merged
//!   counts.
//! * Memory-grant accounting is untouched: callers reserve governed
//!   bytes *before* dispatching (e.g. the hash-join build side), and
//!   morsel outputs are ordinary result vectors, exactly as the serial
//!   path produces.

use crate::engine::{ExecError, OpCounts};
use oodb_fault::RunLimits;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Rows per morsel. Small enough that cancellation latency stays in the
/// same ballpark as the serial engine's every-256-ticks checkpoint;
/// large enough that claim traffic (one `fetch_add` per morsel) is
/// noise.
pub const MORSEL_ROWS: usize = 1024;

/// Inputs below this size run serially even when parallelism is
/// enabled: two thread spawns cost more than evaluating a few thousand
/// predicate terms.
pub const MIN_PARALLEL_ROWS: usize = 4096;

/// Checks the cancel flag and deadline — the subset of [`RunLimits`] a
/// worker can evaluate without the executor's mutable counters.
fn check_limits(limits: &RunLimits) -> Result<(), ExecError> {
    if let Some(c) = &limits.cancel {
        if c.is_cancelled() {
            return Err(ExecError::Cancelled);
        }
    }
    if let Some(d) = limits.deadline {
        if Instant::now() >= d {
            return Err(ExecError::DeadlineExceeded);
        }
    }
    Ok(())
}

/// Splits `input` into owned morsels of at most [`MORSEL_ROWS`] rows,
/// preserving order. Splitting from the tail keeps this O(n) in moves.
fn into_morsels<I>(mut input: Vec<I>) -> Vec<Mutex<Option<Vec<I>>>> {
    let n_morsels = input.len().div_ceil(MORSEL_ROWS).max(1);
    let mut rev: Vec<Vec<I>> = Vec::with_capacity(n_morsels);
    while input.len() > MORSEL_ROWS {
        rev.push(input.split_off(input.len() - MORSEL_ROWS));
    }
    rev.push(input);
    rev.into_iter().rev().map(|m| Mutex::new(Some(m))).collect()
}

/// Runs `work` over every item of `input` on up to `workers` threads,
/// returning the concatenated outputs (in input order) and the merged
/// operation counts.
///
/// `work` receives one owned item plus the worker's private counts and
/// output run; it must be a pure function of those and of captured
/// shared state (`&Store`, `&QueryEnv`, a built hash table). The first
/// error — by morsel index, so failure is deterministic — aborts the
/// dispatch: other workers stop at their next claim. A panicking worker
/// propagates its panic to the caller after the scope joins.
pub(crate) fn dispatch<I, T, F>(
    workers: usize,
    limits: &RunLimits,
    input: Vec<I>,
    work: F,
) -> Result<(Vec<T>, OpCounts), ExecError>
where
    I: Send,
    T: Send,
    F: Fn(I, &mut OpCounts, &mut Vec<T>) -> Result<(), ExecError> + Sync,
{
    let total = input.len();
    let slots = into_morsels(input);
    let n_threads = workers.clamp(1, slots.len());
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);

    // (merged counts, completed morsel runs, first failure) per worker.
    type WorkerYield<T> = (OpCounts, Vec<(usize, Vec<T>)>, Option<(usize, ExecError)>);
    let worker = |_w: usize| -> WorkerYield<T> {
        let mut counts = OpCounts::default();
        let mut produced: Vec<(usize, Vec<T>)> = Vec::new();
        let mut failure: Option<(usize, ExecError)> = None;
        loop {
            if abort.load(Ordering::Relaxed) {
                break;
            }
            let idx = next.fetch_add(1, Ordering::Relaxed);
            if idx >= slots.len() {
                break;
            }
            if let Err(e) = check_limits(limits) {
                failure = Some((idx, e));
                abort.store(true, Ordering::Relaxed);
                break;
            }
            let morsel = slots[idx]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .expect("morsel index claimed twice");
            let mut out = Vec::with_capacity(morsel.len());
            let mut err = None;
            for item in morsel {
                if let Err(e) = work(item, &mut counts, &mut out) {
                    err = Some(e);
                    break;
                }
            }
            match err {
                Some(e) => {
                    failure = Some((idx, e));
                    abort.store(true, Ordering::Relaxed);
                    break;
                }
                None => produced.push((idx, out)),
            }
        }
        (counts, produced, failure)
    };

    let yields: Vec<std::thread::Result<WorkerYield<T>>> = if n_threads <= 1 {
        vec![Ok(worker(0))]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n_threads).map(|w| s.spawn(move || worker(w))).collect();
            handles.into_iter().map(|h| h.join()).collect()
        })
    };

    let mut counts = OpCounts::default();
    let mut first_failure: Option<(usize, ExecError)> = None;
    let mut runs: Vec<Option<Vec<T>>> = (0..slots.len()).map(|_| None).collect();
    for y in yields {
        let (c, produced, failure) = match y {
            Ok(y) => y,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        counts.tuples += c.tuples;
        counts.preds += c.preds;
        counts.hash_ops += c.hash_ops;
        counts.derefs += c.derefs;
        for (idx, run) in produced {
            runs[idx] = Some(run);
        }
        if let Some((idx, e)) = failure {
            if first_failure.as_ref().is_none_or(|(i, _)| idx < *i) {
                first_failure = Some((idx, e));
            }
        }
    }
    if let Some((_, e)) = first_failure {
        return Err(e);
    }
    let mut out = Vec::with_capacity(total);
    for run in runs {
        out.extend(run.expect("no failure reported but a morsel is missing"));
    }
    Ok((out, counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_fault::CancelToken;

    #[test]
    fn outputs_concatenate_in_input_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let (out, counts) = dispatch(4, &RunLimits::default(), input.clone(), |x, c, out| {
            c.tuples += 1;
            if x % 3 == 0 {
                out.push(x * 2);
            }
            Ok(())
        })
        .unwrap();
        let expect: Vec<u64> = input
            .iter()
            .filter(|x| *x % 3 == 0)
            .map(|x| x * 2)
            .collect();
        assert_eq!(out, expect);
        assert_eq!(counts.tuples, 10_000);
    }

    #[test]
    fn single_item_and_empty_inputs_work() {
        let (out, _) = dispatch(8, &RunLimits::default(), vec![7u32], |x, _, o| {
            o.push(x + 1);
            Ok(())
        })
        .unwrap();
        assert_eq!(out, vec![8]);
        let (out, _) = dispatch(8, &RunLimits::default(), Vec::<u32>::new(), |x, _, o| {
            o.push(x);
            Ok(())
        })
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn cancellation_is_observed_at_morsel_boundaries() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let limits = RunLimits {
            cancel: Some(cancel),
            ..RunLimits::default()
        };
        let input: Vec<u64> = (0..50_000).collect();
        let err = dispatch(4, &limits, input, |x, _, o: &mut Vec<u64>| {
            o.push(x);
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err, ExecError::Cancelled);
    }

    #[test]
    fn first_error_by_morsel_index_wins() {
        let input: Vec<usize> = (0..20_000).collect();
        let err = dispatch(
            4,
            &RunLimits::default(),
            input,
            |x, _, _: &mut Vec<usize>| {
                // Items 5000.. fail with a budget error, item 100 with a
                // malformed-plan error; the lowest failing *morsel* holds
                // item 100, so that error must be the one reported.
                if x == 100 {
                    Err(ExecError::MalformedPlan("item 100".into()))
                } else if x >= 5000 {
                    Err(ExecError::RowBudgetExceeded { budget: 1 })
                } else {
                    Ok(())
                }
            },
        )
        .unwrap_err();
        assert_eq!(err, ExecError::MalformedPlan("item 100".into()));
    }

    #[test]
    fn counts_merge_across_workers() {
        let input: Vec<u64> = (0..30_000).collect();
        let (_, counts) = dispatch(8, &RunLimits::default(), input, |_, c, _: &mut Vec<u64>| {
            c.preds += 2;
            c.hash_ops += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(counts.preds, 60_000);
        assert_eq!(counts.hash_ops, 30_000);
    }
}
