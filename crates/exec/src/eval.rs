//! Predicate and operand evaluation over tuples.
//!
//! Both evaluators are *total*: a dangling reference or unknown field
//! surfaces as a [`StoreError`] instead of a panic, so the executor can
//! run queries against partially recovered databases (the durability
//! crash harness does exactly that) and report corruption as a typed
//! failure.

use crate::tuple::Tuple;
use oodb_algebra::{Operand, PredId, QueryEnv};
use oodb_object::Value;
use oodb_storage::{Store, StoreError};

/// Evaluates an operand against a tuple.
pub fn eval_operand(store: &Store, tuple: &Tuple, op: &Operand) -> Result<Value, StoreError> {
    Ok(match op {
        Operand::Const(v) => v.clone(),
        Operand::Attr { var, field } => store.try_read_field(tuple.get(*var), *field)?.clone(),
        Operand::VarOid(v) => Value::Ref(tuple.get(*v)),
        Operand::RefField { var, field } => store.try_read_field(tuple.get(*var), *field)?.clone(),
        Operand::VarRef(v) => Value::Ref(tuple.get(*v)),
    })
}

/// Evaluates one interned predicate (a conjunction) against a tuple.
/// Returns `(result, terms_evaluated)` — the count feeds CPU accounting.
pub fn eval_pred(
    store: &Store,
    env: &QueryEnv,
    tuple: &Tuple,
    pred: PredId,
) -> Result<(bool, u64), StoreError> {
    // Lock-free arena lookup: a stable `&Pred`, no lock and no clone on
    // this once-per-tuple path.
    let p = env.preds.pred(pred);
    let mut evaluated = 0;
    for t in &p.terms {
        evaluated += 1;
        let l = eval_operand(store, tuple, &t.left)?;
        let r = eval_operand(store, tuple, &t.right)?;
        let holds = match l.partial_cmp_val(&r) {
            Some(ord) => t.op.test(ord),
            None => false, // incomparable (NULL-ish) ⇒ predicate fails
        };
        if !holds {
            return Ok((false, evaluated));
        }
    }
    Ok((true, evaluated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_algebra::{CmpOp, QueryBuilder};
    use oodb_object::paper::paper_model;
    use oodb_storage::{generate_paper_db, GenConfig};

    #[test]
    fn operand_and_pred_eval_against_store() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let _ = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, c) = qb.get(m.ids.cities, "c");
        let (_, cm) = {
            let (p, cm) = qb.mat(
                oodb_algebra::LogicalPlan::leaf(oodb_algebra::LogicalOp::Get {
                    coll: m.ids.cities,
                    var: c,
                }),
                c,
                m.ids.city_mayor,
                "cm",
            );
            (p, cm)
        };
        let env = qb.into_env();

        let city = store.members(m.ids.cities)[0];
        let mayor = store
            .read_field(city, m.ids.city_mayor)
            .as_ref_oid()
            .unwrap();
        let mut t = Tuple::empty(env.scopes.len());
        t.bind(c, city);
        t.bind(cm, mayor);

        // RefField equality against VarOid: c.mayor == cm.self holds.
        let pred = env.preds.cmp(
            Operand::RefField {
                var: c,
                field: m.ids.city_mayor,
            },
            CmpOp::Eq,
            Operand::VarOid(cm),
        );
        let (ok, n) = eval_pred(&store, &env, &t, pred).unwrap();
        assert!(ok);
        assert_eq!(n, 1);

        // Attribute read matches direct store access.
        let name = eval_operand(
            &store,
            &t,
            &Operand::Attr {
                var: cm,
                field: m.ids.person_name,
            },
        )
        .unwrap();
        assert_eq!(&name, store.read_field(mayor, m.ids.person_name));
    }

    #[test]
    fn dangling_reference_is_a_typed_error() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, c) = qb.get(m.ids.cities, "c");
        let env = qb.into_env();

        // Fabricate an OID one past the city population: same type, no
        // backing object — exactly what a partially replayed log yields.
        let city_count = store.members(m.ids.cities).len() as u32;
        let ghost = oodb_object::Oid::new(m.ids.city, city_count + 7);
        let mut t = Tuple::empty(env.scopes.len());
        t.bind(c, ghost);

        let res = eval_operand(
            &store,
            &t,
            &Operand::Attr {
                var: c,
                field: m.ids.city_name,
            },
        );
        assert!(matches!(res, Err(StoreError::UnknownOid(_))));
    }
}
