//! The executor: physical operators over the simulated store.

use crate::eval::{eval_operand, eval_pred};
use crate::morsel;
use crate::tuple::Tuple;
use oodb_algebra::{Operand, PhysicalOp, PhysicalPlan, QueryEnv, SetOpKind, VarId, VarOrigin};
use oodb_fault::{Fault, RunLimits};
use oodb_mem::MemoryGrant;
use oodb_object::{Oid, Value};
use oodb_storage::{DiskParams, DiskStats, Io, PageId, Store};
use oodb_telemetry::OpTrace;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Instant;

/// A structured execution failure. Replaces the panic paths the engine
/// grew up with: storage faults, cooperative cancellation, deadline and
/// row-budget expiry, and malformed plans/traces all surface as typed
/// errors the service can map to user-visible failures.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// The storage layer reported an (injected) read fault.
    Fault(Fault),
    /// The run's [`oodb_fault::CancelToken`] was cancelled.
    Cancelled,
    /// The run's deadline passed at an operator batch boundary.
    DeadlineExceeded,
    /// The run materialized more tuples than its budget allows.
    RowBudgetExceeded {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// The run's memory grant could not cover even the smallest working
    /// unit (one hash-table chunk row, one staged set-op flag vector):
    /// spilling and staging were tried and still did not fit.
    MemoryExhausted {
        /// Bytes the failing reservation asked for.
        requested: u64,
        /// The per-query budget in force (`u64::MAX` = governor-capped
        /// only).
        budget: u64,
    },
    /// The plan is not executable (the static verifier should have caught
    /// this; reaching here indicates an optimizer or caller bug).
    MalformedPlan(String),
    /// Trace-tree bookkeeping broke during a traced run.
    MalformedTrace(String),
    /// An object dereference hit inconsistent store state (dangling OID,
    /// missing region). Reachable on partially recovered databases; the
    /// engine reports it instead of panicking so recovery-time probes and
    /// replay validation stay total.
    Corrupt(oodb_storage::StoreError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Fault(fault) => write!(f, "{fault}"),
            ExecError::Cancelled => write!(f, "query cancelled"),
            ExecError::DeadlineExceeded => write!(f, "execution deadline exceeded"),
            ExecError::RowBudgetExceeded { budget } => {
                write!(f, "row budget of {budget} tuples exceeded")
            }
            ExecError::MemoryExhausted { requested, budget } => {
                write!(
                    f,
                    "memory grant exhausted: {requested} bytes requested, budget {budget}"
                )
            }
            ExecError::MalformedPlan(msg) => write!(f, "malformed plan: {msg}"),
            ExecError::MalformedTrace(msg) => write!(f, "malformed trace: {msg}"),
            ExecError::Corrupt(e) => write!(f, "corrupt store state: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// CPU-ish operation counts, reported instead of seconds so callers apply
/// their own calibrated constants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Tuples produced by scans/unnests/projections.
    pub tuples: u64,
    /// Predicate terms evaluated.
    pub preds: u64,
    /// Hash-table builds + probes.
    pub hash_ops: u64,
    /// Reference dereferences (assembly / pointer join).
    pub derefs: u64,
}

impl OpCounts {
    /// Counts accumulated since `base` was captured.
    fn delta(&self, base: &OpCounts) -> OpCounts {
        OpCounts {
            tuples: self.tuples - base.tuples,
            preds: self.preds - base.preds,
            hash_ops: self.hash_ops - base.hash_ops,
            derefs: self.derefs - base.derefs,
        }
    }
}

/// Memory-governance effort for one run: what the grant held at peak and
/// what overflow work the governed operators performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemEffort {
    /// High-water mark of bytes reserved by this run's grant.
    pub peak_bytes: u64,
    /// Pages written to spill partitions (also in `disk.spill_writes`).
    pub spill_pages_written: u64,
    /// Pages read back from spill partitions.
    pub spill_pages_read: u64,
    /// Hash-join partitions that overflowed to simulated disk.
    pub spilled_partitions: u64,
    /// Reservations the grant refused this run.
    pub grant_denials: u64,
}

/// Execution statistics: simulated I/O plus operation counts.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecStats {
    /// Disk statistics (sequential/random/elevator reads, simulated
    /// seconds).
    pub disk: DiskStats,
    /// Operation counts.
    pub counts: OpCounts,
    /// Buffer-pool hits.
    pub buffer_hits: u64,
    /// Buffer-pool misses.
    pub buffer_misses: u64,
    /// Memory-grant accounting (peak bytes, spill traffic, denials).
    pub mem: MemEffort,
    /// Rows delivered at the plan root — the always-on cardinality sample
    /// the feedback loop compares against the root estimate, live even on
    /// the untraced hot path. Filled by the one-shot helpers
    /// ([`execute`], [`try_execute`], …) from the result itself.
    pub root_rows: u64,
    /// Rows produced by leaf scans (file + index) this run — the
    /// denominator for untraced selectivity attribution.
    pub leaf_rows: u64,
}

/// Result rows: raw tuples, or projected values when the plan root is a
/// projection.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecResult {
    /// Variable bindings (no projection at the root).
    Tuples(Vec<Tuple>),
    /// Projected rows.
    Rows(Vec<Vec<Value>>),
}

impl ExecResult {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        match self {
            ExecResult::Tuples(t) => t.len(),
            ExecResult::Rows(r) => r.len(),
        }
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tuples, panicking on projected results.
    pub fn tuples(&self) -> &[Tuple] {
        match self {
            ExecResult::Tuples(t) => t,
            ExecResult::Rows(_) => panic!("result was projected"),
        }
    }
}

/// Per-run accounting baseline: every counter the executor accumulates,
/// captured at the start of each `run*` call so [`Executor::stats`]
/// reports that run alone even when the executor (and its warm buffer
/// pool) is reused across queries.
#[derive(Clone, Copy, Debug, Default)]
struct RunBase {
    disk: DiskStats,
    counts: OpCounts,
    hits: u64,
    misses: u64,
    spilled_partitions: u64,
    leaf_rows: u64,
}

/// I/O counters at one instant, for per-operator trace deltas.
#[derive(Clone, Copy, Debug)]
struct IoMark {
    hits: u64,
    misses: u64,
    io_s: f64,
    spill_pages: u64,
}

/// The plan executor. One per query run, or reused across runs to model a
/// warm buffer pool — statistics are attributed per run either way (see
/// [`Executor::stats`]).
///
/// Buffer hits and misses are tallied **locally** from each access's
/// outcome, never read back from the pool's global counters. With a
/// [`oodb_storage::SharedBufferPool`] attached to the store, concurrent
/// executors share page residency, and pool-global counters interleave
/// arbitrarily — per-access tallying is what keeps each query's
/// [`ExecStats`] its own.
pub struct Executor<'a> {
    /// The database.
    pub store: &'a Store,
    /// The query context.
    pub env: &'a QueryEnv,
    /// The I/O stack (buffer pool + simulated disk).
    pub io: Io,
    counts: OpCounts,
    /// This executor's buffer outcomes (not the pool's globals).
    hits: u64,
    misses: u64,
    run_base: RunBase,
    tracing: bool,
    /// Stack of children-lists for the trace tree under construction;
    /// `exec` pushes a fresh frame before descending and folds it into the
    /// parent frame after.
    trace_stack: Vec<Vec<OpTrace>>,
    /// Cooperative run limits (deadline, cancellation, row budget),
    /// checked at operator batch boundaries and every 1024 page touches.
    limits: RunLimits,
    /// Page touches this executor has performed (drives the periodic
    /// mid-operator limit check).
    touched: u64,
    /// This run's memory grant, recreated at every `begin_run` from the
    /// store's governor (when attached) and `RunLimits::mem_budget`.
    /// Operators reserve against it in coarse units (a hash table, a
    /// partition, an assembly window) — never per row.
    grant: MemoryGrant,
    /// Hash-join partitions spilled to simulated disk, cumulative.
    spilled_partitions: u64,
    /// Rows produced by leaf scans (file + index), cumulative; reported
    /// per run via [`RunBase`] deltas like every other counter.
    leaf_rows: u64,
    /// CPU-loop iterations (hash build/probe, set-op staging) since
    /// creation; every 256th drives a limits check so a huge build is
    /// interruptible mid-loop, not only at operator boundaries.
    worked: u64,
    /// Worker threads for morsel-parallel operator segments (filter,
    /// root projection, in-memory hash-join probe). `1` (the default)
    /// keeps every operator on the calling thread.
    parallelism: usize,
}

impl<'a> Executor<'a> {
    /// Creates an executor. Charges I/O through the store's shared buffer
    /// pool when one is attached, otherwise through a private pool sized
    /// for the paper's DECstation.
    pub fn new(store: &'a Store, env: &'a QueryEnv) -> Self {
        let mut io = match store.shared_pool() {
            Some(pool) => Io::with_shared_pool(pool.clone(), DiskParams::default()),
            None => Io::decstation(),
        };
        // Route page access through the store's fault injector when one is
        // attached — the executor is where injected read faults surface.
        io.set_fault_injector(store.fault_injector().cloned());
        Executor {
            store,
            env,
            io,
            counts: OpCounts::default(),
            hits: 0,
            misses: 0,
            run_base: RunBase::default(),
            tracing: false,
            trace_stack: Vec::new(),
            limits: RunLimits::default(),
            touched: 0,
            grant: MemoryGrant::detached(None),
            spilled_partitions: 0,
            leaf_rows: 0,
            worked: 0,
            parallelism: 1,
        }
    }

    /// Sets the worker count for morsel-parallel operator segments
    /// (clamped to at least 1). Only pure-CPU segments parallelize —
    /// predicate filters, the root projection, and in-memory hash-join
    /// probes — and their outputs are concatenated in morsel order, so
    /// results are byte-identical to a serial run. I/O-charging
    /// operators always stay on the calling thread.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers.max(1);
    }

    /// The configured morsel worker count.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Folds counts merged back from a morsel dispatch into this run's
    /// accounting.
    fn merge_counts(&mut self, c: OpCounts) {
        self.counts.tuples += c.tuples;
        self.counts.preds += c.preds;
        self.counts.hash_ops += c.hash_ops;
        self.counts.derefs += c.derefs;
    }

    /// Installs cooperative run limits for subsequent `run*` calls. The
    /// limits are checked at every operator entry and exit and every 1024
    /// page touches, so a runaway operator is interrupted mid-batch.
    pub fn set_limits(&mut self, limits: RunLimits) {
        self.limits = limits;
    }

    /// Checks cancellation, deadline, and row budget. Cheap when the run
    /// is unlimited (three `Option` tests, no clock read).
    fn checkpoint(&self) -> Result<(), ExecError> {
        if let Some(c) = &self.limits.cancel {
            if c.is_cancelled() {
                return Err(ExecError::Cancelled);
            }
        }
        if let Some(d) = self.limits.deadline {
            if Instant::now() >= d {
                return Err(ExecError::DeadlineExceeded);
            }
        }
        if let Some(budget) = self.limits.row_budget {
            if self.counts.tuples - self.run_base.counts.tuples > budget {
                return Err(ExecError::RowBudgetExceeded { budget });
            }
        }
        Ok(())
    }

    /// Statistics for the current run: counters accumulated since the last
    /// `run*` call began (equivalently, since creation for a fresh
    /// executor). A reused executor keeps its warm buffer pool but never
    /// smears one run's I/O into the next run's numbers.
    pub fn stats(&self) -> ExecStats {
        let disk = self.io.disk_stats().delta(&self.run_base.disk);
        ExecStats {
            disk,
            counts: self.counts.delta(&self.run_base.counts),
            buffer_hits: self.hits - self.run_base.hits,
            buffer_misses: self.misses - self.run_base.misses,
            mem: MemEffort {
                peak_bytes: self.grant.peak(),
                spill_pages_written: disk.spill_writes,
                spill_pages_read: disk.spill_reads,
                spilled_partitions: self.spilled_partitions - self.run_base.spilled_partitions,
                grant_denials: self.grant.denials(),
            },
            root_rows: 0,
            leaf_rows: self.leaf_rows - self.run_base.leaf_rows,
        }
    }

    /// Statistics since the executor was created, across every run.
    pub fn cumulative_stats(&self) -> ExecStats {
        let disk = self.io.disk_stats();
        ExecStats {
            disk,
            counts: self.counts,
            buffer_hits: self.hits,
            buffer_misses: self.misses,
            mem: MemEffort {
                peak_bytes: self.grant.peak(),
                spill_pages_written: disk.spill_writes,
                spill_pages_read: disk.spill_reads,
                spilled_partitions: self.spilled_partitions,
                grant_denials: self.grant.denials(),
            },
            root_rows: 0,
            leaf_rows: self.leaf_rows,
        }
    }

    /// Marks the start of a run: subsequent [`Executor::stats`] reads
    /// report deltas from here. Draws a fresh memory grant from the
    /// store's governor (when attached) under this run's `mem_budget`;
    /// dropping the previous grant returns any stragglers, so governor
    /// ledgers reconcile across reuse.
    fn begin_run(&mut self) {
        self.run_base = RunBase {
            disk: self.io.disk_stats(),
            counts: self.counts,
            hits: self.hits,
            misses: self.misses,
            spilled_partitions: self.spilled_partitions,
            leaf_rows: self.leaf_rows,
        };
        self.grant = match self.store.memory_governor() {
            Some(gov) => gov.grant(self.limits.mem_budget),
            None => MemoryGrant::detached(self.limits.mem_budget),
        };
    }

    /// Runs a plan to completion, panicking on failure. Prefer
    /// [`Executor::try_run`] in code that can propagate errors; this
    /// wrapper exists for the many callers (tests, experiments) that run
    /// trusted plans against fault-free stores.
    pub fn run(&mut self, plan: &PhysicalPlan) -> ExecResult {
        self.try_run(plan)
            .unwrap_or_else(|e| panic!("execution failed: {e}"))
    }

    /// Runs a plan to completion, surfacing faults, cancellation, and
    /// limit expiry as [`ExecError`]s.
    pub fn try_run(&mut self, plan: &PhysicalPlan) -> Result<ExecResult, ExecError> {
        self.begin_run();
        self.checkpoint()?;
        self.exec_root(plan)
    }

    /// Runs a plan to completion while recording a per-operator
    /// [`OpTrace`]: actual rows, wall-clock time, and buffer/disk traffic
    /// for every node of the plan tree. This is `EXPLAIN ANALYZE`.
    /// Panics on failure; prefer [`Executor::try_run_traced`].
    pub fn run_traced(&mut self, plan: &PhysicalPlan) -> (ExecResult, OpTrace) {
        self.try_run_traced(plan)
            .unwrap_or_else(|e| panic!("execution failed: {e}"))
    }

    /// Fallible [`Executor::run_traced`]. On error the executor leaves
    /// traced mode cleanly, so it can be reused for further runs.
    pub fn try_run_traced(
        &mut self,
        plan: &PhysicalPlan,
    ) -> Result<(ExecResult, OpTrace), ExecError> {
        self.begin_run();
        self.tracing = true;
        self.trace_stack.clear();
        self.trace_stack.push(Vec::new());
        let result = self.checkpoint().and_then(|()| self.exec_root(plan));
        self.tracing = false;
        let result = result?;
        let root = self
            .trace_stack
            .pop()
            .and_then(|mut frame| frame.pop())
            .ok_or_else(|| ExecError::MalformedTrace("traced run produced no root trace".into()))?;
        Ok((result, root))
    }

    fn exec_root(&mut self, plan: &PhysicalPlan) -> Result<ExecResult, ExecError> {
        if let PhysicalOp::AlgProject { items } = &plan.op {
            // Projection is only legal at the root, so `exec` never sees
            // it; trace it here with the same wrap the inner nodes get.
            if self.tracing {
                let start = Instant::now();
                let before = self.io_mark();
                self.trace_stack.push(Vec::new());
                let rows = self.project(items, &plan.children[0])?;
                let children = self
                    .trace_stack
                    .pop()
                    .ok_or_else(|| ExecError::MalformedTrace("trace frame missing".into()))?;
                let node = self.trace_node(plan, rows.len() as u64, start, before, children);
                self.trace_stack
                    .last_mut()
                    .ok_or_else(|| ExecError::MalformedTrace("root trace frame missing".into()))?
                    .push(node);
                return Ok(ExecResult::Rows(rows));
            }
            return Ok(ExecResult::Rows(self.project(items, &plan.children[0])?));
        }
        Ok(ExecResult::Tuples(self.exec(plan)?))
    }

    fn project(
        &mut self,
        items: &[Operand],
        child: &PhysicalPlan,
    ) -> Result<Vec<Vec<Value>>, ExecError> {
        let input = self.exec(child)?;
        if self.parallelism > 1 && input.len() >= morsel::MIN_PARALLEL_ROWS {
            let store = self.store;
            let (rows, counts) =
                morsel::dispatch(self.parallelism, &self.limits, input, |t, counts, out| {
                    counts.tuples += 1;
                    let row = items
                        .iter()
                        .map(|i| eval_operand(store, &t, i))
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(ExecError::Corrupt)?;
                    out.push(row);
                    Ok(())
                })?;
            self.merge_counts(counts);
            self.checkpoint()?;
            return Ok(rows);
        }
        let mut rows = Vec::with_capacity(input.len());
        for t in &input {
            self.counts.tuples += 1;
            let row = items
                .iter()
                .map(|i| eval_operand(self.store, t, i))
                .collect::<Result<Vec<_>, _>>()
                .map_err(ExecError::Corrupt)?;
            rows.push(row);
        }
        self.checkpoint()?;
        Ok(rows)
    }

    fn n_vars(&self) -> usize {
        self.env.scopes.len()
    }

    /// Touches one page, attributing the hit/miss to this executor.
    /// Surfaces injected storage faults and (every 1024 touches) the run
    /// limits, so even single-operator scans stay interruptible.
    fn touch(&mut self, page: PageId) -> Result<(), ExecError> {
        self.touched += 1;
        if self.touched & 1023 == 0 {
            self.checkpoint()?;
        }
        if self.io.try_touch(page).map_err(ExecError::Fault)? {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        Ok(())
    }

    /// Touches a batch in elevator order, attributing hits/misses. A
    /// fault aborts before any page of the batch is charged.
    fn touch_elevator(&mut self, pages: &[PageId]) -> Result<(), ExecError> {
        self.touched += pages.len() as u64;
        self.checkpoint()?;
        let (hits, misses) = self
            .io
            .try_touch_elevator(pages)
            .map_err(ExecError::Fault)?;
        self.hits += hits;
        self.misses += misses;
        Ok(())
    }

    /// One unit of CPU-loop work (a hash build/probe row, a staged
    /// set-op key). Every 256th unit re-checks the run limits, so
    /// cancellation and deadlines reach *inside* a huge hash build
    /// instead of waiting for the operator to finish.
    fn work_tick(&mut self) -> Result<(), ExecError> {
        self.worked += 1;
        if self.worked & 255 == 0 {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Bytes one bound variable slot costs in our simulated accounting.
    const SLOT_BYTES: u64 = 16;
    /// Fixed overhead charged per tuple held in a governed structure.
    const TUPLE_OVERHEAD: u64 = 32;
    /// Extra bytes charged per hash-table entry over the tuple itself.
    const HASH_ENTRY_OVERHEAD: u64 = 48;

    /// Approximate resident bytes of one materialized tuple.
    fn tuple_bytes(&self) -> u64 {
        self.n_vars() as u64 * Self::SLOT_BYTES + Self::TUPLE_OVERHEAD
    }

    /// Approximate bytes one build-side row occupies in a hash table.
    fn hash_entry_bytes(&self) -> u64 {
        self.tuple_bytes() + Self::HASH_ENTRY_OVERHEAD
    }

    /// Pages a run of `rows` tuples occupies when spilled.
    fn spill_pages_for(&self, rows: usize) -> u64 {
        let page_bytes = u64::from(self.io.disk.params().page_bytes).max(1);
        (rows as u64 * self.tuple_bytes())
            .div_ceil(page_bytes)
            .max(1)
    }

    /// Charges a spill-partition write: sequential disk time plus the
    /// governor's byte ledger.
    fn charge_spill_write(&mut self, pages: u64) {
        self.io.disk.spill_write(pages);
        let page_bytes = u64::from(self.io.disk.params().page_bytes);
        self.grant.note_spill(pages * page_bytes, 0);
    }

    /// Charges a spill-partition re-read; pairs one-for-one with
    /// [`Executor::charge_spill_write`] so written == read at quiesce.
    fn charge_spill_read(&mut self, pages: u64) {
        self.io.disk.spill_read(pages);
        let page_bytes = u64::from(self.io.disk.params().page_bytes);
        self.grant.note_spill(0, pages * page_bytes);
    }

    fn io_mark(&self) -> IoMark {
        IoMark {
            hits: self.hits,
            misses: self.misses,
            io_s: self.io.elapsed_s(),
            spill_pages: self.io.disk_stats().spill_pages(),
        }
    }

    fn trace_node(
        &self,
        plan: &PhysicalPlan,
        rows: u64,
        start: Instant,
        before: IoMark,
        children: Vec<OpTrace>,
    ) -> OpTrace {
        OpTrace {
            label: oodb_algebra::display::render_physical_op(self.env, &plan.op),
            actual_rows: rows,
            elapsed_ns: start.elapsed().as_nanos() as u64,
            buffer_hits: self.hits - before.hits,
            buffer_misses: self.misses - before.misses,
            sim_io_s: self.io.elapsed_s() - before.io_s,
            spill_pages: self.io.disk_stats().spill_pages() - before.spill_pages,
            children,
        }
    }

    /// Executes one operator; when tracing, wraps it with a stopwatch and
    /// an I/O probe and records the node into the trace tree. The run
    /// limits are checked at every operator boundary (entry and exit).
    fn exec(&mut self, plan: &PhysicalPlan) -> Result<Vec<Tuple>, ExecError> {
        self.checkpoint()?;
        let out = if !self.tracing {
            self.exec_node(plan)?
        } else {
            let start = Instant::now();
            let before = self.io_mark();
            self.trace_stack.push(Vec::new());
            let out = self.exec_node(plan)?;
            let children = self
                .trace_stack
                .pop()
                .ok_or_else(|| ExecError::MalformedTrace("trace frame missing".into()))?;
            let node = self.trace_node(plan, out.len() as u64, start, before, children);
            self.trace_stack
                .last_mut()
                .ok_or_else(|| ExecError::MalformedTrace("parent trace frame missing".into()))?
                .push(node);
            out
        };
        self.checkpoint()?;
        Ok(out)
    }

    fn exec_node(&mut self, plan: &PhysicalPlan) -> Result<Vec<Tuple>, ExecError> {
        match &plan.op {
            PhysicalOp::FileScan { coll, var } => {
                let members = self.store.members(*coll).to_vec();
                let mut out = Vec::with_capacity(members.len());
                for oid in members {
                    let page = self.store.try_page_of(oid).map_err(ExecError::Corrupt)?;
                    self.touch(page)?;
                    self.counts.tuples += 1;
                    out.push(Tuple::single(self.n_vars(), *var, oid));
                }
                self.leaf_rows += out.len() as u64;
                Ok(out)
            }

            PhysicalOp::IndexScan { index, var, pred } => {
                let idx = self.store.index(*index);
                let full_scan = self.env.preds.pred(*pred).terms.is_empty();
                let matches: Vec<Oid> = if full_scan {
                    // Full ordered sweep: every leaf, entries in key order;
                    // fetch order must follow the keys, not the OIDs.
                    idx.all_ordered()
                } else {
                    let (op, key) = self.index_term(*pred)?;
                    // Point or range lookup: fetch in OID (storage) order,
                    // which is elevator-friendly.
                    let mut m = idx.lookup_cmp(op, &key);
                    m.sort_unstable();
                    m
                };
                for p in idx.lookup_pages(matches.len() as u64) {
                    self.touch(p)?;
                }
                for oid in &matches {
                    let page = self.store.try_page_of(*oid).map_err(ExecError::Corrupt)?;
                    self.touch(page)?;
                }
                self.counts.tuples += matches.len() as u64;
                self.leaf_rows += matches.len() as u64;
                Ok(matches
                    .into_iter()
                    .map(|oid| Tuple::single(self.n_vars(), *var, oid))
                    .collect())
            }

            PhysicalOp::Filter { pred } => {
                let input = self.exec(&plan.children[0])?;
                self.filter_tuples(*pred, input)
            }

            PhysicalOp::HybridHashJoin { pred } => {
                let left = self.exec(&plan.children[0])?;
                let right = self.exec(&plan.children[1])?;
                self.hash_join(*pred, left, right)
            }

            PhysicalOp::PointerJoin { pred } => {
                let left = self.exec(&plan.children[0])?;
                self.pointer_join(*pred, left)
            }

            PhysicalOp::Assembly { targets, window } => {
                let mut tuples = self.exec(&plan.children[0])?;
                for &v in targets {
                    self.assemble(&mut tuples, v, *window)?;
                }
                Ok(tuples)
            }

            PhysicalOp::WarmAssembly { target } => {
                let tuples = self.exec(&plan.children[0])?;
                self.warm_assemble(tuples, *target)
            }

            PhysicalOp::AlgUnnest { out } => {
                let input = self.exec(&plan.children[0])?;
                let VarOrigin::Unnest { src, field } = self.env.scopes.var(*out).origin else {
                    return Err(ExecError::MalformedPlan(
                        "AlgUnnest output must have Unnest origin".into(),
                    ));
                };
                let mut result = Vec::new();
                for t in input {
                    let set = self
                        .store
                        .try_read_field(t.get(src), field)
                        .map_err(ExecError::Corrupt)?
                        .as_ref_set()
                        .ok_or_else(|| {
                            ExecError::MalformedPlan("unnest field must be set-valued".into())
                        })?
                        .to_vec();
                    for m in set {
                        self.counts.tuples += 1;
                        result.push(t.with(*out, m));
                    }
                }
                Ok(result)
            }

            PhysicalOp::AlgProject { .. } => Err(ExecError::MalformedPlan(
                "projection only supported at the plan root".into(),
            )),

            PhysicalOp::HashSetOp { kind } => {
                let left = self.exec(&plan.children[0])?;
                let right = self.exec(&plan.children[1])?;
                self.set_op(*kind, left, right)
            }

            PhysicalOp::MergeJoin { pred } => {
                let left = self.exec(&plan.children[0])?;
                let right = self.exec(&plan.children[1])?;
                self.merge_join(*pred, left, right)
            }

            PhysicalOp::Sort { key } => {
                let tuples = self.exec(&plan.children[0])?;
                self.counts.hash_ops += tuples.len() as u64; // sort work proxy
                                                             // Extract keys up front so corruption surfaces as an error
                                                             // (a comparator closure cannot propagate one).
                let mut keyed = Vec::with_capacity(tuples.len());
                for t in tuples {
                    let k = self
                        .store
                        .try_read_field(t.get(key.var), key.field)
                        .map_err(ExecError::Corrupt)?
                        .clone();
                    keyed.push((k, t));
                }
                keyed.sort_by(|a, b| {
                    a.0.partial_cmp_val(&b.0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                Ok(keyed.into_iter().map(|(_, t)| t).collect())
            }
        }
    }

    /// Applies a filter predicate, in parallel morsels when the input is
    /// large and a worker set is configured. Both paths preserve input
    /// order and per-term predicate accounting; the parallel path
    /// re-checks the row budget against the merged counts right after
    /// the dispatch.
    fn filter_tuples(
        &mut self,
        pred: oodb_algebra::PredId,
        input: Vec<Tuple>,
    ) -> Result<Vec<Tuple>, ExecError> {
        if self.parallelism <= 1 || input.len() < morsel::MIN_PARALLEL_ROWS {
            let mut out = Vec::with_capacity(input.len());
            for t in input {
                let (ok, n) =
                    eval_pred(self.store, self.env, &t, pred).map_err(ExecError::Corrupt)?;
                self.counts.preds += n;
                if ok {
                    out.push(t);
                }
            }
            return Ok(out);
        }
        let (store, env) = (self.store, self.env);
        let (out, counts) =
            morsel::dispatch(self.parallelism, &self.limits, input, |t, counts, out| {
                let (ok, n) = eval_pred(store, env, &t, pred).map_err(ExecError::Corrupt)?;
                counts.preds += n;
                if ok {
                    out.push(t);
                }
                Ok(())
            })?;
        self.merge_counts(counts);
        self.checkpoint()?;
        Ok(out)
    }

    /// Extracts the comparison operator and constant key of an index-scan
    /// predicate, normalizing `const <op> attr` to `attr <flipped-op>
    /// const`.
    fn index_term(
        &self,
        pred: oodb_algebra::PredId,
    ) -> Result<(oodb_object::value::CmpLike, Value), ExecError> {
        let p = self.env.preds.pred(pred);
        for t in &p.terms {
            if let Operand::Const(v) = &t.right {
                return Ok((t.op.as_cmp_like(), v.clone()));
            }
            if let Operand::Const(v) = &t.left {
                return Ok((t.op.flipped().as_cmp_like(), v.clone()));
            }
        }
        Err(ExecError::MalformedPlan(
            "index-scan predicate has no constant".into(),
        ))
    }

    /// Maximum partition-recursion depth for a spilling hash join;
    /// beyond it (skewed keys that never split) the join falls back to
    /// grant-bounded chunking, which always terminates.
    const MAX_SPILL_DEPTH: u32 = 4;
    /// Partition fan-out per spill level.
    const SPILL_FANOUT: usize = 8;

    fn hash_join(
        &mut self,
        pred: oodb_algebra::PredId,
        left: Vec<Tuple>,
        right: Vec<Tuple>,
    ) -> Result<Vec<Tuple>, ExecError> {
        let p = self.env.preds.pred(pred);
        let first = p
            .terms
            .iter()
            .find(|t| t.op == oodb_algebra::CmpOp::Eq)
            .ok_or_else(|| ExecError::MalformedPlan("hash join needs an equality term".into()))?;
        // Decide which operand belongs to which side by probing bindings.
        let (left_key_op, right_key_op) = if left
            .first()
            .and_then(|t| first.left.var().and_then(|v| t.try_get(v)))
            .is_some()
            || right
                .first()
                .and_then(|t| first.right.var().and_then(|v| t.try_get(v)))
                .is_some()
        {
            (&first.left, &first.right)
        } else {
            (&first.right, &first.left)
        };
        self.hash_join_governed(pred, left_key_op, right_key_op, left, right, 0)
    }

    /// The true hybrid: build in memory when the grant covers the build
    /// side; otherwise partition both sides by a depth-salted rehash of
    /// the join key, spill each partition to simulated disk at
    /// sequential rates, and recurse — producing exactly the rows the
    /// in-memory join would.
    fn hash_join_governed(
        &mut self,
        pred: oodb_algebra::PredId,
        left_key_op: &Operand,
        right_key_op: &Operand,
        left: Vec<Tuple>,
        right: Vec<Tuple>,
        depth: u32,
    ) -> Result<Vec<Tuple>, ExecError> {
        let need = (left.len() as u64 * self.hash_entry_bytes()).max(1);
        if self.grant.try_reserve(need) {
            let out = self.hash_join_in_memory(pred, left_key_op, right_key_op, &left, &right);
            self.grant.release(need);
            return out;
        }
        if depth >= Self::MAX_SPILL_DEPTH {
            return self.hash_join_chunked(pred, left_key_op, right_key_op, left, right);
        }
        // Grant refused: split into FANOUT partition pairs. A key's
        // partition depends only on (key, depth), so matching rows land
        // together and partitions join independently.
        let salt = oodb_fault::splitmix64(0xA55E_B1E0 ^ u64::from(depth));
        let part_of =
            |k: u64| (oodb_fault::splitmix64(k ^ salt) % Self::SPILL_FANOUT as u64) as usize;
        let mut lparts: Vec<Vec<Tuple>> = (0..Self::SPILL_FANOUT).map(|_| Vec::new()).collect();
        let mut rparts: Vec<Vec<Tuple>> = (0..Self::SPILL_FANOUT).map(|_| Vec::new()).collect();
        for t in left {
            self.work_tick()?;
            self.counts.hash_ops += 1;
            // Keyless rows can never match — the in-memory build skips
            // them too.
            if let Some(k) = eval_operand(self.store, &t, left_key_op)
                .map_err(ExecError::Corrupt)?
                .hash_key()
            {
                lparts[part_of(k)].push(t);
            }
        }
        for t in right {
            self.work_tick()?;
            self.counts.hash_ops += 1;
            if let Some(k) = eval_operand(self.store, &t, right_key_op)
                .map_err(ExecError::Corrupt)?
                .hash_key()
            {
                rparts[part_of(k)].push(t);
            }
        }
        // Write every productive partition out, then read each back and
        // join it. One write pairs with one read, so spill bytes
        // reconcile at quiesce; partitions that cannot produce rows
        // (either side empty) are dropped unspilled.
        let parts: Vec<(Vec<Tuple>, Vec<Tuple>)> = lparts.into_iter().zip(rparts).collect();
        let mut pages_of = Vec::with_capacity(parts.len());
        for (lp, rp) in &parts {
            if lp.is_empty() || rp.is_empty() {
                pages_of.push(0);
                continue;
            }
            let pages = self.spill_pages_for(lp.len() + rp.len());
            self.charge_spill_write(pages);
            self.spilled_partitions += 1;
            pages_of.push(pages);
        }
        let mut out = Vec::new();
        for ((lp, rp), pages) in parts.into_iter().zip(pages_of) {
            if pages == 0 {
                continue;
            }
            self.checkpoint()?;
            self.charge_spill_read(pages);
            out.extend(self.hash_join_governed(
                pred,
                left_key_op,
                right_key_op,
                lp,
                rp,
                depth + 1,
            )?);
        }
        Ok(out)
    }

    /// Classic build + probe over the whole build side; callers have
    /// already reserved the table's bytes.
    fn hash_join_in_memory(
        &mut self,
        pred: oodb_algebra::PredId,
        left_key_op: &Operand,
        right_key_op: &Operand,
        left: &[Tuple],
        right: &[Tuple],
    ) -> Result<Vec<Tuple>, ExecError> {
        // Build on the left input ("hash table of the referenced objects").
        let mut table: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, t) in left.iter().enumerate() {
            self.work_tick()?;
            self.counts.hash_ops += 1;
            if let Some(k) = eval_operand(self.store, t, left_key_op)
                .map_err(ExecError::Corrupt)?
                .hash_key()
            {
                table.entry(k).or_default().push(i);
            }
        }
        // Probe. The build above is serial (it mutates the table and the
        // grant has already covered its bytes); the probe is a pure
        // function of (table, left, right) and parallelizes over right
        // morsels when a worker set is configured, with outputs
        // concatenated in probe order — byte-identical to the serial
        // loop below.
        if self.parallelism > 1 && right.len() >= morsel::MIN_PARALLEL_ROWS {
            let (store, env) = (self.store, self.env);
            let table = &table;
            let probes: Vec<&Tuple> = right.iter().collect();
            let (out, counts) =
                morsel::dispatch(self.parallelism, &self.limits, probes, |rt, counts, out| {
                    counts.hash_ops += 1;
                    let Some(k) = eval_operand(store, rt, right_key_op)
                        .map_err(ExecError::Corrupt)?
                        .hash_key()
                    else {
                        return Ok(());
                    };
                    if let Some(matches) = table.get(&k) {
                        for &i in matches {
                            let merged = left[i].merge(rt);
                            let (ok, n) =
                                eval_pred(store, env, &merged, pred).map_err(ExecError::Corrupt)?;
                            counts.preds += n;
                            if ok {
                                counts.tuples += 1;
                                out.push(merged);
                            }
                        }
                    }
                    Ok(())
                })?;
            self.merge_counts(counts);
            self.checkpoint()?;
            return Ok(out);
        }
        let mut out = Vec::new();
        for rt in right {
            self.work_tick()?;
            self.counts.hash_ops += 1;
            let Some(k) = eval_operand(self.store, rt, right_key_op)
                .map_err(ExecError::Corrupt)?
                .hash_key()
            else {
                continue;
            };
            if let Some(matches) = table.get(&k) {
                for &i in matches {
                    let merged = left[i].merge(rt);
                    // Verify the full predicate (hash collisions + residual
                    // conjuncts).
                    let (ok, n) = eval_pred(self.store, self.env, &merged, pred)
                        .map_err(ExecError::Corrupt)?;
                    self.counts.preds += n;
                    if ok {
                        self.counts.tuples += 1;
                        out.push(merged);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Last-resort join when partitioning cannot split the keys: build
    /// over the largest left chunk the grant admits (at least one row)
    /// and probe the whole right side per chunk, charging each extra
    /// probe pass as a sequential spool out and back. Fails typed only
    /// when even a single-row chunk does not fit.
    fn hash_join_chunked(
        &mut self,
        pred: oodb_algebra::PredId,
        left_key_op: &Operand,
        right_key_op: &Operand,
        left: Vec<Tuple>,
        right: Vec<Tuple>,
    ) -> Result<Vec<Tuple>, ExecError> {
        let entry = self.hash_entry_bytes();
        let probe_pages = self.spill_pages_for(right.len());
        let mut out = Vec::new();
        let mut i = 0usize;
        let mut pass = 0u64;
        while i < left.len() {
            self.checkpoint()?;
            let mut chunk = left.len() - i;
            let need = loop {
                let need = (chunk as u64 * entry).max(1);
                if self.grant.try_reserve(need) {
                    break need;
                }
                if chunk <= 1 {
                    return Err(ExecError::MemoryExhausted {
                        requested: need,
                        budget: self.grant.budget(),
                    });
                }
                chunk /= 2;
            };
            if pass > 0 {
                self.charge_spill_write(probe_pages);
                self.charge_spill_read(probe_pages);
            }
            let joined = self.hash_join_in_memory(
                pred,
                left_key_op,
                right_key_op,
                &left[i..i + chunk],
                &right,
            );
            self.grant.release(need);
            out.extend(joined?);
            i += chunk;
            pass += 1;
        }
        Ok(out)
    }

    fn pointer_join(
        &mut self,
        pred: oodb_algebra::PredId,
        left: Vec<Tuple>,
    ) -> Result<Vec<Tuple>, ExecError> {
        let p = self.env.preds.pred(pred);
        let term = p
            .terms
            .first()
            .ok_or_else(|| ExecError::MalformedPlan("pointer join needs a term".into()))?;
        let (ref_on_left, target) = term.as_ref_eq().ok_or_else(|| {
            ExecError::MalformedPlan("pointer join needs a reference equality".into())
        })?;
        let ref_op = if ref_on_left { &term.left } else { &term.right };

        // Partition: gather all references, fetch their pages in one
        // elevator sweep, then bind.
        let mut refs = Vec::with_capacity(left.len());
        for t in &left {
            self.counts.derefs += 1;
            let oid = eval_operand(self.store, t, ref_op)
                .map_err(ExecError::Corrupt)?
                .as_ref_oid()
                .ok_or_else(|| {
                    ExecError::MalformedPlan("reference operand must yield a reference".into())
                })?;
            refs.push(oid);
        }
        let pages: Vec<PageId> = refs
            .iter()
            .map(|&o| self.store.try_page_of(o).map_err(ExecError::Corrupt))
            .collect::<Result<_, _>>()?;
        self.touch_elevator(&pages)?;
        Ok(left
            .into_iter()
            .zip(refs)
            .map(|(t, oid)| t.with(target, oid))
            .collect())
    }

    fn assemble(
        &mut self,
        tuples: &mut [Tuple],
        target: VarId,
        window: u32,
    ) -> Result<(), ExecError> {
        let VarOrigin::Mat { src, field } = self.env.scopes.var(target).origin else {
            return Err(ExecError::MalformedPlan(
                "assembly target must have Mat origin".into(),
            ));
        };
        // An open reference costs bookkeeping bytes while its window is
        // in flight; under memory pressure the window shrinks, trading
        // the elevator's seek discount for staying inside the grant. A
        // window of one needs no reservation (that is the floor).
        const OPEN_REF_BYTES: u64 = 48;
        let mut window = window.max(1) as usize;
        let mut reserved = 0u64;
        while window > 1 {
            let need = window as u64 * OPEN_REF_BYTES;
            if self.grant.try_reserve(need) {
                reserved = need;
                break;
            }
            window /= 2;
        }
        let mut i = 0;
        while i < tuples.len() {
            // Satellite guarantee: cancellation/deadline reach every
            // window boundary, not just operator entry/exit.
            self.checkpoint()?;
            let end = (i + window).min(tuples.len());
            // Open a window of references, fetch its pages in one elevator
            // sweep, resolve, slide on.
            let mut refs = Vec::with_capacity(end - i);
            for t in &tuples[i..end] {
                self.counts.derefs += 1;
                // A plan may assemble a component the input already binds
                // (an extent scan of the component's collection); the
                // binding IS the reference, so resolve through the source
                // only when the target is still open.
                let oid = match t.try_get(target) {
                    Some(o) => o,
                    None => match field {
                        Some(f) => self
                            .store
                            .try_read_field(t.get(src), f)
                            .map_err(ExecError::Corrupt)?
                            .as_ref_oid()
                            .ok_or_else(|| {
                                ExecError::MalformedPlan("Mat field must hold a reference".into())
                            })?,
                        None => t.get(src),
                    },
                };
                refs.push(oid);
            }
            let pages: Vec<PageId> = refs
                .iter()
                .map(|&o| self.store.try_page_of(o).map_err(ExecError::Corrupt))
                .collect::<Result<_, _>>()?;
            if window == 1 {
                self.touch(pages[0])?;
            } else {
                self.touch_elevator(&pages)?;
            }
            for (t, oid) in tuples[i..end].iter_mut().zip(refs) {
                t.bind(target, oid);
            }
            i = end;
        }
        if reserved > 0 {
            self.grant.release(reserved);
        }
        Ok(())
    }

    /// Warm-start assembly: sweep the component's whole collection
    /// sequentially into the buffer pool, then resolve every reference as
    /// a buffer hit.
    fn warm_assemble(
        &mut self,
        tuples: Vec<Tuple>,
        target: VarId,
    ) -> Result<Vec<Tuple>, ExecError> {
        let VarOrigin::Mat { src, field } = self.env.scopes.var(target).origin else {
            return Err(ExecError::MalformedPlan(
                "warm assembly target must have Mat origin".into(),
            ));
        };
        let domain = self
            .env
            .var_domain(target)
            .ok_or_else(|| ExecError::MalformedPlan("warm assembly needs a known domain".into()))?;
        for page in self.store.scan_pages(domain) {
            self.touch(page)?;
        }
        let mut out = Vec::with_capacity(tuples.len());
        for t in tuples {
            self.counts.derefs += 1;
            // As in [`Executor::assemble`]: an already-bound target is its
            // own reference.
            let oid = match t.try_get(target) {
                Some(o) => o,
                None => match field {
                    Some(f) => self
                        .store
                        .try_read_field(t.get(src), f)
                        .map_err(ExecError::Corrupt)?
                        .as_ref_oid()
                        .ok_or_else(|| {
                            ExecError::MalformedPlan("Mat field must hold a reference".into())
                        })?,
                    None => t.get(src),
                },
            };
            // The referenced page is (almost certainly) resident now;
            // touching it records the buffer hit honestly.
            let page = self.store.try_page_of(oid).map_err(ExecError::Corrupt)?;
            self.touch(page)?;
            out.push(t.with(target, oid));
        }
        Ok(out)
    }

    /// Merge join over key-sorted inputs: advance two cursors, pair up
    /// equal-key groups, verify residual conjuncts.
    fn merge_join(
        &mut self,
        pred: oodb_algebra::PredId,
        left: Vec<Tuple>,
        right: Vec<Tuple>,
    ) -> Result<Vec<Tuple>, ExecError> {
        let p = self.env.preds.pred(pred);
        let eq = p
            .terms
            .iter()
            .find(|t| t.op == oodb_algebra::CmpOp::Eq)
            .ok_or_else(|| ExecError::MalformedPlan("merge join needs an equality term".into()))?;
        // Orient operands by which side binds their variable.
        let (l_op, r_op) = {
            let lv = eq.left.var().ok_or_else(|| {
                ExecError::MalformedPlan("merge join needs an attribute operand".into())
            })?;
            if left.first().is_some_and(|t| t.try_get(lv).is_some()) {
                (&eq.left, &eq.right)
            } else {
                (&eq.right, &eq.left)
            }
        };
        // Extract both key columns up front (totalizes corruption; the
        // run-gathering below then needs no fallible closure).
        let lkeys: Vec<Value> = left
            .iter()
            .map(|t| eval_operand(self.store, t, l_op).map_err(ExecError::Corrupt))
            .collect::<Result<_, _>>()?;
        let rkeys: Vec<Value> = right
            .iter()
            .map(|t| eval_operand(self.store, t, r_op).map_err(ExecError::Corrupt))
            .collect::<Result<_, _>>()?;
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < left.len() && j < right.len() {
            self.counts.tuples += 1;
            let kl = &lkeys[i];
            let kr = &rkeys[j];
            match kl.total_cmp_val(kr) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Gather both equal-key runs and cross them.
                    let i_end = (i..left.len())
                        .take_while(|&x| &lkeys[x] == kl)
                        .last()
                        .unwrap()
                        + 1;
                    let j_end = (j..right.len())
                        .take_while(|&y| &rkeys[y] == kr)
                        .last()
                        .unwrap()
                        + 1;
                    for l in &left[i..i_end] {
                        for r in &right[j..j_end] {
                            let merged = l.merge(r);
                            let (ok, n) = eval_pred(self.store, self.env, &merged, pred)
                                .map_err(ExecError::Corrupt)?;
                            self.counts.preds += n;
                            if ok {
                                out.push(merged);
                            }
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        Ok(out)
    }

    /// Extra bytes charged per key held in a set-op hash set.
    const SET_ENTRY_OVERHEAD: u64 = 48;

    /// Approximate bytes one bound-slot key occupies in a set-op table.
    fn set_entry_bytes(&self) -> u64 {
        self.tuple_bytes() + Self::SET_ENTRY_OVERHEAD
    }

    /// Hash set ops, governed: when the grant covers the key sets, the
    /// classic hashed variant runs; when refused, a staged variant
    /// produces the identical output in bounded memory.
    fn set_op(
        &mut self,
        kind: SetOpKind,
        left: Vec<Tuple>,
        right: Vec<Tuple>,
    ) -> Result<Vec<Tuple>, ExecError> {
        let need = ((left.len() + right.len()) as u64 * self.set_entry_bytes()).max(1);
        if self.grant.try_reserve(need) {
            let out = self.set_op_hashed(kind, left, right);
            self.grant.release(need);
            return out;
        }
        self.set_op_staged(kind, left, right)
    }

    fn set_op_hashed(
        &mut self,
        kind: SetOpKind,
        left: Vec<Tuple>,
        right: Vec<Tuple>,
    ) -> Result<Vec<Tuple>, ExecError> {
        let key = |t: &Tuple| -> Vec<(usize, Oid)> { t.bound().collect() };
        let mut right_keys: HashSet<Vec<(usize, Oid)>> = HashSet::with_capacity(right.len());
        for t in &right {
            self.work_tick()?;
            self.counts.hash_ops += 1;
            right_keys.insert(key(t));
        }
        self.counts.hash_ops += left.len() as u64;
        Ok(match kind {
            SetOpKind::Union => {
                let mut seen: HashSet<Vec<(usize, Oid)>> = HashSet::new();
                let mut out = Vec::new();
                for t in left.into_iter().chain(right) {
                    self.work_tick()?;
                    if seen.insert(key(&t)) {
                        out.push(t);
                    }
                }
                out
            }
            SetOpKind::Intersect => left
                .into_iter()
                .filter(|t| right_keys.contains(&key(t)))
                .collect(),
            SetOpKind::Difference => left
                .into_iter()
                .filter(|t| !right_keys.contains(&key(t)))
                .collect(),
        })
    }

    /// Memory-bounded set ops producing byte-identical output to
    /// [`Executor::set_op_hashed`]:
    ///
    /// - **Union** sorts an index array over the concatenated inputs by
    ///   key (stable tie-break on chain position), keeps each key's
    ///   first chain occurrence, and emits in chain order — one index
    ///   and one flag per row instead of a hash set of keys.
    /// - **Intersect/Difference** stage the right side through
    ///   grant-sized key chunks, marking matched left rows; left order
    ///   is preserved.
    fn set_op_staged(
        &mut self,
        kind: SetOpKind,
        left: Vec<Tuple>,
        right: Vec<Tuple>,
    ) -> Result<Vec<Tuple>, ExecError> {
        let key = |t: &Tuple| -> Vec<(usize, Oid)> { t.bound().collect() };
        match kind {
            SetOpKind::Union => {
                let all: Vec<Tuple> = left.into_iter().chain(right).collect();
                // One u32 index + one flag byte per row.
                let need = (all.len() as u64 * 5).max(1);
                if !self.grant.try_reserve(need) {
                    return Err(ExecError::MemoryExhausted {
                        requested: need,
                        budget: self.grant.budget(),
                    });
                }
                self.counts.hash_ops += all.len() as u64; // sort work proxy
                let mut idx: Vec<u32> = (0..all.len() as u32).collect();
                idx.sort_by(|&a, &b| {
                    key(&all[a as usize])
                        .cmp(&key(&all[b as usize]))
                        .then(a.cmp(&b))
                });
                let mut keep = vec![false; all.len()];
                let mut g = 0;
                while g < idx.len() {
                    self.work_tick()?;
                    let kg = key(&all[idx[g] as usize]);
                    let mut end = g + 1;
                    while end < idx.len() && key(&all[idx[end] as usize]) == kg {
                        end += 1;
                    }
                    // Ascending tie-break means idx[g] is the first chain
                    // occurrence of this key.
                    keep[idx[g] as usize] = true;
                    g = end;
                }
                self.grant.release(need);
                Ok(all
                    .into_iter()
                    .zip(keep)
                    .filter_map(|(t, k)| k.then_some(t))
                    .collect())
            }
            SetOpKind::Intersect | SetOpKind::Difference => {
                let flags_need = (left.len() as u64).max(1);
                if !self.grant.try_reserve(flags_need) {
                    return Err(ExecError::MemoryExhausted {
                        requested: flags_need,
                        budget: self.grant.budget(),
                    });
                }
                let mut matched = vec![false; left.len()];
                let entry = self.set_entry_bytes();
                let mut j = 0usize;
                while j < right.len() {
                    self.checkpoint()?;
                    let mut chunk = right.len() - j;
                    let need = loop {
                        let need = (chunk as u64 * entry).max(1);
                        if self.grant.try_reserve(need) {
                            break need;
                        }
                        if chunk <= 1 {
                            self.grant.release(flags_need);
                            return Err(ExecError::MemoryExhausted {
                                requested: need,
                                budget: self.grant.budget(),
                            });
                        }
                        chunk /= 2;
                    };
                    let mut keys: HashSet<Vec<(usize, Oid)>> = HashSet::with_capacity(chunk);
                    for t in &right[j..j + chunk] {
                        self.work_tick()?;
                        self.counts.hash_ops += 1;
                        keys.insert(key(t));
                    }
                    for (t, m) in left.iter().zip(matched.iter_mut()) {
                        if !*m {
                            self.work_tick()?;
                            self.counts.hash_ops += 1;
                            if keys.contains(&key(t)) {
                                *m = true;
                            }
                        }
                    }
                    self.grant.release(need);
                    j += chunk;
                }
                self.grant.release(flags_need);
                let keep_on_match = kind == SetOpKind::Intersect;
                Ok(left
                    .into_iter()
                    .zip(matched)
                    .filter_map(|(t, m)| (m == keep_on_match).then_some(t))
                    .collect())
            }
        }
    }
}

/// One-shot convenience: fresh executor, run, return result + stats.
/// Panics on failure — use [`try_execute`] when faults, deadlines, or
/// cancellation are in play.
pub fn execute(store: &Store, env: &QueryEnv, plan: &PhysicalPlan) -> (ExecResult, ExecStats) {
    let mut ex = Executor::new(store, env);
    let result = ex.run(plan);
    let mut stats = ex.stats();
    stats.root_rows = result.len() as u64;
    (result, stats)
}

/// One-shot fallible execution under cooperative [`RunLimits`]: fresh
/// executor, run, return result + stats or the [`ExecError`] that stopped
/// the run.
pub fn try_execute(
    store: &Store,
    env: &QueryEnv,
    plan: &PhysicalPlan,
    limits: RunLimits,
) -> Result<(ExecResult, ExecStats), ExecError> {
    let mut ex = Executor::new(store, env);
    ex.set_limits(limits);
    let result = ex.try_run(plan)?;
    let mut stats = ex.stats();
    stats.root_rows = result.len() as u64;
    Ok((result, stats))
}

/// One-shot fallible execution with a morsel worker set: like
/// [`try_execute`] but pure-CPU operator segments (filters, root
/// projection, in-memory hash-join probes) run on up to `workers`
/// threads. Results are byte-identical to the serial path.
pub fn try_execute_parallel(
    store: &Store,
    env: &QueryEnv,
    plan: &PhysicalPlan,
    limits: RunLimits,
    workers: usize,
) -> Result<(ExecResult, ExecStats), ExecError> {
    let mut ex = Executor::new(store, env);
    ex.set_limits(limits);
    ex.set_parallelism(workers);
    let result = ex.try_run(plan)?;
    let mut stats = ex.stats();
    stats.root_rows = result.len() as u64;
    Ok((result, stats))
}

/// One-shot `EXPLAIN ANALYZE`: fresh executor, traced run, return result,
/// stats, and the per-operator trace tree. Panics on failure — use
/// [`try_execute_traced`] when faults or limits are in play.
pub fn execute_traced(
    store: &Store,
    env: &QueryEnv,
    plan: &PhysicalPlan,
) -> (ExecResult, ExecStats, OpTrace) {
    let mut ex = Executor::new(store, env);
    let (result, trace) = ex.run_traced(plan);
    let mut stats = ex.stats();
    stats.root_rows = result.len() as u64;
    (result, stats, trace)
}

/// Fallible [`execute_traced`] under cooperative [`RunLimits`].
pub fn try_execute_traced(
    store: &Store,
    env: &QueryEnv,
    plan: &PhysicalPlan,
    limits: RunLimits,
) -> Result<(ExecResult, ExecStats, OpTrace), ExecError> {
    let mut ex = Executor::new(store, env);
    ex.set_limits(limits);
    let (result, trace) = ex.try_run_traced(plan)?;
    let mut stats = ex.stats();
    stats.root_rows = result.len() as u64;
    Ok((result, stats, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_algebra::{CmpOp, PlanEst, QueryBuilder};
    use oodb_storage::{generate_paper_db, GenConfig};

    fn plan(op: PhysicalOp, children: Vec<PhysicalPlan>) -> PhysicalPlan {
        PhysicalPlan {
            op,
            children,
            est: PlanEst::default(),
        }
    }

    #[test]
    fn file_scan_returns_all_members_with_sequential_io() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, c) = qb.get(m.ids.cities, "c");
        let env = qb.into_env();
        let scan = plan(
            PhysicalOp::FileScan {
                coll: m.ids.cities,
                var: c,
            },
            vec![],
        );
        let (res, stats) = execute(&store, &env, &scan);
        assert_eq!(res.len(), store.members(m.ids.cities).len());
        // Dense scan: almost everything sequential.
        assert!(stats.disk.seq_reads >= stats.disk.rand_reads);
    }

    #[test]
    fn filter_agrees_with_oracle() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, t) = qb.get(m.ids.tasks, "t");
        let pred = qb.cmp_const(t, m.ids.task_time, CmpOp::Eq, Value::Int(100));
        let env = qb.into_env();
        let p = plan(
            PhysicalOp::Filter { pred },
            vec![plan(
                PhysicalOp::FileScan {
                    coll: m.ids.tasks,
                    var: t,
                },
                vec![],
            )],
        );
        let (res, _) = execute(&store, &env, &p);
        let oracle = store
            .members(m.ids.tasks)
            .iter()
            .filter(|&&o| store.read_field(o, m.ids.task_time) == &Value::Int(100))
            .count();
        assert_eq!(res.len(), oracle);
    }

    #[test]
    fn assembly_resolves_references_and_window_matters() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let (_, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
        let env = qb.into_env();

        let mk = |window: u32| {
            plan(
                PhysicalOp::Assembly {
                    targets: vec![cm],
                    window,
                },
                vec![plan(
                    PhysicalOp::FileScan {
                        coll: m.ids.cities,
                        var: c,
                    },
                    vec![],
                )],
            )
        };
        let (res_w, stats_w) = execute(&store, &env, &mk(8192));
        let (res_1, stats_1) = execute(&store, &env, &mk(1));
        assert_eq!(res_w.len(), res_1.len());
        // Same bindings regardless of window.
        for (a, b) in res_w.tuples().iter().zip(res_1.tuples()) {
            assert_eq!(a.get(cm), b.get(cm));
            assert_eq!(
                Some(a.get(cm)),
                store.read_field(a.get(c), m.ids.city_mayor).as_ref_oid()
            );
        }
        // The windowed elevator is cheaper on simulated time.
        assert!(
            stats_w.disk.total_s < stats_1.disk.total_s,
            "window {} vs window-1 {}",
            stats_w.disk.total_s,
            stats_1.disk.total_s
        );
    }

    #[test]
    fn hash_join_matches_pointer_join() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (emp, e) = qb.get(m.ids.employees, "e");
        let (_, d) = qb.mat(emp, e, m.ids.emp_dept, "d");
        let pred = qb.ref_eq(e, m.ids.emp_dept, d);
        let env = qb.into_env();

        let emp_scan = || {
            plan(
                PhysicalOp::FileScan {
                    coll: m.ids.employees,
                    var: e,
                },
                vec![],
            )
        };
        // HHJ: referenced objects (departments) on the build/left side.
        let hhj = plan(
            PhysicalOp::HybridHashJoin { pred },
            vec![
                plan(
                    PhysicalOp::FileScan {
                        coll: m.ids.department_extent,
                        var: d,
                    },
                    vec![],
                ),
                emp_scan(),
            ],
        );
        let pj = plan(PhysicalOp::PointerJoin { pred }, vec![emp_scan()]);
        let (r1, _) = execute(&store, &env, &hhj);
        let (r2, _) = execute(&store, &env, &pj);
        assert_eq!(r1.len(), r2.len());
        assert_eq!(r1.len(), store.members(m.ids.employees).len());
        let set1: HashSet<&Tuple> = r1.tuples().iter().collect();
        assert!(r2.tuples().iter().all(|t| set1.contains(t)));
    }

    #[test]
    fn set_ops_behave() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, t) = qb.get(m.ids.tasks, "t");
        let p100 = qb.cmp_const(t, m.ids.task_time, CmpOp::Eq, Value::Int(100));
        let ple = qb.cmp_const(t, m.ids.task_time, CmpOp::Le, Value::Int(100));
        let env = qb.into_env();
        let scan = || {
            plan(
                PhysicalOp::FileScan {
                    coll: m.ids.tasks,
                    var: t,
                },
                vec![],
            )
        };
        let f100 = plan(PhysicalOp::Filter { pred: p100 }, vec![scan()]);
        let fle = plan(PhysicalOp::Filter { pred: ple }, vec![scan()]);

        let inter = plan(
            PhysicalOp::HashSetOp {
                kind: SetOpKind::Intersect,
            },
            vec![f100.clone(), fle.clone()],
        );
        let diff = plan(
            PhysicalOp::HashSetOp {
                kind: SetOpKind::Difference,
            },
            vec![fle.clone(), f100.clone()],
        );
        let union = plan(
            PhysicalOp::HashSetOp {
                kind: SetOpKind::Union,
            },
            vec![f100.clone(), fle.clone()],
        );
        let (ri, _) = execute(&store, &env, &inter);
        let (rd, _) = execute(&store, &env, &diff);
        let (ru, _) = execute(&store, &env, &union);
        let (r100, _) = execute(&store, &env, &f100);
        let (rle, _) = execute(&store, &env, &fle);
        // time==100 ⊆ time<=100.
        assert_eq!(ri.len(), r100.len());
        assert_eq!(rd.len(), rle.len() - r100.len());
        assert_eq!(ru.len(), rle.len());
    }

    /// The spilling hybrid join must produce exactly the rows the
    /// in-memory join does — partitioned, recursed, or chunked — while
    /// charging visible spill I/O and reconciling the governor's ledger.
    #[test]
    fn spilling_hash_join_matches_in_memory() {
        use oodb_mem::MemoryGovernor;
        let (mut store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (emp, e) = qb.get(m.ids.employees, "e");
        let (_, d) = qb.mat(emp, e, m.ids.emp_dept, "d");
        let pred = qb.ref_eq(e, m.ids.emp_dept, d);
        let env = qb.into_env();
        let hhj = plan(
            PhysicalOp::HybridHashJoin { pred },
            vec![
                plan(
                    PhysicalOp::FileScan {
                        coll: m.ids.employees,
                        var: e,
                    },
                    vec![],
                ),
                plan(
                    PhysicalOp::FileScan {
                        coll: m.ids.department_extent,
                        var: d,
                    },
                    vec![],
                ),
            ],
        );
        let (baseline, base_stats) = try_execute(&store, &env, &hhj, RunLimits::default()).unwrap();
        assert_eq!(base_stats.mem.spill_pages_written, 0, "unconstrained run");
        let mut base_sorted: Vec<&Tuple> = baseline.tuples().iter().collect();
        base_sorted.sort_by_key(|t| (t.get(e), t.get(d)));

        // Govern at a fraction of the 500-row build side; every budget
        // must still produce the identical result multiset.
        let gov = MemoryGovernor::new(u64::MAX);
        store.attach_memory_governor(gov.clone());
        for budget in [8192u64, 1024, 256] {
            let (res, stats) = try_execute(
                &store,
                &env,
                &hhj,
                RunLimits {
                    mem_budget: Some(budget),
                    ..Default::default()
                },
            )
            .unwrap_or_else(|err| panic!("budget {budget}: {err}"));
            let mut sorted: Vec<&Tuple> = res.tuples().iter().collect();
            sorted.sort_by_key(|t| (t.get(e), t.get(d)));
            assert_eq!(sorted, base_sorted, "budget {budget}");
            assert!(
                stats.mem.spilled_partitions > 0 || stats.mem.grant_denials > 0,
                "budget {budget} should constrain a 500-row build: {:?}",
                stats.mem
            );
            assert_eq!(
                stats.mem.spill_pages_written, stats.mem.spill_pages_read,
                "every spilled page is read back exactly once (budget {budget})"
            );
            assert!(
                stats.mem.peak_bytes <= budget,
                "peak {} exceeds budget {budget}",
                stats.mem.peak_bytes
            );
            assert!(stats.disk.total_s > base_stats.disk.total_s || budget >= 8192);
        }
        let gs = gov.stats();
        assert_eq!(gs.reserved, 0, "quiesce: all grants returned");
        assert_eq!(gs.reserved_total, gs.released_total);
        assert_eq!(gs.spill_bytes_written, gs.spill_bytes_read);
    }

    /// A grant that cannot hold even one hash-table row is a typed
    /// error, not a panic or a wrong answer.
    #[test]
    fn zero_memory_budget_is_a_typed_error() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (emp, e) = qb.get(m.ids.employees, "e");
        let (_, d) = qb.mat(emp, e, m.ids.emp_dept, "d");
        let pred = qb.ref_eq(e, m.ids.emp_dept, d);
        let env = qb.into_env();
        let hhj = plan(
            PhysicalOp::HybridHashJoin { pred },
            vec![
                plan(
                    PhysicalOp::FileScan {
                        coll: m.ids.department_extent,
                        var: d,
                    },
                    vec![],
                ),
                plan(
                    PhysicalOp::FileScan {
                        coll: m.ids.employees,
                        var: e,
                    },
                    vec![],
                ),
            ],
        );
        let err = try_execute(
            &store,
            &env,
            &hhj,
            RunLimits {
                mem_budget: Some(0),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, ExecError::MemoryExhausted { budget: 0, .. }),
            "{err}"
        );
    }

    /// Staged set-ops under a tight grant emit byte-identical output to
    /// the hashed variants, in the same order.
    #[test]
    fn staged_set_ops_match_hashed_exactly() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, t) = qb.get(m.ids.tasks, "t");
        let p100 = qb.cmp_const(t, m.ids.task_time, CmpOp::Eq, Value::Int(100));
        let ple = qb.cmp_const(t, m.ids.task_time, CmpOp::Le, Value::Int(100));
        let env = qb.into_env();
        let scan = || {
            plan(
                PhysicalOp::FileScan {
                    coll: m.ids.tasks,
                    var: t,
                },
                vec![],
            )
        };
        let f100 = plan(PhysicalOp::Filter { pred: p100 }, vec![scan()]);
        let fle = plan(PhysicalOp::Filter { pred: ple }, vec![scan()]);
        for kind in [
            SetOpKind::Union,
            SetOpKind::Intersect,
            SetOpKind::Difference,
        ] {
            let p = plan(
                PhysicalOp::HashSetOp { kind },
                vec![fle.clone(), f100.clone()],
            );
            let (unconstrained, _) = try_execute(&store, &env, &p, RunLimits::default()).unwrap();
            let (staged, stats) = try_execute(
                &store,
                &env,
                &p,
                RunLimits {
                    // Enough for flags and a small key chunk, far too
                    // small for the full key sets.
                    mem_budget: Some(128),
                    ..Default::default()
                },
            )
            .unwrap_or_else(|err| panic!("{kind:?}: {err}"));
            assert!(
                stats.mem.grant_denials > 0,
                "{kind:?} should have been staged"
            );
            assert_eq!(
                staged.tuples(),
                unconstrained.tuples(),
                "{kind:?}: staged output must match hashed output exactly"
            );
        }
    }

    /// A grant-shrunk assembly window binds the same references, paying
    /// more simulated seeks for the smaller elevator sweep.
    #[test]
    fn pressured_assembly_window_shrinks_not_breaks() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let (_, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
        let env = qb.into_env();
        let p = plan(
            PhysicalOp::Assembly {
                targets: vec![cm],
                window: 8192,
            },
            vec![plan(
                PhysicalOp::FileScan {
                    coll: m.ids.cities,
                    var: c,
                },
                vec![],
            )],
        );
        let (full, full_stats) = try_execute(&store, &env, &p, RunLimits::default()).unwrap();
        let (tight, tight_stats) = try_execute(
            &store,
            &env,
            &p,
            RunLimits {
                mem_budget: Some(1024), // window shrinks to ~21 refs
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(full.tuples(), tight.tuples(), "bindings are unaffected");
        assert!(
            tight_stats.disk.total_s > full_stats.disk.total_s,
            "smaller window loses elevator discount: {} vs {}",
            tight_stats.disk.total_s,
            full_stats.disk.total_s
        );
    }

    /// Satellite: the row budget (and with it, cancellation and the
    /// deadline — they share the checkpoint) interrupts a hash join
    /// *mid-probe*, not only at the next operator boundary.
    #[test]
    fn row_budget_interrupts_hash_join_mid_probe() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (emp, e) = qb.get(m.ids.employees, "e");
        let (_, d) = qb.mat(emp, e, m.ids.emp_dept, "d");
        let pred = qb.ref_eq(e, m.ids.emp_dept, d);
        let env = qb.into_env();
        let hhj = plan(
            PhysicalOp::HybridHashJoin { pred },
            vec![
                plan(
                    PhysicalOp::FileScan {
                        coll: m.ids.department_extent,
                        var: d,
                    },
                    vec![],
                ),
                plan(
                    PhysicalOp::FileScan {
                        coll: m.ids.employees,
                        var: e,
                    },
                    vec![],
                ),
            ],
        );
        // The scans produce 10 + 500 tuples; the probe then emits one
        // joined tuple per employee. A budget of 600 survives the scans
        // and expires partway through the probe's 500 emissions.
        let mut ex = Executor::new(&store, &env);
        ex.set_limits(RunLimits {
            row_budget: Some(600),
            ..Default::default()
        });
        let err = ex.try_run(&hhj).unwrap_err();
        assert_eq!(err, ExecError::RowBudgetExceeded { budget: 600 });
        let probed = ex.stats().counts.hash_ops;
        assert!(
            probed < 510,
            "the probe loop must stop mid-flight, not at operator exit \
             (hash ops = {probed}, full join would be 510)"
        );
    }

    #[test]
    fn reused_executor_attributes_stats_per_run() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, c) = qb.get(m.ids.cities, "c");
        let env = qb.into_env();
        let scan = plan(
            PhysicalOp::FileScan {
                coll: m.ids.cities,
                var: c,
            },
            vec![],
        );
        let mut ex = Executor::new(&store, &env);
        ex.run(&scan);
        let first = ex.stats();
        ex.run(&scan);
        let second = ex.stats();
        // Second run reports only its own work: all buffer hits (pool is
        // warm), no fresh misses, same tuple count as the first run.
        assert_eq!(second.counts.tuples, first.counts.tuples);
        assert_eq!(second.buffer_misses, 0, "warm rerun must not miss");
        assert!(second.buffer_hits > 0);
        assert_eq!(second.disk.pages(), 0, "warm rerun reads no pages");
        // Cumulative view still aggregates both runs.
        let cum = ex.cumulative_stats();
        assert_eq!(
            cum.counts.tuples,
            first.counts.tuples + second.counts.tuples
        );
        assert_eq!(cum.buffer_misses, first.buffer_misses);
    }

    #[test]
    fn traced_run_reconciles_with_stats() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, t) = qb.get(m.ids.tasks, "t");
        let pred = qb.cmp_const(t, m.ids.task_time, CmpOp::Eq, Value::Int(100));
        let env = qb.into_env();
        let p = plan(
            PhysicalOp::Filter { pred },
            vec![plan(
                PhysicalOp::FileScan {
                    coll: m.ids.tasks,
                    var: t,
                },
                vec![],
            )],
        );
        let (result, stats, trace) = execute_traced(&store, &env, &p);
        // The trace tree mirrors the plan tree.
        assert_eq!(trace.children.len(), 1);
        assert!(trace.label.starts_with("Filter"), "{}", trace.label);
        assert!(trace.children[0].label.starts_with("File Scan"));
        // Root actual rows equal result cardinality.
        assert_eq!(trace.actual_rows, result.len() as u64);
        // Root (cumulative) I/O equals the run's ExecStats.
        assert_eq!(
            trace.buffer_hits + trace.buffer_misses,
            stats.buffer_hits + stats.buffer_misses
        );
        assert!((trace.sim_io_s - stats.disk.total_s).abs() < 1e-12);
        // The scan produced at least as many rows as survived the filter.
        assert!(trace.children[0].actual_rows >= trace.actual_rows);
        // Untraced execution returns identical results.
        let (plain, _) = execute(&store, &env, &p);
        assert_eq!(plain, result);
    }

    #[test]
    fn shared_pool_attribution_is_per_executor() {
        let (mut store, m) = generate_paper_db(GenConfig::small());
        store.attach_shared_pool(1 << 14);
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, c) = qb.get(m.ids.cities, "c");
        let env = qb.into_env();
        let scan = plan(
            PhysicalOp::FileScan {
                coll: m.ids.cities,
                var: c,
            },
            vec![],
        );
        let (_, cold) = execute(&store, &env, &scan);
        let (_, warm) = execute(&store, &env, &scan);
        // The second executor is brand new, yet the shared pool is warm.
        assert!(cold.buffer_misses > 0);
        assert_eq!(warm.buffer_misses, 0, "shared pool must stay warm");
        assert_eq!(warm.buffer_hits, cold.buffer_hits + cold.buffer_misses);
        // Pool-wide counters equal the sum of the per-executor tallies.
        let pool = store.shared_pool().unwrap();
        assert_eq!(
            pool.stats(),
            (
                cold.buffer_hits + warm.buffer_hits,
                cold.buffer_misses + warm.buffer_misses
            )
        );
    }

    #[test]
    fn nested_projection_is_a_typed_error_not_a_panic() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, c) = qb.get(m.ids.cities, "c");
        let items = vec![Operand::VarOid(c)];
        let env = qb.into_env();
        // A projection *below* a filter is malformed: only the root may
        // project. The engine must refuse, not panic.
        let p = plan(
            PhysicalOp::Filter {
                pred: env.preds.intern(oodb_algebra::Pred { terms: vec![] }),
            },
            vec![plan(
                PhysicalOp::AlgProject { items },
                vec![plan(
                    PhysicalOp::FileScan {
                        coll: m.ids.cities,
                        var: c,
                    },
                    vec![],
                )],
            )],
        );
        let err = try_execute(&store, &env, &p, RunLimits::default()).unwrap_err();
        assert!(matches!(err, ExecError::MalformedPlan(_)), "{err:?}");
    }

    #[test]
    fn cancelled_token_stops_the_run() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, c) = qb.get(m.ids.cities, "c");
        let env = qb.into_env();
        let scan = plan(
            PhysicalOp::FileScan {
                coll: m.ids.cities,
                var: c,
            },
            vec![],
        );
        let cancel = oodb_fault::CancelToken::new();
        cancel.cancel();
        let limits = RunLimits {
            cancel: Some(cancel),
            ..Default::default()
        };
        assert_eq!(
            try_execute(&store, &env, &scan, limits).unwrap_err(),
            ExecError::Cancelled
        );
    }

    #[test]
    fn row_budget_interrupts_a_scan() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, c) = qb.get(m.ids.cities, "c");
        let env = qb.into_env();
        let scan = plan(
            PhysicalOp::FileScan {
                coll: m.ids.cities,
                var: c,
            },
            vec![],
        );
        let limits = RunLimits {
            row_budget: Some(0),
            ..Default::default()
        };
        assert_eq!(
            try_execute(&store, &env, &scan, limits).unwrap_err(),
            ExecError::RowBudgetExceeded { budget: 0 }
        );
    }

    #[test]
    fn injected_faults_surface_as_typed_errors() {
        let (mut store, m) = generate_paper_db(GenConfig::small());
        store.attach_fault_injector(oodb_storage::FaultInjector::new(
            oodb_storage::FaultConfig {
                read_fault_rate: 1.0,
                ..Default::default()
            },
        ));
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_, c) = qb.get(m.ids.cities, "c");
        let env = qb.into_env();
        let scan = plan(
            PhysicalOp::FileScan {
                coll: m.ids.cities,
                var: c,
            },
            vec![],
        );
        let err = try_execute(&store, &env, &scan, RunLimits::default()).unwrap_err();
        assert!(matches!(err, ExecError::Fault(_)), "{err:?}");
        // Disabling the injector restores infallible execution.
        store.fault_injector().unwrap().set_enabled(false);
        assert!(try_execute(&store, &env, &scan, RunLimits::default()).is_ok());
    }

    #[test]
    fn unnest_expands_teams() {
        let (store, m) = generate_paper_db(GenConfig::small());
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (tasks, t) = qb.get(m.ids.tasks, "t");
        let (_, mm) = qb.unnest(tasks, t, m.ids.task_team_members, "m");
        let env = qb.into_env();
        let p = plan(
            PhysicalOp::AlgUnnest { out: mm },
            vec![plan(
                PhysicalOp::FileScan {
                    coll: m.ids.tasks,
                    var: t,
                },
                vec![],
            )],
        );
        let (res, _) = execute(&store, &env, &p);
        let oracle: usize = store
            .members(m.ids.tasks)
            .iter()
            .map(|&o| {
                store
                    .read_field(o, m.ids.task_team_members)
                    .as_ref_set()
                    .unwrap()
                    .len()
            })
            .sum();
        assert_eq!(res.len(), oracle);
    }

    /// A plan exercising every morsel-parallel segment — filter, root
    /// projection, and the in-memory hash-join probe — over an input
    /// large enough to actually dispatch (employees at 1/10 scale =
    /// 5000 rows > the parallel threshold).
    fn morsel_heavy_plan(
        m: &oodb_object::paper::PaperModel,
        mut qb: QueryBuilder,
    ) -> (PhysicalPlan, QueryEnv) {
        let (_, e) = qb.get(m.ids.employees, "e");
        let (_, d) = qb.get(m.ids.department_extent, "d");
        let join = qb.ref_eq(e, m.ids.emp_dept, d);
        let sel = qb.cmp_const(
            e,
            m.ids.emp_salary,
            CmpOp::Ge,
            Value::Int(0), // keep every row so the probe stays big
        );
        let name = Operand::Attr {
            var: e,
            field: m.ids.person_name,
        };
        let p = plan(
            PhysicalOp::AlgProject { items: vec![name] },
            vec![plan(
                PhysicalOp::HybridHashJoin { pred: join },
                vec![
                    plan(
                        PhysicalOp::FileScan {
                            coll: m.ids.department_extent,
                            var: d,
                        },
                        vec![],
                    ),
                    plan(
                        PhysicalOp::Filter { pred: sel },
                        vec![plan(
                            PhysicalOp::FileScan {
                                coll: m.ids.employees,
                                var: e,
                            },
                            vec![],
                        )],
                    ),
                ],
            )],
        );
        (p, qb.into_env())
    }

    #[test]
    fn morsel_parallel_run_is_byte_identical_to_serial() {
        let (store, m) = generate_paper_db(GenConfig {
            scale_div: 10,
            ..Default::default()
        });
        let qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (p, env) = morsel_heavy_plan(&m, qb);

        let mut serial = Executor::new(&store, &env);
        let base = serial.run(&p);
        let base_stats = serial.stats();

        for workers in [2, 4, 8] {
            let mut par = Executor::new(&store, &env);
            par.set_parallelism(workers);
            let res = par.run(&p);
            assert_eq!(res, base, "{workers} workers");
            let stats = par.stats();
            // Identical work accounting, not just identical rows.
            assert_eq!(stats.counts.tuples, base_stats.counts.tuples);
            assert_eq!(stats.counts.preds, base_stats.counts.preds);
            assert_eq!(stats.counts.hash_ops, base_stats.counts.hash_ops);
        }
    }

    #[test]
    fn morsel_parallel_run_observes_cancellation() {
        use oodb_fault::CancelToken;
        let (store, m) = generate_paper_db(GenConfig {
            scale_div: 10,
            ..Default::default()
        });
        let qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (p, env) = morsel_heavy_plan(&m, qb);
        let cancel = CancelToken::new();
        cancel.cancel();
        let mut ex = Executor::new(&store, &env);
        ex.set_parallelism(4);
        ex.set_limits(RunLimits {
            cancel: Some(cancel),
            ..Default::default()
        });
        assert_eq!(ex.try_run(&p).unwrap_err(), ExecError::Cancelled);
    }
}
