//! The memo: groups of logically equivalent expressions.
//!
//! Design notes (see DESIGN.md §4):
//!
//! * **Arenas + ids.** Groups and expressions live in `Vec`s addressed by
//!   [`GroupId`]/[`ExprId`]; expressions hold child *group* ids. No
//!   reference counting, no interior mutability — rewriting is pure index
//!   manipulation.
//! * **Duplicate elimination.** A hash map from `(operator, normalized
//!   child groups)` to expression detects when a transformation produces an
//!   expression the memo already holds. This is what makes exhaustive
//!   transformation terminate, and it is also the paper's "global common
//!   subexpression factorization ... for free".
//! * **Group merging.** When a top-level rewrite of group *A* produces an
//!   expression already present in group *B*, the two groups are proven
//!   equivalent and merged through a union-find. Merging can cascade:
//!   normalizing child pointers may reveal further duplicates, which the
//!   rebuild loop processes to fixpoint.

use crate::model::OptModel;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a memo group (an equivalence class of expressions).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(u32);

impl GroupId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// Identifier of a memo expression.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// A logical expression in the memo: an operator over child groups.
#[derive(Debug)]
pub struct Expr<M: OptModel> {
    /// The operator.
    pub op: M::LOp,
    /// Child groups (normalized at insertion; callers should re-normalize
    /// through [`Memo::find`] after merges).
    pub children: Vec<GroupId>,
    /// Owning group.
    pub group: GroupId,
}

// Manual Clone: deriving would require `M: Clone` on the model type.
impl<M: OptModel> Clone for Expr<M> {
    fn clone(&self) -> Self {
        Expr {
            op: self.op.clone(),
            children: self.children.clone(),
            group: self.group,
        }
    }
}

/// A rewrite template: the result shape of a transformation rule. Leaves
/// point at existing groups; interior nodes create (or find) expressions.
#[derive(Clone, Debug)]
pub enum Rewrite<L> {
    /// A new or existing operator over sub-rewrites.
    Op(L, Vec<Rewrite<L>>),
    /// An existing group, passed through unchanged.
    Group(GroupId),
}

struct Group<M: OptModel> {
    exprs: Vec<ExprId>,
    props: M::LProps,
}

/// The memo structure.
pub struct Memo<M: OptModel> {
    exprs: Vec<Expr<M>>,
    dead: Vec<bool>,
    groups: Vec<Group<M>>,
    /// Union-find parent; `parent[i] == i` for representatives.
    parent: Vec<u32>,
    dedup: HashMap<(M::LOp, Vec<GroupId>), ExprId>,
    merges: u64,
}

impl<M: OptModel> Default for Memo<M> {
    fn default() -> Self {
        Memo {
            exprs: Vec::new(),
            dead: Vec::new(),
            groups: Vec::new(),
            parent: Vec::new(),
            dedup: HashMap::new(),
            merges: 0,
        }
    }
}

impl<M: OptModel> Memo<M> {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Representative group of `g` under merges.
    pub fn find(&self, g: GroupId) -> GroupId {
        let mut i = g.0;
        while self.parent[i as usize] != i {
            i = self.parent[i as usize];
        }
        GroupId(i)
    }

    fn normalize(&self, children: &[GroupId]) -> Vec<GroupId> {
        children.iter().map(|&c| self.find(c)).collect()
    }

    /// In-place variant of [`normalize`](Self::normalize) for callers that
    /// already own the child vector — avoids an allocation per insert.
    fn normalize_owned(&self, mut children: Vec<GroupId>) -> Vec<GroupId> {
        for c in &mut children {
            *c = self.find(*c);
        }
        children
    }

    /// Inserts an expression, finding or creating its group. Returns
    /// `(group, expr, inserted)`; `inserted` is false when the expression
    /// already existed.
    pub fn insert(
        &mut self,
        model: &M,
        op: M::LOp,
        children: Vec<GroupId>,
    ) -> (GroupId, ExprId, bool) {
        // Build the dedup key exactly once; on a miss it is moved into
        // `push_expr`, which splits it between the map and the arena.
        let key = (op, self.normalize_owned(children));
        if let Some(&e) = self.dedup.get(&key) {
            return (self.find(self.exprs[e.index()].group), e, false);
        }
        let props = {
            let inputs: Vec<&M::LProps> = key
                .1
                .iter()
                .map(|c| &self.groups[self.find(*c).index()].props)
                .collect();
            model.derive_props(&key.0, &inputs)
        };
        let g = GroupId(self.groups.len() as u32);
        self.groups.push(Group {
            exprs: Vec::new(),
            props,
        });
        self.parent.push(g.0);
        let e = self.push_expr(key, g);
        (g, e, true)
    }

    fn push_expr(&mut self, key: (M::LOp, Vec<GroupId>), g: GroupId) -> ExprId {
        let e = ExprId(self.exprs.len() as u32);
        self.exprs.push(Expr {
            op: key.0.clone(),
            children: key.1.clone(),
            group: g,
        });
        self.dedup.insert(key, e);
        self.dead.push(false);
        self.groups[g.index()].exprs.push(e);
        e
    }

    /// Inserts an expression *into a specific group* (the result of a
    /// top-level rewrite). If the expression already exists in another
    /// group, the groups are merged. Returns whether the memo changed.
    pub fn insert_into(
        &mut self,
        _model: &M,
        group: GroupId,
        op: M::LOp,
        children: Vec<GroupId>,
    ) -> bool {
        let group = self.find(group);
        let key = (op, self.normalize_owned(children));
        if let Some(&e) = self.dedup.get(&key) {
            let other = self.find(self.exprs[e.index()].group);
            if other != group {
                self.merge(group, other);
                return true;
            }
            return false;
        }
        self.push_expr(key, group);
        true
    }

    /// Recursively materializes a [`Rewrite`] template, inserting the top
    /// operator into `target`. Returns whether the memo changed.
    pub fn insert_rewrite(&mut self, model: &M, target: GroupId, rw: Rewrite<M::LOp>) -> bool {
        match rw {
            Rewrite::Group(g) => {
                // A bare group at top level asserts target ≡ g.
                let (a, b) = (self.find(target), self.find(g));
                if a != b {
                    self.merge(a, b);
                    true
                } else {
                    false
                }
            }
            Rewrite::Op(op, subs) => {
                let children: Vec<GroupId> = subs
                    .into_iter()
                    .map(|s| self.materialize(model, s))
                    .collect();
                self.insert_into(model, target, op, children)
            }
        }
    }

    fn materialize(&mut self, model: &M, rw: Rewrite<M::LOp>) -> GroupId {
        match rw {
            Rewrite::Group(g) => self.find(g),
            Rewrite::Op(op, subs) => {
                let children: Vec<GroupId> = subs
                    .into_iter()
                    .map(|s| self.materialize(model, s))
                    .collect();
                self.insert(model, op, children).0
            }
        }
    }

    fn merge(&mut self, a: GroupId, b: GroupId) {
        let (a, b) = (self.find(a), self.find(b));
        if a == b {
            return;
        }
        // Keep the lower-numbered group as representative (its props win).
        let (win, lose) = if a.0 < b.0 { (a, b) } else { (b, a) };
        self.parent[lose.0 as usize] = win.0;
        let moved = std::mem::take(&mut self.groups[lose.index()].exprs);
        for e in &moved {
            self.exprs[e.index()].group = win;
        }
        self.groups[win.index()].exprs.extend(moved);
        self.merges += 1;
        self.rebuild_dedup();
    }

    /// Re-normalizes all dedup keys after a merge; duplicate expressions
    /// revealed by normalization are killed (same group) or trigger
    /// cascading merges (different groups).
    fn rebuild_dedup(&mut self) {
        loop {
            let mut map: HashMap<(M::LOp, Vec<GroupId>), ExprId> = HashMap::new();
            let mut cascade: Option<(GroupId, GroupId)> = None;
            for i in 0..self.exprs.len() {
                if self.dead[i] {
                    continue;
                }
                let e = ExprId(i as u32);
                let norm = self.normalize(&self.exprs[i].children);
                if self.exprs[i].children != norm {
                    self.exprs[i].children = norm.clone();
                }
                let key = (self.exprs[i].op.clone(), norm);
                match map.get(&key) {
                    None => {
                        map.insert(key, e);
                    }
                    Some(&first) => {
                        let g1 = self.find(self.exprs[first.index()].group);
                        let g2 = self.find(self.exprs[i].group);
                        if g1 == g2 {
                            // True duplicate within one group: retire it.
                            self.dead[i] = true;
                            self.groups[g2.index()].exprs.retain(|&x| x != e);
                        } else {
                            cascade = Some((g1, g2));
                            break;
                        }
                    }
                }
            }
            match cascade {
                Some((g1, g2)) => {
                    // Union without recursive rebuild; loop handles it.
                    let (win, lose) = if g1.0 < g2.0 { (g1, g2) } else { (g2, g1) };
                    self.parent[lose.0 as usize] = win.0;
                    let moved = std::mem::take(&mut self.groups[lose.index()].exprs);
                    for e in &moved {
                        self.exprs[e.index()].group = win;
                    }
                    self.groups[win.index()].exprs.extend(moved);
                    self.merges += 1;
                }
                None => {
                    self.dedup = map;
                    return;
                }
            }
        }
    }

    /// Live expressions of a group.
    pub fn group_exprs(&self, g: GroupId) -> Vec<ExprId> {
        self.groups[self.find(g).index()]
            .exprs
            .iter()
            .copied()
            .filter(|e| !self.dead[e.index()])
            .collect()
    }

    /// An expression by id.
    pub fn expr(&self, e: ExprId) -> &Expr<M> {
        &self.exprs[e.index()]
    }

    /// Whether an expression was retired by deduplication.
    pub fn is_dead(&self, e: ExprId) -> bool {
        self.dead[e.index()]
    }

    /// Logical properties of a group.
    pub fn props(&self, g: GroupId) -> &M::LProps {
        &self.groups[self.find(g).index()].props
    }

    /// All live expression ids.
    pub fn live_exprs(&self) -> Vec<ExprId> {
        (0..self.exprs.len())
            .filter(|&i| !self.dead[i])
            .map(|i| ExprId(i as u32))
            .collect()
    }

    /// Number of live (representative) groups.
    pub fn group_count(&self) -> usize {
        (0..self.groups.len())
            .filter(|&i| self.parent[i] == i as u32)
            .count()
    }

    /// Number of live expressions.
    pub fn expr_count(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// Number of group merges performed.
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// A small fingerprint of a group's current contents, used by the
    /// search engine to decide whether a rule must re-fire on an
    /// expression whose children have since grown.
    pub fn group_version(&self, g: GroupId) -> u64 {
        let g = self.find(g);
        (g.0 as u64) << 32 | self.groups[g.index()].exprs.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{Toy, ToyOp};

    fn scan(memo: &mut Memo<Toy>, model: &Toy, t: u32) -> GroupId {
        memo.insert(model, ToyOp::Table(t), vec![]).0
    }

    #[test]
    fn insert_dedups() {
        let model = Toy::default();
        let mut memo = Memo::new();
        let a = scan(&mut memo, &model, 0);
        let a2 = scan(&mut memo, &model, 0);
        assert_eq!(a, a2);
        assert_eq!(memo.group_count(), 1);
        assert_eq!(memo.expr_count(), 1);
    }

    #[test]
    fn rewrite_into_same_group_dedups() {
        let model = Toy::default();
        let mut memo = Memo::new();
        let a = scan(&mut memo, &model, 0);
        let b = scan(&mut memo, &model, 1);
        let (j, _, _) = memo.insert(&model, ToyOp::Join, vec![a, b]);
        // Commuted join: new expression in the same group.
        assert!(memo.insert_rewrite(
            &model,
            j,
            Rewrite::Op(ToyOp::Join, vec![Rewrite::Group(b), Rewrite::Group(a)])
        ));
        assert_eq!(memo.group_exprs(j).len(), 2);
        // Applying the same rewrite again changes nothing.
        assert!(!memo.insert_rewrite(
            &model,
            j,
            Rewrite::Op(ToyOp::Join, vec![Rewrite::Group(b), Rewrite::Group(a)])
        ));
        assert_eq!(memo.group_exprs(j).len(), 2);
    }

    #[test]
    fn top_level_duplicate_merges_groups() {
        let model = Toy::default();
        let mut memo = Memo::new();
        let a = scan(&mut memo, &model, 0);
        let b = scan(&mut memo, &model, 1);
        let (j1, _, _) = memo.insert(&model, ToyOp::Join, vec![a, b]);
        let (j2, _, _) = memo.insert(&model, ToyOp::Join, vec![b, a]);
        assert_ne!(j1, j2);
        // Commuting j2 produces Join(a, b) — already the anchor of j1 —
        // proving j1 ≡ j2.
        memo.insert_rewrite(
            &model,
            j2,
            Rewrite::Op(ToyOp::Join, vec![Rewrite::Group(a), Rewrite::Group(b)]),
        );
        assert_eq!(memo.find(j1), memo.find(j2));
        assert_eq!(memo.group_exprs(j1).len(), 2);
        assert_eq!(memo.merge_count(), 1);
    }

    #[test]
    fn cascading_merges_deduplicate_parents() {
        let model = Toy::default();
        let mut memo = Memo::new();
        let a = scan(&mut memo, &model, 0);
        let b = scan(&mut memo, &model, 1);
        let c = scan(&mut memo, &model, 2);
        let (ab1, _, _) = memo.insert(&model, ToyOp::Join, vec![a, b]);
        let (ab2, _, _) = memo.insert(&model, ToyOp::Join, vec![b, a]);
        // Two parents over the two (not yet merged) join groups.
        let (p1, _, _) = memo.insert(&model, ToyOp::Join, vec![ab1, c]);
        let (p2, _, _) = memo.insert(&model, ToyOp::Join, vec![ab2, c]);
        assert_ne!(memo.find(p1), memo.find(p2));
        // Merging the child groups must cascade into the parents, because
        // Join(ab, c) becomes a duplicate expression.
        memo.insert_rewrite(
            &model,
            ab2,
            Rewrite::Op(ToyOp::Join, vec![Rewrite::Group(a), Rewrite::Group(b)]),
        );
        assert_eq!(memo.find(ab1), memo.find(ab2));
        assert_eq!(memo.find(p1), memo.find(p2), "parent groups must merge");
    }

    #[test]
    fn nested_rewrite_creates_subgroups() {
        let model = Toy::default();
        let mut memo = Memo::new();
        let a = scan(&mut memo, &model, 0);
        let b = scan(&mut memo, &model, 1);
        let c = scan(&mut memo, &model, 2);
        let (abc, _, _) = {
            let (ab, _, _) = memo.insert(&model, ToyOp::Join, vec![a, b]);
            memo.insert(&model, ToyOp::Join, vec![ab, c])
        };
        let before = memo.group_count();
        // Associate: Join(Join(a,b),c) → Join(a, Join(b,c)).
        memo.insert_rewrite(
            &model,
            abc,
            Rewrite::Op(
                ToyOp::Join,
                vec![
                    Rewrite::Group(a),
                    Rewrite::Op(ToyOp::Join, vec![Rewrite::Group(b), Rewrite::Group(c)]),
                ],
            ),
        );
        assert_eq!(memo.group_count(), before + 1, "one new group: Join(b,c)");
        assert_eq!(memo.group_exprs(abc).len(), 2);
    }

    #[test]
    fn props_derive_bottom_up() {
        let model = Toy::default();
        let mut memo = Memo::new();
        let a = scan(&mut memo, &model, 0); // card 100
        let b = scan(&mut memo, &model, 1); // card 1000
        let (j, _, _) = memo.insert(&model, ToyOp::Join, vec![a, b]);
        // Toy join card = product / 10.
        assert_eq!(memo.props(j).card, 100.0 * 1000.0 / 10.0);
    }
}
