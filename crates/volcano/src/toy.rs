//! A minimal complete optimizer model.
//!
//! Serves two purposes: it exercises every framework feature in this
//! crate's unit tests (memo deduplication and merging, exhaustive
//! transformation, goal-directed search, enforcers, pruning), and it is a
//! template showing a new implementor exactly what must be supplied.
//!
//! The model is a caricature of relational join ordering: `Table(t)`
//! leaves with catalog cardinalities, a commutative/associative `Join`,
//! hash-join and scan algorithms, a `sorted` physical property deliverable
//! only by an index scan on table 0 or by an explicit `Sort` enforcer.

use crate::memo::{Expr, GroupId, Memo, Rewrite};
use crate::model::{
    Candidate, EnforceCandidate, Enforcer, ImplRule, OptModel, RuleSet, RuleSignature,
    TransformRule,
};

/// Toy logical operators.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ToyOp {
    /// Scan of table `t`.
    Table(u32),
    /// Natural join of two inputs.
    Join,
}

/// Toy physical operators.
#[derive(Clone, Debug, PartialEq)]
pub enum ToyPOp {
    /// Heap scan.
    Scan(u32),
    /// Index (sorted) scan; only table 0 has an index.
    SortedScan(u32),
    /// Hash join.
    HashJoin,
    /// Sort enforcer.
    Sort,
}

/// Toy logical properties.
#[derive(Clone, Debug, PartialEq)]
pub struct ToyProps {
    /// Estimated cardinality.
    pub card: f64,
    /// Bitset of base tables covered.
    pub tables: u32,
}

/// Toy physical property vector: sortedness only.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct ToySort {
    /// Output must be (is) sorted.
    pub sorted: bool,
}

/// The toy model: a catalog of table cardinalities.
#[derive(Clone, Debug)]
pub struct Toy {
    /// Cardinality of table `t`.
    pub cards: Vec<f64>,
}

impl Default for Toy {
    fn default() -> Self {
        Toy {
            cards: vec![100.0, 1000.0, 10.0, 10_000.0],
        }
    }
}

impl OptModel for Toy {
    type LOp = ToyOp;
    type POp = ToyPOp;
    type LProps = ToyProps;
    type PProps = ToySort;
    type Cost = f64;

    fn derive_props(&self, op: &ToyOp, inputs: &[&ToyProps]) -> ToyProps {
        match op {
            ToyOp::Table(t) => ToyProps {
                card: self.cards[*t as usize],
                tables: 1 << t,
            },
            ToyOp::Join => ToyProps {
                card: inputs[0].card * inputs[1].card / 10.0,
                tables: inputs[0].tables | inputs[1].tables,
            },
        }
    }

    fn satisfies(&self, required: &ToySort, delivered: &ToySort) -> bool {
        !required.sorted || delivered.sorted
    }
}

/// Join commutativity.
pub struct Commute;

impl TransformRule<Toy> for Commute {
    fn name(&self) -> &'static str {
        "join-commute"
    }
    fn apply(&self, _m: &Toy, _memo: &Memo<Toy>, expr: &Expr<Toy>) -> Vec<Rewrite<ToyOp>> {
        if expr.op != ToyOp::Join {
            return vec![];
        }
        vec![Rewrite::Op(
            ToyOp::Join,
            vec![
                Rewrite::Group(expr.children[1]),
                Rewrite::Group(expr.children[0]),
            ],
        )]
    }
    fn signature(&self) -> RuleSignature {
        RuleSignature {
            consumes: &["Join"],
            produces: &["Join"],
            generative: false,
        }
    }
}

/// Left-to-right join associativity — a two-level rule that enumerates the
/// left child group's expressions through the memo.
pub struct Assoc;

impl TransformRule<Toy> for Assoc {
    fn name(&self) -> &'static str {
        "join-assoc"
    }
    fn apply(&self, _m: &Toy, memo: &Memo<Toy>, expr: &Expr<Toy>) -> Vec<Rewrite<ToyOp>> {
        if expr.op != ToyOp::Join {
            return vec![];
        }
        let mut out = Vec::new();
        for le in memo.group_exprs(expr.children[0]) {
            let lexpr = memo.expr(le);
            if lexpr.op == ToyOp::Join {
                // (A ⋈ B) ⋈ C  →  A ⋈ (B ⋈ C)
                out.push(Rewrite::Op(
                    ToyOp::Join,
                    vec![
                        Rewrite::Group(lexpr.children[0]),
                        Rewrite::Op(
                            ToyOp::Join,
                            vec![
                                Rewrite::Group(lexpr.children[1]),
                                Rewrite::Group(expr.children[1]),
                            ],
                        ),
                    ],
                ));
            }
        }
        out
    }
    fn signature(&self) -> RuleSignature {
        RuleSignature {
            consumes: &["Join"],
            produces: &["Join"],
            generative: false,
        }
    }
}

/// Scan implementations: heap scan always; sorted index scan on table 0.
pub struct ScanImpl;

impl ImplRule<Toy> for ScanImpl {
    fn name(&self) -> &'static str {
        "scan"
    }
    fn implementations(
        &self,
        model: &Toy,
        _memo: &Memo<Toy>,
        expr: &Expr<Toy>,
        _required: &ToySort,
    ) -> Vec<Candidate<Toy>> {
        let ToyOp::Table(t) = expr.op else {
            return vec![];
        };
        let card = model.cards[t as usize];
        let mut out = vec![Candidate {
            op: ToyPOp::Scan(t),
            children: vec![],
            input_props: vec![],
            cost: card,
            delivers: ToySort { sorted: false },
        }];
        if t == 0 {
            out.push(Candidate {
                op: ToyPOp::SortedScan(t),
                children: vec![],
                input_props: vec![],
                cost: card * 1.2,
                delivers: ToySort { sorted: true },
            });
        }
        out
    }
}

/// Hash-join implementation (destroys order).
pub struct HashJoinImpl;

impl ImplRule<Toy> for HashJoinImpl {
    fn name(&self) -> &'static str {
        "hash-join"
    }
    fn implementations(
        &self,
        _model: &Toy,
        memo: &Memo<Toy>,
        expr: &Expr<Toy>,
        _required: &ToySort,
    ) -> Vec<Candidate<Toy>> {
        if expr.op != ToyOp::Join {
            return vec![];
        }
        let l = memo.props(expr.children[0]).card;
        let r = memo.props(expr.children[1]).card;
        vec![Candidate {
            op: ToyPOp::HashJoin,
            children: expr.children.clone(),
            input_props: vec![ToySort::default(), ToySort::default()],
            // Build on the smaller side: 2× build + 1× probe.
            cost: 2.0 * l.min(r) + l.max(r),
            delivers: ToySort { sorted: false },
        }]
    }
}

/// Sort enforcer.
pub struct SortEnforcer;

impl Enforcer<Toy> for SortEnforcer {
    fn name(&self) -> &'static str {
        "sort"
    }
    fn enforce(
        &self,
        _model: &Toy,
        memo: &Memo<Toy>,
        group: GroupId,
        required: &ToySort,
    ) -> Vec<EnforceCandidate<Toy>> {
        if !required.sorted {
            return vec![];
        }
        let card = memo.props(group).card;
        vec![EnforceCandidate {
            op: ToyPOp::Sort,
            input_props: ToySort { sorted: false },
            cost: card * 3.0,
            delivers: ToySort { sorted: true },
        }]
    }
}

/// The full toy rule set.
pub fn toy_rules() -> RuleSet<Toy> {
    RuleSet {
        transforms: vec![Box::new(Commute), Box::new(Assoc)],
        impls: vec![Box::new(ScanImpl), Box::new(HashJoinImpl)],
        enforcers: vec![Box::new(SortEnforcer)],
    }
}
