//! # `volcano` — a Volcano-style optimizer generator as a Rust library
//!
//! The original Volcano Optimizer Generator (Graefe & McKenna, ICDE 1993)
//! compiled a *model description file* — logical operators, algorithms,
//! transformation and implementation rules, property and cost functions —
//! together with a fixed search engine into an optimizer in C. This crate
//! plays the same role with Rust generics: the DBMS implementor supplies an
//! [`OptModel`] (the model description) and a [`RuleSet`] (the rules), and
//! gets back the full search machinery:
//!
//! * a **memo** ([`Memo`]) — arena-allocated groups of logically
//!   equivalent expressions with hash-based duplicate elimination (which is
//!   what gives "global common subexpression factorization ... for free")
//!   and union-find group merging;
//! * **exhaustive transformation** to fixpoint ([`Optimizer::explore_all`])
//!   with per-expression rule-firing memoization;
//! * **top-down, goal-directed search** over *(group, required physical
//!   properties)* pairs ([`Optimizer::optimize_group`]): "the search
//!   process considers only those subplans that can deliver the physical
//!   properties that are required by the algorithm of the containing
//!   plan";
//! * **property enforcers** ([`Enforcer`]) that close property gaps —
//!   exploring "strategies not covered by exclusively algebraic
//!   optimization frameworks";
//! * optional **branch-and-bound pruning** and detailed [`SearchStats`].
//!
//! The memo is index-based (`GroupId`/`ExprId` into arenas) precisely
//! because plan-graph rewriting under shared ownership is where naive
//! `Rc<RefCell<...>>` designs collapse; see DESIGN.md.
//!
//! The [`toy`] module contains a minimal complete model used by the unit
//! tests and as a template for new optimizers.

#![forbid(unsafe_code)]

pub mod enumerate;
pub mod memo;
pub mod model;
pub mod rulegraph;
pub mod search;
pub mod stats;
pub mod toy;

pub use enumerate::{EnumLimits, Enumeration};
pub use memo::{Expr, ExprId, GroupId, Memo, Rewrite};
pub use model::{
    Candidate, CostValue, EnforceCandidate, Enforcer, ImplRule, OptModel, RuleSet, RuleSignature,
    TransformRule,
};
pub use rulegraph::{prove_termination, CycleWitness, RuleGraph, TerminationProof};
pub use search::{Optimizer, PlanNode, SearchConfig, TraceEvent, Winner};
pub use stats::SearchStats;
