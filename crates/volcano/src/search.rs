//! The search engine: exhaustive transformation + top-down, goal-directed,
//! memoizing optimization.
//!
//! A *goal* is a `(group, required physical properties)` pair. Solving a
//! goal means finding the cheapest physical plan that computes the group's
//! logical expression *and* delivers the required properties. Winners are
//! memoized per goal; physical properties drive the search top-down exactly
//! as the paper describes for Query 3 ("the search process considers only
//! those subplans that can deliver the physical properties that are
//! required by the algorithm of the containing plan").

use crate::memo::{ExprId, GroupId, Memo};
use crate::model::{CostValue, OptModel, RuleSet};
use crate::stats::SearchStats;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Engine configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchConfig {
    /// Branch-and-bound: abandon a candidate as soon as its partial cost
    /// exceeds the best complete plan found for the goal. Sound (never
    /// changes the winner); saves effort. Off by default to mirror the
    /// paper's exhaustive-search evaluation.
    pub prune: bool,
    /// Record a goal-level search trace (see [`Optimizer::trace`]) — the
    /// "search state" view of the paper's Figure 11.
    pub trace: bool,
    /// Absolute deadline for the search. Checked at sweep and goal
    /// boundaries; once hit, exploration stops, every unsolved goal bails
    /// out as infeasible, and **nothing is memoized past the expiry** —
    /// any plan extracted afterwards is built only from winners completed
    /// before the deadline, so it is always internally consistent.
    /// [`crate::SearchStats::deadline_hit`] records that the bound bit.
    pub deadline: Option<Instant>,
}

/// One recorded search event (when tracing is enabled).
#[derive(Clone, Debug)]
pub enum TraceEvent<P> {
    /// A goal `(group, required properties)` was opened at the given
    /// recursion depth.
    GoalOpened {
        /// The group being optimized.
        group: GroupId,
        /// Required physical properties.
        props: P,
        /// Depth in the goal stack.
        depth: usize,
    },
    /// A goal was solved (or proven infeasible).
    GoalSolved {
        /// The group.
        group: GroupId,
        /// Required properties.
        props: P,
        /// Depth in the goal stack.
        depth: usize,
        /// Name of the winning rule/enforcer, if feasible.
        winner: Option<&'static str>,
        /// Total cost of the winner (scalar), if feasible.
        cost: Option<f64>,
    },
}

/// The winning physical alternative for one goal.
#[derive(Debug)]
pub struct Winner<M: OptModel> {
    /// The chosen algorithm (or enforcer).
    pub op: M::POp,
    /// Sub-goals: input group + required properties, resolvable against
    /// the winners table.
    pub children: Vec<(GroupId, M::PProps)>,
    /// Local cost of `op` alone.
    pub local_cost: M::Cost,
    /// Total cost including inputs.
    pub total: M::Cost,
    /// Properties the plan delivers.
    pub delivers: M::PProps,
    /// Name of the rule/enforcer that produced this alternative.
    pub rule: &'static str,
}

// Manual Clone impls: deriving would wrongly require `M: Clone` on the
// model type itself rather than on the associated types.
impl<M: OptModel> Clone for Winner<M> {
    fn clone(&self) -> Self {
        Winner {
            op: self.op.clone(),
            children: self.children.clone(),
            local_cost: self.local_cost,
            total: self.total,
            delivers: self.delivers.clone(),
            rule: self.rule,
        }
    }
}

/// An extracted physical plan node.
#[derive(Debug)]
pub struct PlanNode<M: OptModel> {
    /// The algorithm.
    pub op: M::POp,
    /// Input plans.
    pub children: Vec<PlanNode<M>>,
    /// Local cost of this operator.
    pub local_cost: M::Cost,
    /// Properties delivered here.
    pub delivers: M::PProps,
}

impl<M: OptModel> Clone for PlanNode<M> {
    fn clone(&self) -> Self {
        PlanNode {
            op: self.op.clone(),
            children: self.children.clone(),
            local_cost: self.local_cost,
            delivers: self.delivers.clone(),
        }
    }
}

impl<M: OptModel> PlanNode<M> {
    /// Total plan cost.
    pub fn total_cost(&self) -> M::Cost {
        self.children
            .iter()
            .fold(self.local_cost, |acc, c| acc.add(c.total_cost()))
    }

    /// Number of operators in the plan.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(PlanNode::size).sum::<usize>()
    }
}

/// The optimizer: memo + rules + winners table.
pub struct Optimizer<'a, M: OptModel> {
    model: &'a M,
    rules: &'a RuleSet<M>,
    /// The memo (public so the model's rules and the caller can seed and
    /// inspect it).
    pub memo: Memo<M>,
    config: SearchConfig,
    fired: HashMap<(ExprId, usize), u64>,
    /// Winners/in-progress keyed on `(group, hash(props))` rather than an
    /// owned props clone: goal keys become `Copy`, so the hot memoization
    /// path allocates nothing. A 64-bit hash collision between two
    /// distinct property requirements on the same group could alias two
    /// goals; with the handful of property values a query generates the
    /// odds are ~2⁻⁶⁴ per pair, which we accept for the allocation win.
    winners: HashMap<(GroupId, u64), Option<Winner<M>>>,
    in_progress: HashSet<(GroupId, u64)>,
    depth: usize,
    /// The recorded search trace (empty unless `SearchConfig::trace`).
    pub trace: Vec<TraceEvent<M::PProps>>,
    /// Search statistics.
    pub stats: SearchStats,
}

impl<'a, M: OptModel> Optimizer<'a, M> {
    /// Creates an optimizer over a model and rule set.
    pub fn new(model: &'a M, rules: &'a RuleSet<M>, config: SearchConfig) -> Self {
        Optimizer {
            model,
            rules,
            memo: Memo::new(),
            config,
            fired: HashMap::new(),
            winners: HashMap::new(),
            in_progress: HashSet::new(),
            depth: 0,
            trace: Vec::new(),
            stats: SearchStats::default(),
        }
    }

    /// The model. Returned at the optimizer's own lifetime so holding it
    /// does not freeze `self`.
    pub fn model(&self) -> &'a M {
        self.model
    }

    /// The rule set, at the optimizer's own lifetime.
    pub fn rules(&self) -> &'a RuleSet<M> {
        self.rules
    }

    pub(crate) fn goal_key(group: GroupId, props: &M::PProps) -> (GroupId, u64) {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        props.hash(&mut h);
        (group, h.finish())
    }

    /// Whether the search deadline has expired. Latches into
    /// `stats.deadline_hit` so subsequent checks skip the clock read.
    fn deadline_expired(&mut self) -> bool {
        if self.stats.deadline_hit {
            return true;
        }
        match self.config.deadline {
            Some(d) if Instant::now() >= d => {
                self.stats.deadline_hit = true;
                true
            }
            _ => false,
        }
    }

    fn children_version(&self, e: ExprId) -> u64 {
        let mut v: u64 = 0xcbf29ce484222325;
        for &c in &self.memo.expr(e).children {
            v = v
                .wrapping_mul(0x100000001b3)
                .wrapping_add(self.memo.group_version(c));
        }
        v
    }

    /// Applies transformation rules to a global fixpoint. Rules are
    /// re-fired on an expression whenever its child groups have grown
    /// since the last firing, so multi-level patterns are fully explored.
    pub fn explore_all(&mut self) {
        'sweep: loop {
            let mut changed = false;
            for e in self.memo.live_exprs() {
                if self.deadline_expired() {
                    break 'sweep;
                }
                if self.memo.is_dead(e) {
                    continue;
                }
                for ri in 0..self.rules.transforms.len() {
                    let ver = self.children_version(e);
                    if self.fired.get(&(e, ri)) == Some(&ver) {
                        continue;
                    }
                    self.fired.insert((e, ri), ver);
                    let expr = self.memo.expr(e).clone();
                    let target = expr.group;
                    let rewrites = self.rules.transforms[ri].apply(self.model, &self.memo, &expr);
                    self.stats.transform_firings += 1;
                    for rw in rewrites {
                        self.stats.exprs_generated += 1;
                        changed |= self.memo.insert_rewrite(self.model, target, rw);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.stats.groups = self.memo.group_count();
        self.stats.exprs = self.memo.expr_count();
    }

    /// Solves a goal: the cheapest plan computing `group` that delivers
    /// `props`. `None` means no feasible plan exists.
    pub fn optimize_group(&mut self, group: GroupId, props: M::PProps) -> Option<Winner<M>> {
        let group = self.memo.find(group);
        let key = Self::goal_key(group, &props);
        if let Some(w) = self.winners.get(&key) {
            return w.clone();
        }
        if self.deadline_expired() {
            // Bail without memoizing: this goal is unsolved, not
            // infeasible, and must not be remembered as such.
            return None;
        }
        if !self.in_progress.insert(key) {
            return None; // cycle guard: a plan requiring itself is infinite
        }
        self.stats.goals += 1;
        if self.config.trace {
            self.trace.push(TraceEvent::GoalOpened {
                group,
                props: props.clone(),
                depth: self.depth,
            });
        }
        self.depth += 1;

        let mut best: Option<Winner<M>> = None;

        // Implementation rules over each logical alternative. Copy the
        // rule-set reference out of `self` so the recursive mutable calls
        // below don't conflict with the loop borrow.
        let rules: &'a RuleSet<M> = self.rules;
        for e in self.memo.group_exprs(group) {
            for rule in &rules.impls {
                // Borrow the memoized expression only for candidate
                // generation; the recursive `optimize_group` calls below
                // need `&mut self`, so the borrow must end here.
                let cands = {
                    let expr = self.memo.expr(e);
                    rule.implementations(self.model, &self.memo, expr, &props)
                };
                for cand in cands {
                    self.stats.candidates += 1;
                    if !self.model.satisfies(&props, &cand.delivers) {
                        continue;
                    }
                    debug_assert_eq!(cand.children.len(), cand.input_props.len());
                    let mut total = cand.cost;
                    let mut children = Vec::with_capacity(cand.children.len());
                    let mut feasible = true;
                    for (cg, cp) in cand.children.into_iter().zip(cand.input_props) {
                        if self.config.prune {
                            if let Some(b) = &best {
                                if total.total() >= b.total.total() {
                                    self.stats.pruned += 1;
                                    feasible = false;
                                    break;
                                }
                            }
                        }
                        match self.optimize_group(cg, cp.clone()) {
                            Some(w) => {
                                total = total.add(w.total);
                                children.push((self.memo.find(cg), cp));
                            }
                            None => {
                                feasible = false;
                                break;
                            }
                        }
                    }
                    if !feasible {
                        continue;
                    }
                    self.stats.plans_costed += 1;
                    if best
                        .as_ref()
                        .is_none_or(|b| total.total() < b.total.total())
                    {
                        best = Some(Winner {
                            op: cand.op,
                            children,
                            local_cost: cand.cost,
                            total,
                            delivers: cand.delivers,
                            rule: rule.name(),
                        });
                    }
                }
            }
        }

        // Enforcers: satisfy the goal by fixing up a weaker one.
        for enf in &rules.enforcers {
            let cands = enf.enforce(self.model, &self.memo, group, &props);
            for ec in cands {
                self.stats.enforcements += 1;
                if ec.input_props == props {
                    continue; // no progress: would recurse forever
                }
                if !self.model.satisfies(&props, &ec.delivers) {
                    continue;
                }
                if let Some(w) = self.optimize_group(group, ec.input_props.clone()) {
                    let total = ec.cost.add(w.total);
                    self.stats.plans_costed += 1;
                    if best
                        .as_ref()
                        .is_none_or(|b| total.total() < b.total.total())
                    {
                        best = Some(Winner {
                            op: ec.op,
                            children: vec![(group, ec.input_props)],
                            local_cost: ec.cost,
                            total,
                            delivers: ec.delivers,
                            rule: enf.name(),
                        });
                    }
                }
            }
        }

        self.depth -= 1;
        if self.config.trace {
            self.trace.push(TraceEvent::GoalSolved {
                group,
                props,
                depth: self.depth,
                winner: best.as_ref().map(|w| w.rule),
                cost: best.as_ref().map(|w| w.total.total()),
            });
        }
        self.in_progress.remove(&key);
        // A goal solved while the deadline expired underneath it may have
        // skipped alternatives; recording it as the goal's final answer
        // would wrongly pin a partial (or absent) winner.
        if !self.stats.deadline_hit {
            self.winners.insert(key, best.clone());
        }
        best
    }

    /// Extracts the winning plan tree for a solved goal.
    pub fn extract(&self, group: GroupId, props: &M::PProps) -> Option<PlanNode<M>> {
        let key = Self::goal_key(self.memo.find(group), props);
        let w = self.winners.get(&key)?.as_ref()?;
        let children = w
            .children
            .iter()
            .map(|(cg, cp)| self.extract(*cg, cp))
            .collect::<Option<Vec<_>>>()?;
        Some(PlanNode {
            op: w.op.clone(),
            children,
            local_cost: w.local_cost,
            delivers: w.delivers.clone(),
        })
    }

    /// Full pipeline: explore, solve the root goal, extract the plan.
    pub fn run(&mut self, root: GroupId, props: M::PProps) -> Option<PlanNode<M>> {
        let t0 = Instant::now();
        self.explore_all();
        self.optimize_group(root, props.clone());
        let plan = self.extract(root, &props);
        self.stats.elapsed = t0.elapsed();
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{toy_rules, Toy, ToyOp, ToyPOp, ToySort};

    fn setup<'a>(
        model: &'a Toy,
        rules: &'a RuleSet<Toy>,
        config: SearchConfig,
    ) -> (Optimizer<'a, Toy>, GroupId) {
        let mut opt = Optimizer::new(model, rules, config);
        let a = opt.memo.insert(model, ToyOp::Table(0), vec![]).0;
        let b = opt.memo.insert(model, ToyOp::Table(1), vec![]).0;
        let c = opt.memo.insert(model, ToyOp::Table(2), vec![]).0;
        let (ab, _, _) = opt.memo.insert(model, ToyOp::Join, vec![a, b]);
        let (root, _, _) = opt.memo.insert(model, ToyOp::Join, vec![ab, c]);
        (opt, root)
    }

    #[test]
    fn exploration_reaches_fixpoint_with_all_join_orders() {
        let model = Toy::default();
        let rules = toy_rules();
        let (mut opt, root) = setup(&model, &rules, SearchConfig::default());
        opt.explore_all();
        // Three tables: the root group must contain joins pairing each
        // table with the join of the other two, in both orders: 6 exprs.
        assert_eq!(opt.memo.group_exprs(root).len(), 6);
        // Re-exploration is a no-op.
        let exprs = opt.memo.expr_count();
        opt.explore_all();
        assert_eq!(opt.memo.expr_count(), exprs);
    }

    #[test]
    fn finds_cheapest_join_order() {
        let model = Toy::default(); // cards 100, 1000, 10
        let rules = toy_rules();
        let (mut opt, root) = setup(&model, &rules, SearchConfig::default());
        let plan = opt.run(root, ToySort::default()).expect("plan");
        // Best order joins the two small tables (100 × 10) first.
        // cost(join(a,c)) = 2*10 + 100 = 120, out card = 100*10/10 = 100
        // cost(join(ac,b)) = 2*100 + 1000 = 1200
        // scans: 100 + 10 + 1000; total = 120 + 1200 + 1110 = 2430.
        assert!(
            (plan.total_cost() - 2430.0).abs() < 1e-9,
            "{}",
            plan.total_cost()
        );
    }

    #[test]
    fn goal_directed_search_uses_enforcer_only_when_needed() {
        let model = Toy::default();
        let rules = toy_rules();
        let (mut opt, root) = setup(&model, &rules, SearchConfig::default());
        let unsorted = opt.run(root, ToySort::default()).expect("plan");
        assert!(
            !matches!(unsorted.op, ToyPOp::Sort),
            "no enforcer without a sorted requirement"
        );
        let sorted = opt
            .optimize_group(root, ToySort { sorted: true })
            .expect("sorted plan");
        assert!(matches!(sorted.op, ToyPOp::Sort), "sort enforcer on top");
        let plan = opt.extract(root, &ToySort { sorted: true }).unwrap();
        // Sort cost = out card × 3 = (100·1000·10/100) × 3 = 30000 on top.
        assert!(plan.total_cost() > unsorted.total_cost());
    }

    #[test]
    fn sorted_scan_wins_for_single_indexed_table() {
        let model = Toy::default();
        let rules = toy_rules();
        let mut opt = Optimizer::new(&model, &rules, SearchConfig::default());
        let a = opt.memo.insert(&model, ToyOp::Table(0), vec![]).0;
        let plan = opt.run(a, ToySort { sorted: true }).expect("plan");
        // Index scan at 120 beats scan 100 + sort 300.
        assert!(matches!(plan.op, ToyPOp::SortedScan(0)));
        assert!((plan.total_cost() - 120.0).abs() < 1e-9);

        // Table 1 has no index: only scan + sort works.
        let b = opt.memo.insert(&model, ToyOp::Table(1), vec![]).0;
        opt.optimize_group(b, ToySort { sorted: true });
        let plan_b = opt.extract(b, &ToySort { sorted: true }).unwrap();
        assert!(matches!(plan_b.op, ToyPOp::Sort));
    }

    #[test]
    fn pruning_preserves_the_winner() {
        let model = Toy::default();
        let rules = toy_rules();
        let (mut opt1, r1) = setup(&model, &rules, SearchConfig::default());
        let exhaustive = opt1.run(r1, ToySort::default()).unwrap().total_cost();
        let (mut opt2, r2) = setup(
            &model,
            &rules,
            SearchConfig {
                prune: true,
                ..Default::default()
            },
        );
        let pruned = opt2.run(r2, ToySort::default()).unwrap().total_cost();
        assert_eq!(exhaustive, pruned);
        assert!(opt2.stats.pruned > 0, "pruning actually triggered");
    }

    #[test]
    fn winners_are_memoized_across_goals() {
        let model = Toy::default();
        let rules = toy_rules();
        let (mut opt, root) = setup(&model, &rules, SearchConfig::default());
        opt.run(root, ToySort::default());
        let goals_first = opt.stats.goals;
        // Solving the same goal again must not add work.
        opt.optimize_group(root, ToySort::default());
        assert_eq!(opt.stats.goals, goals_first);
    }

    #[test]
    fn expired_deadline_stops_the_search_without_memoizing() {
        let model = Toy::default();
        let rules = toy_rules();
        let (mut opt, root) = setup(
            &model,
            &rules,
            SearchConfig {
                deadline: Some(Instant::now()),
                ..Default::default()
            },
        );
        assert!(opt.run(root, ToySort::default()).is_none());
        assert!(opt.stats.deadline_hit);
        assert_eq!(
            opt.stats.goals, 0,
            "no goal opened past an expired deadline"
        );
        assert!(opt.winners.is_empty(), "nothing memoized past the deadline");
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let model = Toy::default();
        let rules = toy_rules();
        let (mut opt1, r1) = setup(&model, &rules, SearchConfig::default());
        let unbounded = opt1.run(r1, ToySort::default()).unwrap().total_cost();
        let (mut opt2, r2) = setup(
            &model,
            &rules,
            SearchConfig {
                deadline: Some(Instant::now() + std::time::Duration::from_secs(600)),
                ..Default::default()
            },
        );
        let bounded = opt2.run(r2, ToySort::default()).unwrap().total_cost();
        assert_eq!(unbounded, bounded);
        assert!(!opt2.stats.deadline_hit);
    }

    #[test]
    fn infeasible_goal_yields_none() {
        // A model-level impossibility: requiring sorted output from a
        // rule set without enforcers and without index scans.
        let model = Toy::default();
        let rules = RuleSet {
            transforms: vec![],
            impls: vec![Box::new(crate::toy::HashJoinImpl)],
            enforcers: vec![],
        };
        let mut opt = Optimizer::new(&model, &rules, SearchConfig::default());
        let a = opt.memo.insert(&model, ToyOp::Table(0), vec![]).0;
        assert!(opt.run(a, ToySort { sorted: true }).is_none());
    }
}
