//! Rule-dependency-graph termination analysis.
//!
//! Every transformation rule declares a [`RuleSignature`]: the operator
//! shapes it consumes and produces, and whether it is *generative* (can
//! mint arguments outside the finite closure of the query's sub-terms).
//! This module builds the directed graph with an edge `A → B` whenever a
//! shape `A` produces is one `B` consumes — i.e. a firing of `A` can
//! enable a firing of `B` — and proves the rule set terminates:
//!
//! * Non-generative cycles are safe: such rules only rearrange existing
//!   operators over existing groups, so the reachable expression space is
//!   finite and the memo's duplicate elimination cuts the cycle (join
//!   commutativity firing twice lands on an already-interned expression).
//! * A cycle containing a **generative** rule is not self-limiting: each
//!   lap can produce an expression the memo has never seen, and
//!   exploration never reaches a fixpoint. The analysis fails with a
//!   rendered [`CycleWitness`] naming the rules and connecting shapes.
//! * **Unsigned** rules ([`RuleSignature::UNSIGNED`]) fail the analysis
//!   outright: a rule nobody described cannot be reasoned about, and
//!   assuming the worst forces the discipline that keeps the proof
//!   meaningful as rules are added.

use crate::model::{OptModel, RuleSet, RuleSignature};
use std::fmt;

/// The rule-dependency graph of a rule set's transformation rules.
pub struct RuleGraph {
    /// Rule names, indexed as in the rule set.
    pub names: Vec<&'static str>,
    /// Rule signatures, same indexing.
    pub signatures: Vec<RuleSignature>,
    /// `edges[a]` lists `(b, shape)`: `a` produces `shape`, `b` consumes
    /// it.
    pub edges: Vec<Vec<(usize, &'static str)>>,
}

/// Statistics of a successful termination proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TerminationProof {
    /// Rules analyzed.
    pub rules: usize,
    /// Enablement edges in the graph.
    pub edges: usize,
    /// Rules participating in at least one (safe, non-generative) cycle.
    pub cyclic_rules: usize,
}

/// A rendered counterexample: why termination could not be proven.
#[derive(Clone, Debug)]
pub struct CycleWitness {
    /// The offending rules in firing order. For an unsigned-rule failure
    /// this is the single rule; for a generative cycle it is the cycle
    /// path, first rule repeated at the end.
    pub rules: Vec<&'static str>,
    /// The shapes connecting consecutive rules (`rules.len() - 1` of them
    /// for a cycle; empty for an unsigned-rule failure).
    pub shapes: Vec<&'static str>,
    /// One-line explanation.
    pub reason: String,
}

impl fmt::Display for CycleWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.reason)?;
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                let shape = self.shapes.get(i - 1).copied().unwrap_or("?");
                write!(f, " \u{2500}{shape}\u{2192} ")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

impl RuleGraph {
    /// Builds the dependency graph of a rule set's transforms.
    pub fn build<M: OptModel>(rules: &RuleSet<M>) -> RuleGraph {
        let names: Vec<&'static str> = rules.transforms.iter().map(|r| r.name()).collect();
        let signatures: Vec<RuleSignature> =
            rules.transforms.iter().map(|r| r.signature()).collect();
        let mut edges = vec![Vec::new(); names.len()];
        for (a, sa) in signatures.iter().enumerate() {
            for (b, sb) in signatures.iter().enumerate() {
                if let Some(shape) = sa
                    .produces
                    .iter()
                    .find(|p| sb.consumes.contains(p))
                    .copied()
                {
                    edges[a].push((b, shape));
                }
            }
        }
        RuleGraph {
            names,
            signatures,
            edges,
        }
    }

    /// Proves the rule set terminates under memo-based exploration, or
    /// returns a witness of why it might not. See the module docs for the
    /// criterion.
    pub fn prove_termination(&self) -> Result<TerminationProof, CycleWitness> {
        if let Some(i) = self.signatures.iter().position(|s| !s.is_signed()) {
            return Err(CycleWitness {
                rules: vec![self.names[i]],
                shapes: vec![],
                reason: format!(
                    "rule '{}' declares no signature (consumes/produces unknown, assumed generative)",
                    self.names[i]
                ),
            });
        }
        let n = self.names.len();
        let mut cyclic = vec![false; n];
        for start in 0..n {
            if let Some((path, shapes)) = self.cycle_through(start) {
                for &r in &path {
                    cyclic[r] = true;
                }
                if path.iter().any(|&r| self.signatures[r].generative) {
                    let mut rules: Vec<&'static str> =
                        path.iter().map(|&r| self.names[r]).collect();
                    rules.push(self.names[path[0]]);
                    return Err(CycleWitness {
                        rules,
                        shapes,
                        reason: "generative rule inside a rewrite cycle the memo cannot cut"
                            .to_string(),
                    });
                }
            }
        }
        Ok(TerminationProof {
            rules: n,
            edges: self.edges.iter().map(Vec::len).sum(),
            cyclic_rules: cyclic.iter().filter(|&&c| c).count(),
        })
    }

    /// The shortest cycle through `start` (BFS over enablement edges),
    /// as (rule path, connecting shapes). `None` if no cycle passes
    /// through `start`.
    fn cycle_through(&self, start: usize) -> Option<(Vec<usize>, Vec<&'static str>)> {
        // BFS from each successor of `start` back to `start`.
        let mut parent: Vec<Option<(usize, &'static str)>> = vec![None; self.names.len()];
        let mut queue = std::collections::VecDeque::new();
        for &(b, shape) in &self.edges[start] {
            if b == start {
                return Some((vec![start], vec![shape]));
            }
            if parent[b].is_none() {
                parent[b] = Some((start, shape));
                queue.push_back(b);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &(v, shape) in &self.edges[u] {
                if v == start {
                    // Reconstruct start → ... → u, then close with u → start.
                    let mut path = vec![u];
                    let mut shapes = vec![shape];
                    let mut cur = u;
                    while let Some((p, s)) = parent[cur] {
                        shapes.push(s);
                        if p == start {
                            break;
                        }
                        path.push(p);
                        cur = p;
                    }
                    path.push(start);
                    path.reverse();
                    shapes.reverse();
                    return Some((path, shapes));
                }
                if v != start && parent[v].is_none() {
                    parent[v] = Some((u, shape));
                    queue.push_back(v);
                }
            }
        }
        None
    }
}

/// Convenience: build the graph and prove termination in one call.
pub fn prove_termination<M: OptModel>(
    rules: &RuleSet<M>,
) -> Result<TerminationProof, CycleWitness> {
    RuleGraph::build(rules).prove_termination()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::{Expr, Memo, Rewrite};
    use crate::model::TransformRule;
    use crate::toy::{toy_rules, Toy, ToyOp};

    #[test]
    fn toy_rule_set_terminates() {
        let rules = toy_rules();
        let proof = prove_termination(&rules).expect("toy rules terminate");
        assert_eq!(proof.rules, 2);
        // commute/assoc feed each other and themselves: 4 edges, all in
        // safe non-generative cycles.
        assert_eq!(proof.edges, 4);
        assert_eq!(proof.cyclic_rules, 2);
    }

    /// A rule that claims to mint fresh join predicates forever.
    struct Inflate;
    impl TransformRule<Toy> for Inflate {
        fn name(&self) -> &'static str {
            "inflate"
        }
        fn apply(&self, _m: &Toy, _memo: &Memo<Toy>, _e: &Expr<Toy>) -> Vec<Rewrite<ToyOp>> {
            vec![]
        }
        fn signature(&self) -> crate::model::RuleSignature {
            crate::model::RuleSignature {
                consumes: &["Join"],
                produces: &["Join"],
                generative: true,
            }
        }
    }

    #[test]
    fn generative_cycle_is_rejected_with_witness() {
        let mut rules = toy_rules();
        rules.transforms.push(Box::new(Inflate));
        let w = prove_termination(&rules).expect_err("generative cycle");
        assert!(w.rules.contains(&"inflate"), "{w}");
        let rendered = w.to_string();
        assert!(
            rendered.contains("inflate") && rendered.contains("Join"),
            "witness must name rules and shapes: {rendered}"
        );
        // The witness closes the loop: first and last rule agree.
        assert_eq!(w.rules.first(), w.rules.last());
    }

    /// Generative but acyclic: fires once, cannot re-enable itself.
    struct OneShot;
    impl TransformRule<Toy> for OneShot {
        fn name(&self) -> &'static str {
            "one-shot"
        }
        fn apply(&self, _m: &Toy, _memo: &Memo<Toy>, _e: &Expr<Toy>) -> Vec<Rewrite<ToyOp>> {
            vec![]
        }
        fn signature(&self) -> crate::model::RuleSignature {
            crate::model::RuleSignature {
                consumes: &["Select"],
                produces: &["IndexScanShape"],
                generative: true,
            }
        }
    }

    #[test]
    fn generative_rule_outside_cycles_is_fine() {
        let mut rules = toy_rules();
        rules.transforms.push(Box::new(OneShot));
        let proof = prove_termination(&rules).expect("acyclic generative rule is safe");
        assert_eq!(proof.rules, 3);
    }

    struct Anonymous;
    impl TransformRule<Toy> for Anonymous {
        fn name(&self) -> &'static str {
            "anonymous"
        }
        fn apply(&self, _m: &Toy, _memo: &Memo<Toy>, _e: &Expr<Toy>) -> Vec<Rewrite<ToyOp>> {
            vec![]
        }
        // No signature override: UNSIGNED.
    }

    #[test]
    fn unsigned_rule_fails_the_proof() {
        let mut rules = toy_rules();
        rules.transforms.push(Box::new(Anonymous));
        let w = prove_termination(&rules).expect_err("unsigned rules are rejected");
        assert_eq!(w.rules, vec!["anonymous"]);
        assert!(w.to_string().contains("no signature"), "{w}");
    }

    #[test]
    fn self_loop_witness_renders() {
        let rules: crate::model::RuleSet<Toy> = crate::model::RuleSet {
            transforms: vec![Box::new(Inflate)],
            impls: vec![],
            enforcers: vec![],
        };
        let w = prove_termination(&rules).expect_err("self-loop");
        assert_eq!(w.rules, vec!["inflate", "inflate"]);
        assert_eq!(w.shapes, vec!["Join"]);
    }
}
