//! Exhaustive plan-space enumeration — the search oracle.
//!
//! [`Optimizer::optimize_group`] memoizes one winner per goal; nothing in
//! that path proves the winner is actually the cheapest member of the plan
//! space the memo encodes. This module walks the *same* candidate
//! generation (implementation rules filtered by property satisfaction,
//! plus enforcers) but keeps **every** feasible plan instead of the
//! cheapest, by cartesian-producting child plan sets. On small queries —
//! enumeration is exponential by nature, so [`EnumLimits`] bounds the memo
//! size and the plan count — the result is an independent oracle: the
//! winner must be cost-minimal over the enumerated set, and every
//! enumerated plan must execute to the same bytes.
//!
//! Goals are *not* memoized across the walk: a goal reached through
//! different enforcer stacks can legitimately enumerate different plan
//! sets (the cycle guard cuts different recursions), and reusing one
//! goal's set for the other would silently drop plans. The limits keep
//! the repeated work affordable.

use crate::memo::GroupId;
use crate::model::{CostValue, OptModel, RuleSet};
use crate::search::{Optimizer, PlanNode};

/// Bounds on the enumeration. Exceeding any of them stops the walk and
/// marks the result [`Enumeration::truncated`] — an oracle that silently
/// covered only part of the space would be worse than none.
#[derive(Clone, Copy, Debug)]
pub struct EnumLimits {
    /// Maximum memo groups for the walk to start at all.
    pub max_groups: usize,
    /// Maximum memo expressions for the walk to start at all.
    pub max_exprs: usize,
    /// Maximum plan nodes constructed across the whole walk.
    pub max_plans: usize,
}

impl Default for EnumLimits {
    fn default() -> Self {
        EnumLimits {
            max_groups: 256,
            max_exprs: 2048,
            max_plans: 200_000,
        }
    }
}

/// The enumerated plan space for one goal.
pub struct Enumeration<M: OptModel> {
    /// Every feasible physical plan delivering the goal's properties.
    pub plans: Vec<PlanNode<M>>,
    /// True when a limit cut the walk short: `plans` is then a prefix of
    /// the space, and oracle assertions against it prove nothing.
    pub truncated: bool,
}

impl<M: OptModel> Enumeration<M> {
    /// The cheapest total cost over the enumerated plans.
    pub fn min_cost(&self) -> Option<f64> {
        self.plans
            .iter()
            .map(|p| p.total_cost().total())
            .min_by(f64::total_cmp)
    }
}

/// Walk state shared across the recursion.
struct EnumState {
    limits: EnumLimits,
    nodes_built: usize,
    truncated: bool,
}

impl EnumState {
    /// Accounts for one constructed plan node; false once over budget.
    fn charge(&mut self) -> bool {
        if self.nodes_built >= self.limits.max_plans {
            self.truncated = true;
            return false;
        }
        self.nodes_built += 1;
        true
    }
}

impl<M: OptModel> Optimizer<'_, M> {
    /// Exhaustively enumerates every physical plan for `group` that
    /// delivers `props`, over the memo as currently explored (callers run
    /// [`Optimizer::explore_all`] first so the logical space is at
    /// fixpoint). Candidate generation mirrors
    /// [`Optimizer::optimize_group`] exactly — same implementation rules,
    /// same property filter, same enforcer handling — so the enumerated
    /// set is precisely the space the search chose its winner from.
    pub fn enumerate_all(&mut self, group: GroupId, props: M::PProps) -> Enumeration<M> {
        self.enumerate_bounded(group, props, EnumLimits::default())
    }

    /// [`Optimizer::enumerate_all`] with explicit limits.
    pub fn enumerate_bounded(
        &mut self,
        group: GroupId,
        props: M::PProps,
        limits: EnumLimits,
    ) -> Enumeration<M> {
        let mut state = EnumState {
            limits,
            nodes_built: 0,
            truncated: false,
        };
        if self.memo.group_count() > limits.max_groups || self.memo.expr_count() > limits.max_exprs
        {
            return Enumeration {
                plans: Vec::new(),
                truncated: true,
            };
        }
        let mut stack = Vec::new();
        let plans = self.enum_goal(group, props, &mut stack, &mut state);
        Enumeration {
            plans,
            truncated: state.truncated,
        }
    }

    /// All plans for one goal. `stack` holds the open goal keys: a goal
    /// that recursively requires itself contributes no *finite* plan
    /// through that recursion, so revisits return the empty set — the
    /// enumeration analog of the search's `in_progress` cycle guard.
    fn enum_goal(
        &mut self,
        group: GroupId,
        props: M::PProps,
        stack: &mut Vec<(GroupId, u64)>,
        state: &mut EnumState,
    ) -> Vec<PlanNode<M>> {
        let group = self.memo.find(group);
        let key = Self::goal_key(group, &props);
        if stack.contains(&key) {
            return Vec::new();
        }
        stack.push(key);
        let mut plans: Vec<PlanNode<M>> = Vec::new();

        let rules: &RuleSet<M> = self.rules();
        for e in self.memo.group_exprs(group) {
            for rule in &rules.impls {
                let cands = {
                    let expr = self.memo.expr(e);
                    rule.implementations(self.model(), &self.memo, expr, &props)
                };
                for cand in cands {
                    if !self.model().satisfies(&props, &cand.delivers) {
                        continue;
                    }
                    debug_assert_eq!(cand.children.len(), cand.input_props.len());
                    // Child plan sets; any empty set kills the candidate.
                    let mut child_sets: Vec<Vec<PlanNode<M>>> =
                        Vec::with_capacity(cand.children.len());
                    let mut feasible = true;
                    for (cg, cp) in cand.children.iter().zip(&cand.input_props) {
                        let set = self.enum_goal(*cg, cp.clone(), stack, state);
                        if set.is_empty() {
                            feasible = false;
                            break;
                        }
                        child_sets.push(set);
                    }
                    if !feasible || state.truncated {
                        if state.truncated {
                            stack.pop();
                            return plans;
                        }
                        continue;
                    }
                    // Cartesian product over child alternatives.
                    let mut idx = vec![0usize; child_sets.len()];
                    loop {
                        if !state.charge() {
                            stack.pop();
                            return plans;
                        }
                        plans.push(PlanNode {
                            op: cand.op.clone(),
                            children: idx
                                .iter()
                                .zip(&child_sets)
                                .map(|(&i, set)| set[i].clone())
                                .collect(),
                            local_cost: cand.cost,
                            delivers: cand.delivers.clone(),
                        });
                        // Odometer increment; done when it wraps around.
                        let mut done = true;
                        for (i, set) in idx.iter_mut().zip(&child_sets) {
                            *i += 1;
                            if *i < set.len() {
                                done = false;
                                break;
                            }
                            *i = 0;
                        }
                        if done {
                            break;
                        }
                    }
                }
            }
        }

        // Enforcers: every plan for the weaker goal, wrapped.
        for enf in &rules.enforcers {
            let cands = enf.enforce(self.model(), &self.memo, group, &props);
            for ec in cands {
                if ec.input_props == props {
                    continue; // no progress: the search skips these too
                }
                if !self.model().satisfies(&props, &ec.delivers) {
                    continue;
                }
                let inner = self.enum_goal(group, ec.input_props.clone(), stack, state);
                for p in inner {
                    if !state.charge() {
                        stack.pop();
                        return plans;
                    }
                    plans.push(PlanNode {
                        op: ec.op.clone(),
                        children: vec![p],
                        local_cost: ec.cost,
                        delivers: ec.delivers.clone(),
                    });
                }
            }
        }

        stack.pop();
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::SearchConfig;
    use crate::toy::{toy_rules, Toy, ToyOp, ToySort};

    fn three_table_setup<'a>(
        model: &'a Toy,
        rules: &'a RuleSet<Toy>,
    ) -> (Optimizer<'a, Toy>, GroupId) {
        let mut opt = Optimizer::new(model, rules, SearchConfig::default());
        let a = opt.memo.insert(model, ToyOp::Table(0), vec![]).0;
        let b = opt.memo.insert(model, ToyOp::Table(1), vec![]).0;
        let c = opt.memo.insert(model, ToyOp::Table(2), vec![]).0;
        let (ab, _, _) = opt.memo.insert(model, ToyOp::Join, vec![a, b]);
        let (root, _, _) = opt.memo.insert(model, ToyOp::Join, vec![ab, c]);
        (opt, root)
    }

    #[test]
    fn enumeration_covers_the_space_and_contains_the_winner() {
        let model = Toy::default();
        let rules = toy_rules();
        let (mut opt, root) = three_table_setup(&model, &rules);
        let winner = opt.run(root, ToySort::default()).expect("winner");
        let en = opt.enumerate_all(root, ToySort::default());
        assert!(!en.truncated);
        // Root group: 6 join exprs (each table against the join of the
        // other two, both orders). Table 0 satisfies an unsorted goal two
        // ways (heap scan + index scan) and appears once per plan; the
        // inner pair adds another 2× for its own operand orders:
        // 6 × 2 × 2 = 24 complete plans.
        assert_eq!(en.plans.len(), 24, "3-table join space");
        let min = en.min_cost().expect("non-empty space");
        let w = winner.total_cost().total();
        assert!(
            (w - min).abs() <= 1e-9 * min.max(1.0),
            "winner {w} must be minimal over the space (min {min})"
        );
        // And strictly: no enumerated plan beats the winner.
        assert!(en.plans.iter().all(|p| p.total_cost().total() >= w - 1e-9));
    }

    #[test]
    fn enforced_goals_enumerate_wrapped_plans() {
        let model = Toy::default();
        let rules = toy_rules();
        let (mut opt, root) = three_table_setup(&model, &rules);
        opt.explore_all();
        let en = opt.enumerate_all(root, ToySort { sorted: true });
        assert!(!en.truncated);
        // Every unsorted plan appears once wrapped in the sort enforcer
        // (the toy model has no sorted join, so no other source exists).
        assert_eq!(en.plans.len(), 24);
        let sorted_winner = opt
            .optimize_group(root, ToySort { sorted: true })
            .expect("sorted winner");
        let min = en.min_cost().unwrap();
        assert!((sorted_winner.total.total() - min).abs() <= 1e-9 * min.max(1.0));
    }

    #[test]
    fn plan_budget_truncates_explicitly() {
        let model = Toy::default();
        let rules = toy_rules();
        let (mut opt, root) = three_table_setup(&model, &rules);
        opt.explore_all();
        let en = opt.enumerate_bounded(
            root,
            ToySort::default(),
            EnumLimits {
                max_plans: 3,
                ..Default::default()
            },
        );
        assert!(en.truncated, "cut walks must say so");
        assert!(en.plans.len() <= 3);
    }

    #[test]
    fn oversized_memo_refuses_to_enumerate() {
        let model = Toy::default();
        let rules = toy_rules();
        let (mut opt, root) = three_table_setup(&model, &rules);
        opt.explore_all();
        let en = opt.enumerate_bounded(
            root,
            ToySort::default(),
            EnumLimits {
                max_groups: 1,
                ..Default::default()
            },
        );
        assert!(en.truncated);
        assert!(en.plans.is_empty());
    }
}
