//! The model-description traits: what a DBMS implementor supplies.
//!
//! This is the Rust analogue of Volcano's model description file plus
//! support functions. An [`OptModel`] defines the vocabularies (logical and
//! physical operators), the property types, the cost type, and the property
//! derivation function; [`TransformRule`]s, [`ImplRule`]s, and
//! [`Enforcer`]s populate a [`RuleSet`].

use crate::memo::{Expr, GroupId, Memo, Rewrite};
use std::fmt;
use std::hash::Hash;

/// A cost that can be accumulated and compared. Comparison is by scalar
/// [`CostValue::total`], which keeps richer breakdowns (I/O vs CPU)
/// available to the implementor while the search engine stays generic.
pub trait CostValue: Copy + fmt::Debug {
    /// The zero cost.
    fn zero() -> Self;
    /// Component-wise accumulation.
    fn add(self, other: Self) -> Self;
    /// Scalar magnitude used for plan comparison (e.g. seconds).
    fn total(self) -> f64;
}

impl CostValue for f64 {
    fn zero() -> Self {
        0.0
    }
    fn add(self, other: Self) -> Self {
        self + other
    }
    fn total(self) -> f64 {
        self
    }
}

/// The model description: operator vocabularies, properties, costs.
pub trait OptModel: Sized {
    /// Logical operator type. Equality/hashing define expression identity
    /// for memo deduplication, so operators must carry interned arguments.
    type LOp: Clone + Eq + Hash + fmt::Debug;
    /// Physical operator (execution algorithm / enforcer) type.
    type POp: Clone + fmt::Debug;
    /// Logical properties (schema/scope, cardinality, ...), derived
    /// bottom-up per group.
    type LProps: Clone + fmt::Debug;
    /// Physical property vector (sort order, presence in memory, ...).
    /// Used as part of the search-goal key.
    type PProps: Clone + Eq + Hash + fmt::Debug;
    /// Cost type.
    type Cost: CostValue;

    /// Derives the logical properties of an expression from its operator
    /// and input properties ("property derivation functions that
    /// encapsulate schema manipulation, statistical descriptions of
    /// intermediate results, and selectivity estimation").
    fn derive_props(&self, op: &Self::LOp, inputs: &[&Self::LProps]) -> Self::LProps;

    /// Whether a delivered property vector satisfies a required one.
    fn satisfies(&self, required: &Self::PProps, delivered: &Self::PProps) -> bool;
}

/// Static metadata describing a transformation rule's rewrite shape, used
/// by [`crate::rulegraph`] to prove the rule set terminates. The shapes
/// are operator *tags* (display-level names like `"Join"`), not full
/// patterns: what matters for termination is which rules can feed which,
/// not the exact bindings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleSignature {
    /// Operator tags at the root of patterns this rule matches.
    pub consumes: &'static [&'static str],
    /// Operator tags at the root of expressions this rule can produce.
    pub produces: &'static [&'static str],
    /// Whether a firing can introduce arguments (predicates, operator
    /// parameters) outside the finite closure of the query's existing
    /// sub-terms. Non-generative rules only rearrange existing material,
    /// so the memo's duplicate elimination bounds any rewrite cycle they
    /// form; a *generative* rule inside a produce/consume cycle can mint
    /// fresh expressions forever.
    pub generative: bool,
}

impl RuleSignature {
    /// The signature of a rule that declared none: unknown shapes, assumed
    /// generative. Rule-graph analysis treats this as a failure — every
    /// rule must describe itself before termination can be proven.
    pub const UNSIGNED: RuleSignature = RuleSignature {
        consumes: &[],
        produces: &[],
        generative: true,
    };

    /// Whether the rule declared any shape information.
    pub fn is_signed(&self) -> bool {
        !self.consumes.is_empty() || !self.produces.is_empty()
    }
}

/// A logical-to-logical transformation rule.
///
/// Rules receive one expression plus read access to the memo, so
/// multi-level patterns (join associativity, select-past-mat) match by
/// enumerating the child groups' expressions. The engine re-fires a rule on
/// an expression whenever the child groups have grown, so exhaustive
/// exploration reaches a fixpoint.
pub trait TransformRule<M: OptModel> {
    /// Rule name (display, configuration, statistics).
    fn name(&self) -> &'static str;
    /// Applies the rule, returning zero or more equivalent expressions as
    /// [`Rewrite`] templates over existing groups.
    fn apply(&self, model: &M, memo: &Memo<M>, expr: &Expr<M>) -> Vec<Rewrite<M::LOp>>;
    /// Static rewrite-shape metadata for rule-graph termination analysis.
    /// The default is [`RuleSignature::UNSIGNED`], which that analysis
    /// rejects — implementors are expected to describe every rule.
    fn signature(&self) -> RuleSignature {
        RuleSignature::UNSIGNED
    }
}

/// One physical alternative produced by an implementation rule.
#[derive(Clone, Debug)]
pub struct Candidate<M: OptModel> {
    /// The algorithm.
    pub op: M::POp,
    /// Input groups to optimize (usually the expression's children, but a
    /// collapsing rule — e.g. select-materialize-get to index scan — may
    /// produce none).
    pub children: Vec<GroupId>,
    /// Required physical properties per input.
    pub input_props: Vec<M::PProps>,
    /// Local cost of this operator (inputs excluded).
    pub cost: M::Cost,
    /// Physical properties the operator delivers, assuming inputs deliver
    /// exactly their required properties.
    pub delivers: M::PProps,
}

/// A logical-to-physical implementation rule: "the implementation rules
/// establish the correspondence between logical algebra expressions and
/// execution algorithms."
pub trait ImplRule<M: OptModel> {
    /// Rule name.
    fn name(&self) -> &'static str;
    /// Proposes algorithms for `expr` under `required` properties. Return
    /// an empty vector when the rule cannot deliver them (e.g. an index
    /// scan cannot deliver referenced components in memory).
    fn implementations(
        &self,
        model: &M,
        memo: &Memo<M>,
        expr: &Expr<M>,
        required: &M::PProps,
    ) -> Vec<Candidate<M>>;
}

/// An enforcer candidate: a physical operator layered on the *same* group
/// optimized under weaker required properties.
#[derive(Clone, Debug)]
pub struct EnforceCandidate<M: OptModel> {
    /// The enforcer algorithm.
    pub op: M::POp,
    /// The weakened requirement passed to the input (must differ from the
    /// original requirement, or the search would not terminate).
    pub input_props: M::PProps,
    /// Local cost of enforcement.
    pub cost: M::Cost,
    /// Properties delivered after enforcement.
    pub delivers: M::PProps,
}

/// A physical-property enforcer (sort, assembly-into-memory, ...).
pub trait Enforcer<M: OptModel> {
    /// Enforcer name.
    fn name(&self) -> &'static str;
    /// Proposes enforcement alternatives for a group under `required`.
    fn enforce(
        &self,
        model: &M,
        memo: &Memo<M>,
        group: GroupId,
        required: &M::PProps,
    ) -> Vec<EnforceCandidate<M>>;
}

/// The complete rule set of a generated optimizer.
pub struct RuleSet<M: OptModel> {
    /// Transformation rules.
    pub transforms: Vec<Box<dyn TransformRule<M>>>,
    /// Implementation rules.
    pub impls: Vec<Box<dyn ImplRule<M>>>,
    /// Property enforcers.
    pub enforcers: Vec<Box<dyn Enforcer<M>>>,
}

impl<M: OptModel> Default for RuleSet<M> {
    fn default() -> Self {
        RuleSet {
            transforms: Vec::new(),
            impls: Vec::new(),
            enforcers: Vec::new(),
        }
    }
}

impl<M: OptModel> RuleSet<M> {
    /// An empty rule set.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_is_a_cost() {
        let c = <f64 as CostValue>::zero().add(1.5).add(2.0);
        assert_eq!(c.total(), 3.5);
    }
}
