//! Property-based tests for the memo and search engine, using the toy
//! model: structural invariants under randomized insertion, equivalence
//! merging across arbitrary initial join shapes, and winner optimality
//! verified against brute-force enumeration.

use proptest::prelude::*;
use volcano::toy::{toy_rules, Toy, ToyOp, ToyPOp, ToySort};
use volcano::{GroupId, Memo, Optimizer, SearchConfig};

/// A random binary join tree over tables `0..n`, encoded as a shape pick.
#[derive(Clone, Debug)]
enum Tree {
    Leaf(u32),
    Join(Box<Tree>, Box<Tree>),
}

fn tree_over(tables: Vec<u32>) -> BoxedStrategy<Tree> {
    if tables.len() == 1 {
        return Just(Tree::Leaf(tables[0])).boxed();
    }
    // Split point + recursive shapes.
    (1..tables.len())
        .prop_flat_map(move |split| {
            let (l, r) = (tables[..split].to_vec(), tables[split..].to_vec());
            (tree_over(l), tree_over(r)).prop_map(|(a, b)| Tree::Join(Box::new(a), Box::new(b)))
        })
        .boxed()
}

fn seed_tree(memo: &mut Memo<Toy>, model: &Toy, t: &Tree) -> GroupId {
    match t {
        Tree::Leaf(i) => memo.insert(model, ToyOp::Table(*i), vec![]).0,
        Tree::Join(a, b) => {
            let l = seed_tree(memo, model, a);
            let r = seed_tree(memo, model, b);
            memo.insert(model, ToyOp::Join, vec![l, r]).0
        }
    }
}

/// Brute-force optimal cost for joining a set of tables under the toy
/// cost model (scan = card; hash join = 2·min + max of input cards;
/// join output card = product / 10).
fn brute_force(model: &Toy, tables: &[u32]) -> (f64, f64) {
    // Returns (card, best cost) for the table set.
    if tables.len() == 1 {
        let c = model.cards[tables[0] as usize];
        return (c, c);
    }
    let mut best = f64::INFINITY;
    let mut card_out = 0.0;
    // All splits into two non-empty subsets (by bitmask).
    let n = tables.len();
    for mask in 1..(1u32 << n) - 1 {
        let (mut l, mut r) = (vec![], vec![]);
        for (i, &t) in tables.iter().enumerate() {
            if mask & (1 << i) != 0 {
                l.push(t);
            } else {
                r.push(t);
            }
        }
        let (lc, lcost) = brute_force(model, &l);
        let (rc, rcost) = brute_force(model, &r);
        let join_cost = 2.0 * lc.min(rc) + lc.max(rc);
        card_out = lc * rc / 10.0;
        best = best.min(lcost + rcost + join_cost);
    }
    (card_out, best)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any two initial join shapes over the same tables merge into ONE
    /// group under exhaustive commutativity + associativity: the memo
    /// discovers the equivalence class.
    #[test]
    fn equivalent_shapes_merge(
        shape_a in tree_over(vec![0, 1, 2, 3]),
        shape_b in tree_over(vec![0, 1, 2, 3]),
    ) {
        let model = Toy::default();
        let rules = toy_rules();
        let mut opt = Optimizer::new(&model, &rules, SearchConfig::default());
        let ga = seed_tree(&mut opt.memo, &model, &shape_a);
        let gb = seed_tree(&mut opt.memo, &model, &shape_b);
        opt.explore_all();
        prop_assert_eq!(
            opt.memo.find(ga),
            opt.memo.find(gb),
            "shapes {:?} and {:?} must prove equivalent",
            shape_a,
            shape_b
        );
    }

    /// Memo structural invariants hold after exploration from any shape:
    /// no duplicate (op, children) pair among live expressions; every live
    /// expression's children are representatives.
    #[test]
    fn memo_invariants_after_exploration(shape in tree_over(vec![0, 1, 2])) {
        let model = Toy::default();
        let rules = toy_rules();
        let mut opt = Optimizer::new(&model, &rules, SearchConfig::default());
        let _ = seed_tree(&mut opt.memo, &model, &shape);
        opt.explore_all();
        let memo = &opt.memo;
        let mut seen = std::collections::HashSet::new();
        for e in memo.live_exprs() {
            let expr = memo.expr(e);
            let norm: Vec<GroupId> = expr.children.iter().map(|&c| memo.find(c)).collect();
            prop_assert!(
                seen.insert((expr.op.clone(), norm.clone())),
                "duplicate live expression {:?} {:?}",
                expr.op,
                norm
            );
            for &c in &expr.children {
                prop_assert_eq!(memo.find(memo.find(c)), memo.find(c));
            }
        }
    }

    /// The search engine's winner equals brute-force enumeration over all
    /// join orders, from any starting shape and any table sizes.
    #[test]
    fn winner_matches_brute_force(
        shape in tree_over(vec![0, 1, 2, 3]),
        cards in proptest::collection::vec(1.0f64..10_000.0, 4),
    ) {
        let model = Toy { cards };
        let rules = toy_rules();
        let mut opt = Optimizer::new(&model, &rules, SearchConfig::default());
        let root = seed_tree(&mut opt.memo, &model, &shape);
        let plan = opt.run(root, ToySort::default()).expect("plan");
        let (_, best) = brute_force(&model, &[0, 1, 2, 3]);
        prop_assert!(
            (plan.total_cost() - best).abs() < 1e-6,
            "engine {} vs brute force {}",
            plan.total_cost(),
            best
        );
    }

    /// Requiring sortedness never makes the plan cheaper, and the sorted
    /// winner is either a sort on top or a sorted scan.
    #[test]
    fn sorted_goal_costs_at_least_unsorted(shape in tree_over(vec![0, 1, 2])) {
        let model = Toy::default();
        let rules = toy_rules();
        let mut opt = Optimizer::new(&model, &rules, SearchConfig::default());
        let root = seed_tree(&mut opt.memo, &model, &shape);
        let unsorted = opt.run(root, ToySort::default()).expect("plan");
        opt.optimize_group(root, ToySort { sorted: true });
        let sorted = opt
            .extract(root, &ToySort { sorted: true })
            .expect("sorted plan");
        prop_assert!(sorted.total_cost() >= unsorted.total_cost());
        prop_assert!(matches!(sorted.op, ToyPOp::Sort | ToyPOp::SortedScan(_)));
    }
}
