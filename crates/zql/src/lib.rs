//! # `zql` — a ZQL[C++]-flavored query language front end
//!
//! The paper's user language is ZQL[C++], "an SQL-based object query
//! language designed to be well-integrated with C++": SELECT/FROM/WHERE
//! over type extents and user-defined collections, path expressions with
//! method-call syntax (`e.dept().name()`), OID equality on object-valued
//! expressions, abstract data types (`Date`), and existentially quantified
//! nested subqueries.
//!
//! This crate implements:
//!
//! * a lexer and recursive-descent parser ([`parser::parse`]) for the
//!   conjunctive fragment the paper's simplification covers ("arbitrary
//!   conjunctive Boolean expressions with existentially quantified nested
//!   subqueries, but no aggregates");
//! * a type checker against an [`oodb_object::Schema`];
//! * **query simplification** ([`simplify::simplify`]): the translation
//!   from the rich user algebra into the optimizer's simple-argument
//!   algebra — every path-expression link becomes a `Mat` operator,
//!   set-valued paths become `Unnest` + `Mat`, multi-collection FROM
//!   clauses become joins, and EXISTS subqueries are unnested. "This
//!   translation ... is very straightforward because there is no need for
//!   optimality."
//!
//! ```
//! use oodb_object::paper::paper_model;
//! let m = paper_model();
//! let q = zql::compile(
//!     "SELECT c FROM City c IN Cities WHERE c.mayor().name() == \"Joe\"",
//!     &m.schema,
//!     &m.catalog,
//! ).unwrap();
//! let text = oodb_algebra::display::render_logical(&q.env, &q.plan);
//! assert!(text.contains("Mat c.mayor"));
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod simplify;

pub use ast::{AstBinding, AstExpr, AstQuery, AstSource};
pub use lexer::{Lexer, Token};
pub use simplify::{simplify, SimplifiedQuery};

/// A front-end error with a source position.
#[derive(Clone, Debug, PartialEq)]
pub struct ZqlError {
    /// Human-readable message.
    pub msg: String,
    /// Byte offset into the source, when known.
    pub pos: Option<usize>,
}

impl ZqlError {
    pub(crate) fn new(msg: impl Into<String>, pos: Option<usize>) -> Self {
        ZqlError {
            msg: msg.into(),
            pos,
        }
    }
}

impl std::fmt::Display for ZqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pos {
            Some(p) => write!(f, "ZQL error at byte {p}: {}", self.msg),
            None => write!(f, "ZQL error: {}", self.msg),
        }
    }
}

impl std::error::Error for ZqlError {}

/// Parses and simplifies a ZQL query in one step.
pub fn compile(
    src: &str,
    schema: &oodb_object::Schema,
    catalog: &oodb_object::Catalog,
) -> Result<SimplifiedQuery, ZqlError> {
    let ast = parser::parse(src)?;
    simplify::simplify(&ast, schema, catalog)
}
