//! Recursive-descent parser for the ZQL fragment.

use crate::ast::{AstBinding, AstCmp, AstExpr, AstLit, AstQuery, AstSource};
use crate::lexer::{Lexer, Spanned, Token};
use crate::ZqlError;

/// Parses a ZQL query.
pub fn parse(src: &str) -> Result<AstQuery, ZqlError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, i: 0 };
    let q = p.query()?;
    p.eat_if(&Token::Semi);
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.i].tok
    }

    fn pos(&self) -> usize {
        self.tokens[self.i].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.i].tok.clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        t
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), ZqlError> {
        if !self.eat_if(t) {
            return Err(ZqlError::new(
                format!("expected {what}, found {:?}", self.peek()),
                Some(self.pos()),
            ));
        }
        Ok(())
    }

    fn expect_eof(&self) -> Result<(), ZqlError> {
        if *self.peek() != Token::Eof {
            return Err(ZqlError::new(
                format!("trailing input: {:?}", self.peek()),
                Some(self.pos()),
            ));
        }
        Ok(())
    }

    /// Case-insensitive keyword check.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ZqlError> {
        if !self.eat_kw(kw) {
            return Err(ZqlError::new(
                format!("expected {kw}, found {:?}", self.peek()),
                Some(self.pos()),
            ));
        }
        Ok(())
    }

    fn ident(&mut self, what: &str) -> Result<String, ZqlError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(ZqlError::new(
                format!("expected {what}, found {other:?}"),
                Some(self.pos()),
            )),
        }
    }

    fn query(&mut self) -> Result<AstQuery, ZqlError> {
        self.expect_kw("SELECT")?;
        let (select, new_object) = self.select_list()?;
        self.expect_kw("FROM")?;
        let mut from = vec![self.binding()?];
        while self.eat_if(&Token::Comma) {
            from.push(self.binding()?);
        }
        let where_ = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let base = self.ident("order-by path")?;
            let mut steps = Vec::new();
            while self.eat_if(&Token::Dot) {
                steps.push(self.ident("path step")?);
                if self.eat_if(&Token::LParen) {
                    self.expect(&Token::RParen, "')'")?;
                }
            }
            if steps.is_empty() {
                return Err(ZqlError::new(
                    "ORDER BY needs an attribute path (e.g. c.population())",
                    Some(self.pos()),
                ));
            }
            Some((base, steps))
        } else {
            None
        };
        Ok(AstQuery {
            select,
            new_object,
            from,
            where_,
            order_by,
        })
    }

    fn select_list(&mut self) -> Result<(Vec<AstExpr>, bool), ZqlError> {
        if self.eat_kw("Newobject") {
            self.expect(&Token::LParen, "'('")?;
            let mut items = vec![self.expr()?];
            while self.eat_if(&Token::Comma) {
                items.push(self.expr()?);
            }
            self.expect(&Token::RParen, "')'")?;
            return Ok((items, true));
        }
        let mut items = vec![self.expr()?];
        while self.peek() == &Token::Comma {
            // Lookahead: a comma might start the next SELECT item or be a
            // syntax error before FROM; the grammar keeps it simple —
            // commas always continue the list.
            self.bump();
            items.push(self.expr()?);
        }
        Ok((items, false))
    }

    fn binding(&mut self) -> Result<AstBinding, ZqlError> {
        // Either `Type var IN source` or `var IN source`.
        let first = self.ident("range variable or type")?;
        let (ty, var) = if self.at_kw("IN") {
            (None, first)
        } else {
            (Some(first), self.ident("range variable")?)
        };
        self.expect_kw("IN")?;
        // Source: identifier, optionally followed by a path.
        let base = self.ident("collection or path")?;
        let mut steps = Vec::new();
        while self.eat_if(&Token::Dot) {
            steps.push(self.ident("path step")?);
            if self.eat_if(&Token::LParen) {
                self.expect(&Token::RParen, "')'")?;
            }
        }
        let source = if steps.is_empty() {
            AstSource::Collection(base)
        } else {
            AstSource::Path { base, steps }
        };
        Ok(AstBinding { ty, var, source })
    }

    fn expr(&mut self) -> Result<AstExpr, ZqlError> {
        let mut left = self.cmp()?;
        while self.eat_if(&Token::AndAnd) {
            let right = self.cmp()?;
            left = AstExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cmp(&mut self) -> Result<AstExpr, ZqlError> {
        let left = self.primary()?;
        let op = match self.peek() {
            Token::EqEq => AstCmp::Eq,
            Token::Ne => AstCmp::Ne,
            Token::Lt => AstCmp::Lt,
            Token::Le => AstCmp::Le,
            Token::Gt => AstCmp::Gt,
            Token::Ge => AstCmp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.primary()?;
        Ok(AstExpr::Cmp {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn primary(&mut self) -> Result<AstExpr, ZqlError> {
        // EXISTS ( subquery )
        if self.at_kw("EXISTS") {
            self.bump();
            self.expect(&Token::LParen, "'('")?;
            let q = self.query()?;
            self.expect(&Token::RParen, "')'")?;
            return Ok(AstExpr::Exists(Box::new(q)));
        }
        // Date(y, m, d)
        if self.at_kw("Date") {
            self.bump();
            self.expect(&Token::LParen, "'('")?;
            let y = self.int_lit()?;
            self.expect(&Token::Comma, "','")?;
            let m = self.int_lit()?;
            self.expect(&Token::Comma, "','")?;
            let d = self.int_lit()?;
            self.expect(&Token::RParen, "')'")?;
            return Ok(AstExpr::Lit(AstLit::Date(y as i32, m as u32, d as u32)));
        }
        if self.at_kw("true") {
            self.bump();
            return Ok(AstExpr::Lit(AstLit::Bool(true)));
        }
        if self.at_kw("false") {
            self.bump();
            return Ok(AstExpr::Lit(AstLit::Bool(false)));
        }
        match self.peek().clone() {
            Token::Int(v) => {
                self.bump();
                Ok(AstExpr::Lit(AstLit::Int(v)))
            }
            Token::Float(v) => {
                self.bump();
                Ok(AstExpr::Lit(AstLit::Float(v)))
            }
            Token::Str(s) => {
                self.bump();
                Ok(AstExpr::Lit(AstLit::Str(s)))
            }
            Token::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(e)
            }
            Token::Ident(base) => {
                self.bump();
                let mut steps = Vec::new();
                while self.eat_if(&Token::Dot) {
                    steps.push(self.ident("path step")?);
                    if self.eat_if(&Token::LParen) {
                        self.expect(&Token::RParen, "')'")?;
                    }
                }
                Ok(AstExpr::Path { base, steps })
            }
            other => Err(ZqlError::new(
                format!("expected expression, found {other:?}"),
                Some(self.pos()),
            )),
        }
    }

    fn int_lit(&mut self) -> Result<i64, ZqlError> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.bump();
                Ok(v)
            }
            other => Err(ZqlError::new(
                format!("expected integer, found {other:?}"),
                Some(self.pos()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_query() {
        // The paper's Figure 1 query (with the Date ADT inlined).
        let q = parse(
            r#"SELECT Newobject( e.name(), d.name() )
               FROM Employee e IN Employees, Department d IN Departments
               WHERE d.floor() == 3 && e.age() >= 32
                 && e.last_raise() >= Date(1992, 1, 1)
                 && e.department() == d ;"#,
        )
        .unwrap();
        assert!(q.new_object);
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].ty.as_deref(), Some("Employee"));
        assert_eq!(q.from[1].var, "d");
        let conj = q.where_.as_ref().unwrap().conjuncts().len();
        assert_eq!(conj, 4);
    }

    #[test]
    fn parses_query2() {
        let q = parse(r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#).unwrap();
        assert!(!q.new_object);
        assert_eq!(
            q.select[0],
            AstExpr::Path {
                base: "c".into(),
                steps: vec![]
            }
        );
        match q.where_.unwrap() {
            AstExpr::Cmp { left, op, .. } => {
                assert_eq!(op, AstCmp::Eq);
                assert_eq!(
                    *left,
                    AstExpr::Path {
                        base: "c".into(),
                        steps: vec!["mayor".into(), "name".into()]
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_exists_subquery() {
        let q = parse(
            r#"SELECT t FROM Task t IN Tasks
               WHERE t.time() == 100
                 && EXISTS (SELECT m FROM m IN t.team_members() WHERE m.name() == "Fred")"#,
        )
        .unwrap();
        let conj = q.where_.as_ref().unwrap().conjuncts().len();
        assert_eq!(conj, 2);
        let exists = q.where_.as_ref().unwrap().conjuncts()[1].clone();
        match exists {
            AstExpr::Exists(sub) => {
                assert_eq!(
                    sub.from[0].source,
                    AstSource::Path {
                        base: "t".into(),
                        steps: vec!["team_members".into()]
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn method_parens_optional() {
        let a = parse("SELECT c FROM c IN Cities WHERE c.mayor.name == \"x\"").unwrap();
        let b = parse("SELECT c FROM c IN Cities WHERE c.mayor().name() == \"x\"").unwrap();
        assert_eq!(a.where_, b.where_);
    }

    #[test]
    fn parses_order_by() {
        let q = parse("SELECT c FROM c IN Cities ORDER BY c.population()").unwrap();
        assert_eq!(
            q.order_by,
            Some(("c".to_string(), vec!["population".to_string()]))
        );
        // Bare variable is rejected: ORDER BY needs an attribute.
        assert!(parse("SELECT c FROM c IN Cities ORDER BY c").is_err());
        // ORDER BY follows WHERE.
        let q = parse("SELECT c FROM c IN Cities WHERE c.population() >= 10 ORDER BY c.name()")
            .unwrap();
        assert!(q.where_.is_some());
        assert!(q.order_by.is_some());
    }

    #[test]
    fn reports_errors_with_position() {
        let err = parse("SELECT c FROM").unwrap_err();
        assert!(err.pos.is_some());
        assert!(parse("FROM x IN Y").is_err());
        assert!(parse("SELECT c FROM c IN Cities WHERE c.name() = 3").is_err());
    }
}
