//! Tokenizer for the ZQL fragment.

use crate::ZqlError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are matched case-insensitively by
    /// the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (double-quoted).
    Str(String),
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `&&`
    AndAnd,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// End of input.
    Eof,
}

/// A token plus its byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// Byte offset of the token start.
    pub pos: usize,
}

/// The lexer.
pub struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
}

impl<'s> Lexer<'s> {
    /// Creates a lexer over source text.
    pub fn new(src: &'s str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenizes the whole input.
    pub fn tokenize(mut self) -> Result<Vec<Spanned>, ZqlError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t.tok == Token::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn next_token(&mut self) -> Result<Spanned, ZqlError> {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
        let start = self.pos;
        let Some(b) = self.peek() else {
            return Ok(Spanned {
                tok: Token::Eof,
                pos: start,
            });
        };
        let tok = match b {
            b'(' => {
                self.pos += 1;
                Token::LParen
            }
            b')' => {
                self.pos += 1;
                Token::RParen
            }
            b',' => {
                self.pos += 1;
                Token::Comma
            }
            b'.' => {
                self.pos += 1;
                Token::Dot
            }
            b';' => {
                self.pos += 1;
                Token::Semi
            }
            b'=' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Token::EqEq
                } else {
                    return Err(ZqlError::new("expected '=='", Some(start)));
                }
            }
            b'!' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Token::Ne
                } else {
                    return Err(ZqlError::new(
                        "'!' (negation) is outside the conjunctive fragment",
                        Some(start),
                    ));
                }
            }
            b'<' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Token::Le
                } else {
                    self.pos += 1;
                    Token::Lt
                }
            }
            b'>' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Token::Ge
                } else {
                    self.pos += 1;
                    Token::Gt
                }
            }
            b'&' => {
                if self.src.get(self.pos + 1) == Some(&b'&') {
                    self.pos += 2;
                    Token::AndAnd
                } else {
                    return Err(ZqlError::new("expected '&&'", Some(start)));
                }
            }
            b'|' => {
                return Err(ZqlError::new(
                    "'||' (disjunction) is outside the conjunctive fragment \
                     the paper's simplification covers",
                    Some(start),
                ));
            }
            b'"' => {
                self.pos += 1;
                let s0 = self.pos;
                while matches!(self.peek(), Some(c) if c != b'"') {
                    self.pos += 1;
                }
                if self.peek().is_none() {
                    return Err(ZqlError::new("unterminated string", Some(start)));
                }
                let s = std::str::from_utf8(&self.src[s0..self.pos])
                    .map_err(|_| ZqlError::new("invalid utf-8 in string", Some(start)))?
                    .to_string();
                self.pos += 1; // closing quote
                Token::Str(s)
            }
            b'0'..=b'9' | b'-' => {
                let mut end = self.pos + 1;
                let mut is_float = false;
                while let Some(&c) = self.src.get(end) {
                    if c.is_ascii_digit() {
                        end += 1;
                    } else if c == b'.' && self.src.get(end + 1).is_some_and(u8::is_ascii_digit) {
                        // A dot is a float point only when followed by a
                        // digit — `100.foo` stays Int + Dot + Ident.
                        is_float = true;
                        end += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[self.pos..end]).unwrap();
                self.pos = end;
                if is_float {
                    Token::Float(
                        text.parse()
                            .map_err(|_| ZqlError::new("bad float literal", Some(start)))?,
                    )
                } else {
                    Token::Int(
                        text.parse()
                            .map_err(|_| ZqlError::new("bad integer literal", Some(start)))?,
                    )
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut end = self.pos + 1;
                while matches!(self.src.get(end), Some(&c) if c.is_ascii_alphanumeric() || c == b'_')
                {
                    end += 1;
                }
                let text = std::str::from_utf8(&self.src[self.pos..end])
                    .unwrap()
                    .to_string();
                self.pos = end;
                Token::Ident(text)
            }
            other => {
                return Err(ZqlError::new(
                    format!("unexpected character {:?}", other as char),
                    Some(start),
                ));
            }
        };
        Ok(Spanned { tok, pos: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|s| s.tok)
            .collect()
    }

    #[test]
    fn lexes_query_tokens() {
        let ts = toks(r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe";"#);
        assert!(ts.contains(&Token::Ident("SELECT".into())));
        assert!(ts.contains(&Token::Str("Joe".into())));
        assert!(ts.contains(&Token::EqEq));
        assert_eq!(*ts.last().unwrap(), Token::Eof);
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks("a >= 32 && b <= 5 != <"),
            vec![
                Token::Ident("a".into()),
                Token::Ge,
                Token::Int(32),
                Token::AndAnd,
                Token::Ident("b".into()),
                Token::Le,
                Token::Int(5),
                Token::Ne,
                Token::Lt,
                Token::Eof
            ]
        );
    }

    #[test]
    fn int_dot_ident_is_not_a_float() {
        assert_eq!(
            toks("100.foo"),
            vec![
                Token::Int(100),
                Token::Dot,
                Token::Ident("foo".into()),
                Token::Eof
            ]
        );
        assert_eq!(toks("1.5"), vec![Token::Float(1.5), Token::Eof]);
    }

    #[test]
    fn rejects_disjunction_with_position() {
        let err = Lexer::new("a || b").tokenize().unwrap_err();
        assert!(err.msg.contains("disjunction"));
        assert_eq!(err.pos, Some(2));
    }

    #[test]
    fn negative_integers() {
        assert_eq!(toks("-42"), vec![Token::Int(-42), Token::Eof]);
    }
}
