//! Abstract syntax of the ZQL fragment.

/// A comparison operator as written.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AstCmp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A literal value.
#[derive(Clone, Debug, PartialEq)]
pub enum AstLit {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// `Date(y, m, d)` ADT constructor.
    Date(i32, u32, u32),
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum AstExpr {
    /// Literal.
    Lit(AstLit),
    /// A path expression `base.step1().step2()` (empty steps = bare
    /// variable). Method-call parentheses are optional and ignored.
    Path {
        /// Range-variable name.
        base: String,
        /// Field steps.
        steps: Vec<String>,
    },
    /// Comparison.
    Cmp {
        /// Left operand.
        left: Box<AstExpr>,
        /// Operator.
        op: AstCmp,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// Conjunction.
    And(Box<AstExpr>, Box<AstExpr>),
    /// Existentially quantified subquery.
    Exists(Box<AstQuery>),
}

/// A FROM source.
#[derive(Clone, Debug, PartialEq)]
pub enum AstSource {
    /// A named collection (`Employees`, `extent(Job)` by name).
    Collection(String),
    /// A set-valued path (`t.team_members()`) — only valid in subqueries.
    Path {
        /// Range-variable of the outer scope.
        base: String,
        /// Field steps ending in a set-valued field.
        steps: Vec<String>,
    },
}

/// One FROM binding: `Employee e IN Employees` or `m IN t.team_members()`.
#[derive(Clone, Debug, PartialEq)]
pub struct AstBinding {
    /// Optional declared element type (checked against the collection).
    pub ty: Option<String>,
    /// Range-variable name.
    pub var: String,
    /// The source.
    pub source: AstSource,
}

/// A query (or subquery).
#[derive(Clone, Debug, PartialEq)]
pub struct AstQuery {
    /// SELECT items.
    pub select: Vec<AstExpr>,
    /// Whether the select list was wrapped in `Newobject(...)` (object
    /// construction with new identity).
    pub new_object: bool,
    /// FROM bindings.
    pub from: Vec<AstBinding>,
    /// WHERE condition.
    pub where_: Option<AstExpr>,
    /// ORDER BY path (ascending), if any — the sort-order extension.
    pub order_by: Option<(String, Vec<String>)>,
}

impl AstExpr {
    /// Flattens nested conjunctions into a list.
    pub fn conjuncts(&self) -> Vec<&AstExpr> {
        match self {
            AstExpr::And(a, b) => {
                let mut v = a.conjuncts();
                v.extend(b.conjuncts());
                v
            }
            other => vec![other],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_flattening() {
        let leaf = |n: &str| AstExpr::Path {
            base: n.into(),
            steps: vec![],
        };
        let e = AstExpr::And(
            Box::new(AstExpr::And(Box::new(leaf("a")), Box::new(leaf("b")))),
            Box::new(leaf("c")),
        );
        assert_eq!(e.conjuncts().len(), 3);
    }
}
