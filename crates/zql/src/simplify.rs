//! Query simplification: the user algebra → the optimizer input algebra.
//!
//! "The Open OODB query processing model uses a query simplification stage
//! to transform ZQL[C++] parse trees into an equivalent algebraic operator
//! graph with simple arguments suitable as input to the Open OODB
//! optimizer."
//!
//! What happens here, per the paper:
//!
//! * every link of a single-valued path expression becomes a `Mat`
//!   operator (Figure 2); repeated sub-paths share one variable —
//!   common-subexpression factorization at the source level;
//! * set-valued paths (only reachable through EXISTS subqueries) become
//!   `Unnest` followed by a dereferencing `Mat` (Figure 3);
//! * multi-collection FROM clauses become joins, using the WHERE
//!   conjuncts that span them as join predicates;
//! * everything else lands in one `Select` whose conjunction the
//!   optimizer's select-split rule takes apart;
//! * a `Newobject(...)`/expression select list becomes a `Project`.
//!
//! "This translation ... is very straightforward because there is no need
//! for optimality and therefore for choices in this translation."

use crate::ast::{AstCmp, AstExpr, AstLit, AstQuery, AstSource};
use crate::ZqlError;
use oodb_algebra::{
    CmpOp, LogicalOp, LogicalPlan, Operand, Pred, QueryEnv, Term, VarId, VarOrigin, VarSet,
};
use oodb_object::{Catalog, CollectionId, Date, FieldId, FieldKind, Schema, Value};
use std::collections::HashMap;

/// The simplified query: optimizer-ready.
#[derive(Debug)]
pub struct SimplifiedQuery {
    /// Shared context (scopes, interned predicates).
    pub env: QueryEnv,
    /// The simple-argument logical algebra expression.
    pub plan: LogicalPlan,
    /// Result variables the plan must deliver in memory (empty when a
    /// projection constructs the result).
    pub result_vars: VarSet,
    /// Whether the root is a projection.
    pub projected: bool,
    /// Requested result order (ORDER BY), if any.
    pub order: Option<oodb_algebra::SortSpec>,
}

/// Simplifies a parsed query against a schema and catalog.
pub fn simplify(
    q: &AstQuery,
    schema: &Schema,
    catalog: &Catalog,
) -> Result<SimplifiedQuery, ZqlError> {
    let s = Simplifier {
        env: QueryEnv::new(schema.clone(), catalog.clone()),
        vars: HashMap::new(),
        mats: HashMap::new(),
        chain: Vec::new(),
    };
    s.run(q)
}

struct Simplifier {
    env: QueryEnv,
    /// Range-variable name → scope variable.
    vars: HashMap<String, VarId>,
    /// `(source var, optional field)` → materialized variable (CSE).
    mats: HashMap<(VarId, Option<FieldId>), VarId>,
    /// `Mat`/`Unnest` operators in creation (dependency) order.
    chain: Vec<LogicalOp>,
}

impl Simplifier {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ZqlError> {
        Err(ZqlError::new(msg, None))
    }

    fn run(mut self, q: &AstQuery) -> Result<SimplifiedQuery, ZqlError> {
        // FROM bindings: top level must scan collections/extents.
        let mut gets: Vec<(CollectionId, VarId)> = Vec::new();
        for b in &q.from {
            let AstSource::Collection(name) = &b.source else {
                return self.err(
                    "a set-valued path can only range an EXISTS subquery, \
                     not a top-level FROM",
                );
            };
            let coll = self.resolve_collection(name)?;
            let elem = self.env.catalog.collection(coll).elem_type;
            if let Some(tyname) = &b.ty {
                let declared = self
                    .env
                    .schema
                    .type_by_name(tyname)
                    .ok_or_else(|| ZqlError::new(format!("unknown type {tyname:?}"), None))?;
                if !self.env.schema.is_subtype(elem, declared) {
                    return self.err(format!(
                        "collection {name:?} holds {:?}, not {tyname:?}",
                        self.env.schema.ty(elem).name
                    ));
                }
            }
            if self.vars.contains_key(&b.var) {
                return self.err(format!("duplicate range variable {:?}", b.var));
            }
            let v = self.env.scopes.add(&b.var, elem, VarOrigin::Get(coll));
            self.vars.insert(b.var.clone(), v);
            gets.push((coll, v));
        }

        // WHERE: flatten conjuncts (EXISTS expands in place).
        let mut terms: Vec<Term> = Vec::new();
        if let Some(w) = &q.where_ {
            self.conjuncts_into(w, &mut terms)?;
        }

        // SELECT: bare variables or a projection list.
        let mut result_vars = VarSet::EMPTY;
        let mut items: Vec<Operand> = Vec::new();
        let mut all_bare = !q.new_object;
        for item in &q.select {
            match item {
                AstExpr::Path { base, steps } if steps.is_empty() && !q.new_object => {
                    let v = self.lookup_var(base)?;
                    result_vars = result_vars.insert(v);
                    items.push(Operand::VarOid(v));
                }
                other => {
                    all_bare = false;
                    items.push(self.operand(other)?);
                }
            }
        }

        // Build the join tree over the Gets.
        let mut used = vec![false; terms.len()];
        let (first_coll, first_var) = gets[0];
        let mut plan = LogicalPlan::leaf(LogicalOp::Get {
            coll: first_coll,
            var: first_var,
        });
        let mut in_tree = VarSet::single(first_var);
        for &(coll, v) in &gets[1..] {
            let next = LogicalPlan::leaf(LogicalOp::Get { coll, var: v });
            let candidate_vars = in_tree.insert(v);
            let mut join_term: Option<usize> = None;
            for (i, t) in terms.iter().enumerate() {
                if used[i] || t.op != CmpOp::Eq {
                    continue;
                }
                let tv = term_vars(t);
                if tv.contains(v) && tv.is_subset(candidate_vars) && tv.len() >= 2 {
                    join_term = Some(i);
                    break;
                }
            }
            let Some(i) = join_term else {
                return self.err(format!(
                    "no join condition connects range variable {:?}; \
                     cross products are not supported",
                    self.env.scopes.var(v).name
                ));
            };
            used[i] = true;
            let pred = self.env.preds.intern(Pred::term(terms[i].clone()));
            plan = LogicalPlan::binary(LogicalOp::Join { pred }, plan, next);
            in_tree = candidate_vars;
        }

        // Materializations and unnests, in dependency order.
        for op in std::mem::take(&mut self.chain) {
            plan = LogicalPlan::unary(op, plan);
        }

        // Residual selection.
        let residual: Vec<Term> = terms
            .into_iter()
            .zip(used)
            .filter(|(_, u)| !u)
            .map(|(t, _)| t)
            .collect();
        if !residual.is_empty() {
            let pred = self.env.preds.intern(Pred { terms: residual });
            plan = LogicalPlan::unary(LogicalOp::Select { pred }, plan);
        }

        // ORDER BY: resolve the path to (variable, attribute),
        // materializing links on the way; the Mat ops join the chain
        // below, before the plan is assembled.
        let order = match &q.order_by {
            None => None,
            Some((base, steps)) => {
                let op = self.operand(&AstExpr::Path {
                    base: base.clone(),
                    steps: steps.clone(),
                })?;
                let Operand::Attr { var, field } = op else {
                    return self.err("ORDER BY must end in an attribute");
                };
                Some(oodb_algebra::SortSpec { var, field })
            }
        };

        // ORDER BY may have materialized new components after the chain
        // was drained above; append them.
        for op in std::mem::take(&mut self.chain) {
            plan = LogicalPlan::unary(op, plan);
        }

        // Projection.
        let projected = !all_bare;
        if projected {
            plan = LogicalPlan::unary(LogicalOp::Project { items }, plan);
            result_vars = VarSet::EMPTY;
        }

        Ok(SimplifiedQuery {
            env: self.env,
            plan,
            result_vars,
            projected,
            order,
        })
    }

    fn resolve_collection(&self, name: &str) -> Result<CollectionId, ZqlError> {
        if let Some(c) = self.env.catalog.collection_by_name(name) {
            return Ok(c);
        }
        // Querying a type extent by type name ("queries on type extents").
        if let Some(ty) = self.env.schema.type_by_name(name) {
            if let Some(c) = self.env.catalog.extent_of(ty) {
                return Ok(c);
            }
            return Err(ZqlError::new(
                format!("type {name:?} has no extent to scan"),
                None,
            ));
        }
        Err(ZqlError::new(format!("unknown collection {name:?}"), None))
    }

    fn lookup_var(&self, name: &str) -> Result<VarId, ZqlError> {
        self.vars
            .get(name)
            .copied()
            .ok_or_else(|| ZqlError::new(format!("unknown range variable {name:?}"), None))
    }

    /// Gets or creates the `Mat` variable for `src.field` (or the
    /// dereference of `src` when `field` is `None`).
    fn mat_var(&mut self, src: VarId, field: Option<FieldId>) -> VarId {
        if let Some(&v) = self.mats.get(&(src, field)) {
            return v;
        }
        let (name, ty) = match field {
            Some(f) => {
                let fd = self.env.schema.field(f);
                (
                    format!("{}.{}", self.env.scopes.var(src).name, fd.name),
                    fd.kind.target().expect("mat over reference"),
                )
            }
            None => {
                let sv = self.env.scopes.var(src);
                (
                    format!(
                        "{}.{}",
                        sv.name,
                        self.env.schema.ty(sv.ty).name.to_lowercase()
                    ),
                    sv.ty,
                )
            }
        };
        let v = self
            .env
            .scopes
            .add_labeled(&name, &name, ty, VarOrigin::Mat { src, field });
        self.mats.insert((src, field), v);
        self.chain.push(LogicalOp::Mat { out: v });
        v
    }

    /// Ensures a variable denotes objects (dereferencing Unnest outputs).
    fn deref_if_needed(&mut self, v: VarId) -> VarId {
        if self.env.scopes.var(v).is_ref() {
            self.mat_var(v, None)
        } else {
            v
        }
    }

    fn conjuncts_into(&mut self, e: &AstExpr, out: &mut Vec<Term>) -> Result<(), ZqlError> {
        match e {
            AstExpr::And(a, b) => {
                self.conjuncts_into(a, out)?;
                self.conjuncts_into(b, out)
            }
            AstExpr::Cmp { left, op, right } => {
                let l = self.operand(left)?;
                let r = self.operand(right)?;
                self.check_comparable(&l, &r)?;
                out.push(Term {
                    left: l,
                    op: cmp_op(*op),
                    right: r,
                });
                Ok(())
            }
            AstExpr::Exists(sub) => self.expand_exists(sub, out),
            AstExpr::Path { .. } | AstExpr::Lit(_) => self.err(
                "bare boolean expressions are not supported; \
                 write an explicit comparison",
            ),
        }
    }

    /// EXISTS (SELECT ... FROM v IN path WHERE ...) — unnested in place:
    /// the set-valued path becomes `Unnest`, attribute access on the new
    /// variable goes through a dereferencing `Mat`, and the inner
    /// condition joins the outer conjunction (Figure 3 / Query 4).
    fn expand_exists(&mut self, sub: &AstQuery, out: &mut Vec<Term>) -> Result<(), ZqlError> {
        for b in &sub.from {
            let AstSource::Path { base, steps } = &b.source else {
                return self.err(
                    "EXISTS subqueries must range over a set-valued path \
                     of an outer variable",
                );
            };
            let mut cur = self.lookup_var(base)?;
            let (last, links) = steps.split_last().expect("path has steps");
            for step in links {
                cur = self.deref_if_needed(cur);
                let f = self.field_on(cur, step)?;
                match self.env.schema.field(f).kind {
                    FieldKind::Ref(_) => cur = self.mat_var(cur, Some(f)),
                    _ => {
                        return self.err(format!(
                            "path step {step:?} must be a single-valued reference"
                        ))
                    }
                }
            }
            cur = self.deref_if_needed(cur);
            let f = self.field_on(cur, last)?;
            let FieldKind::RefSet(target) = self.env.schema.field(f).kind else {
                return self.err(format!(
                    "EXISTS must range over a set-valued field; {last:?} is not"
                ));
            };
            if self.vars.contains_key(&b.var) {
                return self.err(format!("duplicate range variable {:?}", b.var));
            }
            let label = format!("{}.{}", self.env.scopes.var(cur).name, last);
            let v = self.env.scopes.add_labeled(
                &b.var,
                &label,
                target,
                VarOrigin::Unnest { src: cur, field: f },
            );
            self.vars.insert(b.var.clone(), v);
            self.chain.push(LogicalOp::Unnest { out: v });
        }
        if let Some(w) = &sub.where_ {
            self.conjuncts_into(w, out)?;
        }
        Ok(())
    }

    fn field_on(&self, var: VarId, name: &str) -> Result<FieldId, ZqlError> {
        let ty = self.env.scopes.var(var).ty;
        self.env.schema.field_by_name(ty, name).ok_or_else(|| {
            ZqlError::new(
                format!(
                    "type {:?} has no field {name:?}",
                    self.env.schema.ty(ty).name
                ),
                None,
            )
        })
    }

    /// Translates an expression into a simple operand, materializing path
    /// links along the way.
    fn operand(&mut self, e: &AstExpr) -> Result<Operand, ZqlError> {
        match e {
            AstExpr::Lit(l) => Ok(Operand::Const(lit_value(l))),
            AstExpr::Path { base, steps } => {
                let mut cur = self.lookup_var(base)?;
                if steps.is_empty() {
                    return Ok(if self.env.scopes.var(cur).is_ref() {
                        Operand::VarRef(cur)
                    } else {
                        Operand::VarOid(cur)
                    });
                }
                let (last, links) = steps.split_last().expect("non-empty");
                for step in links {
                    cur = self.deref_if_needed(cur);
                    let f = self.field_on(cur, step)?;
                    match self.env.schema.field(f).kind {
                        FieldKind::Ref(_) => cur = self.mat_var(cur, Some(f)),
                        FieldKind::RefSet(_) => {
                            return self
                                .err(format!("set-valued field {step:?} in a path; use EXISTS"))
                        }
                        FieldKind::Attr(_) => {
                            return self
                                .err(format!("attribute {step:?} cannot be dereferenced further"))
                        }
                    }
                }
                cur = self.deref_if_needed(cur);
                let f = self.field_on(cur, last)?;
                match self.env.schema.field(f).kind {
                    FieldKind::Attr(_) => Ok(Operand::Attr { var: cur, field: f }),
                    FieldKind::Ref(_) => Ok(Operand::RefField { var: cur, field: f }),
                    FieldKind::RefSet(_) => self.err(format!(
                        "set-valued field {last:?} cannot be compared; use EXISTS"
                    )),
                }
            }
            AstExpr::Cmp { .. } | AstExpr::And(..) | AstExpr::Exists(_) => {
                self.err("nested boolean expressions cannot be operands")
            }
        }
    }

    /// Light type checking of a comparison.
    fn check_comparable(&self, l: &Operand, r: &Operand) -> Result<(), ZqlError> {
        use oodb_object::AttrType;
        let kind = |o: &Operand| -> Option<AttrType> {
            match o {
                Operand::Attr { field, .. } => match self.env.schema.field(*field).kind {
                    FieldKind::Attr(a) => Some(a),
                    _ => None,
                },
                Operand::Const(v) => match v {
                    Value::Int(_) => Some(AttrType::Int),
                    Value::Float(_) => Some(AttrType::Float),
                    Value::Str(_) => Some(AttrType::Str),
                    Value::Bool(_) => Some(AttrType::Bool),
                    Value::Date(_) => Some(AttrType::Date),
                    _ => None,
                },
                _ => None, // object-valued: identity comparison
            }
        };
        let obj = |o: &Operand| {
            matches!(
                o,
                Operand::VarOid(_) | Operand::VarRef(_) | Operand::RefField { .. }
            )
        };
        match (kind(l), kind(r)) {
            (Some(a), Some(b)) => {
                let numeric = |t: AttrType| matches!(t, AttrType::Int | AttrType::Float);
                if a == b || (numeric(a) && numeric(b)) {
                    Ok(())
                } else {
                    self.err(format!("incomparable attribute types {a:?} and {b:?}"))
                }
            }
            (None, None) if obj(l) && obj(r) => Ok(()),
            _ => self.err("cannot compare an object with a value"),
        }
    }
}

fn cmp_op(op: AstCmp) -> CmpOp {
    match op {
        AstCmp::Eq => CmpOp::Eq,
        AstCmp::Ne => CmpOp::Ne,
        AstCmp::Lt => CmpOp::Lt,
        AstCmp::Le => CmpOp::Le,
        AstCmp::Gt => CmpOp::Gt,
        AstCmp::Ge => CmpOp::Ge,
    }
}

fn lit_value(l: &AstLit) -> Value {
    match l {
        AstLit::Int(i) => Value::Int(*i),
        AstLit::Float(f) => Value::Float(*f),
        AstLit::Str(s) => Value::str(s),
        AstLit::Bool(b) => Value::Bool(*b),
        AstLit::Date(y, m, d) => Value::Date(Date::from_ymd(*y, *m, *d)),
    }
}

fn term_vars(t: &Term) -> VarSet {
    VarSet::from_iter([t.left.var(), t.right.var()].into_iter().flatten())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use oodb_algebra::display::render_logical;
    use oodb_object::paper::paper_model;

    fn compile(src: &str) -> Result<SimplifiedQuery, ZqlError> {
        let m = paper_model();
        simplify(&parse(src)?, &m.schema, &m.catalog)
    }

    #[test]
    fn query2_simplifies_to_figure8() {
        let q =
            compile(r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#).unwrap();
        let text = render_logical(&q.env, &q.plan);
        assert_eq!(
            text,
            "Select c.mayor.name == \"Joe\"\n|\nMat c.mayor\n|\nGet Cities: c\n"
        );
        assert!(!q.projected);
        assert_eq!(q.result_vars.len(), 1);
    }

    #[test]
    fn query1_simplifies_to_figure5_shape() {
        let q = compile(
            r#"SELECT Newobject(e.name(), e.job().name(), e.dept().name())
               FROM Employee e IN Employees
               WHERE e.dept().plant().location() == "Dallas""#,
        )
        .unwrap();
        let text = render_logical(&q.env, &q.plan);
        assert!(
            text.contains("Project e.name, e.job.name, e.dept.name"),
            "{text}"
        );
        assert!(
            text.contains("Select e.dept.plant.location == \"Dallas\""),
            "{text}"
        );
        assert!(text.contains("Mat e.dept.plant"), "{text}");
        assert!(text.contains("Mat e.dept\n"), "{text}");
        assert!(text.contains("Mat e.job"), "{text}");
        assert!(text.contains("Get Employees: e"), "{text}");
        assert!(q.projected);
    }

    #[test]
    fn common_path_prefix_is_shared() {
        // e.dept().name() and e.dept().floor() must share one Mat.
        let q = compile(
            r#"SELECT e FROM Employee e IN Employees
               WHERE e.dept().floor() == 3 && e.dept().name() == "toys""#,
        )
        .unwrap();
        let mats = q
            .plan
            .iter_ops()
            .into_iter()
            .filter(|op| matches!(op, LogicalOp::Mat { .. }))
            .count();
        assert_eq!(mats, 1, "shared prefix must materialize once");
    }

    #[test]
    fn multi_from_becomes_join() {
        let q = compile(
            r#"SELECT Newobject(e.name(), d.name())
               FROM Employee e IN Employees, Department d IN Department
               WHERE d.floor() == 3 && e.age() >= 32 && e.dept() == d"#,
        )
        .unwrap();
        let text = render_logical(&q.env, &q.plan);
        assert!(text.contains("Join e.dept == d.self"), "{text}");
        assert!(text.contains("Get Employees: e"), "{text}");
        assert!(text.contains("Get extent(Department): d"), "{text}");
        // Join condition consumed; the two attribute conditions remain.
        assert!(
            text.contains("Select d.floor == 3 and e.age >= 32"),
            "{text}"
        );
    }

    #[test]
    fn exists_subquery_unnests_like_figure3() {
        let q = compile(
            r#"SELECT t FROM Task t IN Tasks
               WHERE t.time() == 100
                 && EXISTS (SELECT m FROM m IN t.team_members()
                            WHERE m.name() == "Fred")"#,
        )
        .unwrap();
        let text = render_logical(&q.env, &q.plan);
        assert!(text.contains("Unnest t.team_members: m"), "{text}");
        assert!(text.contains("Mat m.employee"), "{text}");
        assert!(text.contains("Get Tasks: t"), "{text}");
        assert!(
            text.contains("Select t.time == 100 and m.employee.name == \"Fred\""),
            "{text}"
        );
    }

    #[test]
    fn date_adt_comparison() {
        let q = compile(
            r#"SELECT e FROM Employee e IN Employees
               WHERE e.last_raise() >= Date(1992, 1, 1)"#,
        )
        .unwrap();
        let text = render_logical(&q.env, &q.plan);
        assert!(text.contains("Select e.last_raise >= 1992-01-01"), "{text}");
    }

    #[test]
    fn error_cases() {
        // Unknown collection.
        assert!(compile("SELECT x FROM x IN Nowhere").is_err());
        // Unknown field.
        assert!(compile("SELECT c FROM c IN Cities WHERE c.nonexistent() == 1").is_err());
        // Type mismatch: string attribute vs integer.
        assert!(compile(r#"SELECT c FROM c IN Cities WHERE c.name() == 1"#).is_err());
        // Object vs value.
        assert!(compile(r#"SELECT c FROM c IN Cities WHERE c.mayor() == 1"#).is_err());
        // Set-valued path outside EXISTS.
        assert!(
            compile(r#"SELECT t FROM t IN Tasks WHERE t.team_members().name() == "x""#).is_err()
        );
        // Cross product.
        assert!(compile("SELECT c FROM c IN Cities, t IN Tasks WHERE t.time() == 1").is_err());
        // Declared type mismatch.
        assert!(compile("SELECT c FROM Task c IN Cities").is_err());
    }

    #[test]
    fn order_by_resolves_to_sort_spec() {
        let m = paper_model();
        // Ordering through a path materializes the link.
        let q = compile("SELECT c FROM City c IN Cities ORDER BY c.mayor().age()").unwrap();
        let spec = q.order.expect("order resolved");
        assert_eq!(m.ids.person_age, spec.field);
        assert!(
            q.plan
                .iter_ops()
                .iter()
                .any(|op| matches!(op, LogicalOp::Mat { .. })),
            "mayor link must be materialized for the ordering attribute"
        );
        // Ordering by a reference field is an error.
        assert!(compile("SELECT c FROM c IN Cities ORDER BY c.mayor()").is_err());
    }

    #[test]
    fn extent_scan_by_type_name() {
        let q = compile("SELECT j FROM j IN Job WHERE j.pay_grade() >= 10").unwrap();
        let text = render_logical(&q.env, &q.plan);
        assert!(text.contains("Get extent(Job): j"), "{text}");
    }
}
