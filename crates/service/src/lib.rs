//! # `oodb-service` — a concurrent query service over the optimizer
//!
//! The ROADMAP's north star is a system serving heavy query traffic, yet
//! everything below this crate is per-query and single-threaded: each ZQL
//! string pays full parse → simplify → Volcano search → execute. This
//! crate adds the serving layer:
//!
//! * [`QueryService`] owns a shared [`Store`] snapshot, the current
//!   [`OptimizerConfig`], and a sharded [`PlanCache`]; [`QueryService::submit`]
//!   compiles, fingerprints, and either reuses a cached plan or optimizes
//!   and caches the winner.
//! * [`WorkerPool`] serves `submit` from N `std::thread` workers feeding
//!   off one queue — the optimizer is `&self` and the executor borrows
//!   `&Store`, so scaling out is `Arc`-ification, not a rewrite.
//! * Statistics and physical-design changes go through the service
//!   ([`QueryService::refresh_statistics`], [`QueryService::restrict_indexes`]),
//!   which swap in a new store snapshot whose catalog carries a bumped
//!   `stats_epoch` — cached plans go stale *by key*, never by cache walk.
//!
//! In-flight queries keep executing against the snapshot they started
//! with (the `Arc<Store>` they cloned); new submissions see the new
//! snapshot and miss the cache. Cached entries carry the `QueryEnv` they
//! were optimized under, so interned `PredId`/`VarId` values never leak
//! across parses.

#![forbid(unsafe_code)]

use oodb_algebra::fingerprint::{fingerprint, QueryFingerprint};
use oodb_algebra::{LogicalPlan, QueryEnv, SortSpec, VarSet};
use oodb_core::plancache::{CacheKey, CachedBody, CachedPlan, PlanCache};
use oodb_core::{
    compile_dynamic, BoundedOutcome, CostParams, FeedbackEntry, FeedbackStats, FeedbackStore,
    Observation, OpenOodb, OptimizerConfig,
};
use oodb_exec::{
    try_execute, try_execute_parallel, try_execute_traced, ExecError, ExecResult, ExecStats,
};
use oodb_fault::{CancelToken, FaultClass, FaultInjector, RunLimits};
use oodb_storage::{MemoryGovernor, PressureLevel, Store};
use oodb_sync::Snap;
use oodb_telemetry::{Counter, Gauge, Histogram, MetricsRegistry, OpTrace, StageTimer};
use oodb_wal::WalSession;
pub use oodb_wal::{
    CheckpointStats, FlushPolicy, RecoverError, RecoveryReport, SessionError, WalRecord,
};
use std::collections::{BTreeMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Why an overloaded service refused a submission without running it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The worker pool's bounded queue was full.
    QueueFull,
    /// The circuit breaker is open after repeated resource failures.
    CircuitOpen,
    /// The memory governor reported critical pressure at admission.
    MemoryPressure,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShedReason::QueueFull => "queue full",
            ShedReason::CircuitOpen => "circuit breaker open",
            ShedReason::MemoryPressure => "memory pressure critical",
        })
    }
}

/// Errors a submission can produce.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// The front end rejected the query.
    Zql(zql::ZqlError),
    /// No feasible plan under the current rule configuration.
    NoPlan,
    /// A prepared-statement execution named an id that is not registered.
    UnknownStatement {
        /// The id the caller presented (a canonical fingerprint hash).
        id: u64,
    },
    /// The submission's deadline expired in the named pipeline stage.
    DeadlineExceeded {
        /// Which stage ran out of time (`"execute"` today; optimizer
        /// expiry degrades to the greedy plan instead of erroring).
        stage: &'static str,
    },
    /// The submission's [`CancelToken`] was cancelled.
    Cancelled,
    /// Execution materialized more tuples than
    /// [`SubmitOptions::row_budget`] allows.
    RowBudgetExceeded {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// The service refused the submission *before* running it — load
    /// shedding. Retry later; nothing was executed.
    Overloaded {
        /// What tripped the refusal.
        reason: ShedReason,
    },
    /// The execution's memory grant could not cover even its smallest
    /// working unit: spilling and staging were tried and still did not
    /// fit. Not retryable under the same budget.
    MemoryExhausted {
        /// Bytes the failing reservation asked for.
        requested: u64,
        /// The per-query budget in force.
        budget: u64,
    },
    /// A storage fault survived the retry budget (or was permanent).
    StorageFault {
        /// Whether the final fault was transient (retryable in principle).
        transient: bool,
        /// How many retries were spent before giving up.
        retries: u32,
    },
    /// Execution failed in a non-retryable way (malformed plan or trace).
    Exec(String),
    /// The worker serving this submission died before replying.
    WorkerLost,
    /// The submission panicked; the service caught it and stayed up.
    Panicked(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Zql(e) => write!(f, "{e}"),
            ServiceError::NoPlan => {
                write!(f, "no feasible plan under the current rule configuration")
            }
            ServiceError::UnknownStatement { id } => {
                write!(f, "unknown prepared statement {id:016x}")
            }
            ServiceError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded during {stage}")
            }
            ServiceError::Cancelled => write!(f, "query cancelled"),
            ServiceError::RowBudgetExceeded { budget } => {
                write!(f, "row budget of {budget} tuples exceeded")
            }
            ServiceError::Overloaded { reason } => {
                write!(f, "service overloaded: {reason}")
            }
            ServiceError::MemoryExhausted { requested, budget } => write!(
                f,
                "memory grant exhausted: {requested} bytes requested, budget {budget}"
            ),
            ServiceError::StorageFault { transient, retries } => write!(
                f,
                "{} storage fault after {retries} retries",
                if *transient { "transient" } else { "permanent" }
            ),
            ServiceError::Exec(msg) => write!(f, "execution failed: {msg}"),
            ServiceError::WorkerLost => write!(f, "worker died before replying"),
            ServiceError::Panicked(msg) => write!(f, "submission panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Poison-recovering mutex lock (worker queue receivers, breaker, pool
/// handles): a holder that panicked mid-section must not wedge the
/// service — the state behind each of these mutexes is either replaced
/// wholesale or trivially re-derivable.
fn lock_mutex<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Per-submission options.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOptions {
    /// Cache and select from an ObjectStore-style dynamic plan *family*
    /// (one plan per useful index subset) instead of one static plan.
    pub dynamic: bool,
    /// When positive, sleep `simulated_io_seconds × scale` after
    /// executing, turning the storage simulator's I/O estimate into real
    /// wall-clock stalls. This is what makes multi-worker throughput
    /// meaningful on a machine whose *real* I/O is a warm page cache.
    pub realize_io_scale: f64,
    /// Record a per-operator [`OpTrace`] during execution (`EXPLAIN
    /// ANALYZE`); the trace lands in [`QueryOutput::trace`].
    pub trace: bool,
    /// Per-submission wall-clock deadline. Bounds the Volcano search
    /// (expiry degrades to the greedy plan, flagged in
    /// [`QueryOutput::degraded`]) and non-degraded execution (expiry is
    /// [`ServiceError::DeadlineExceeded`]). A degraded plan executes
    /// *without* the deadline: a late best-effort answer beats an error.
    pub deadline: Option<Duration>,
    /// Abort execution once it materializes more than this many tuples
    /// (across all operators of the run).
    pub row_budget: Option<u64>,
    /// How many times a transient storage fault may be retried (with
    /// exponential backoff) before surfacing as
    /// [`ServiceError::StorageFault`].
    pub retries: u32,
    /// Per-query memory budget in bytes for the execution's grant. When
    /// unset and a [`MemoryGovernor`] is attached, the service defaults
    /// to a quarter of the governor's capacity so four queries can always
    /// make progress concurrently; operators under the budget spill
    /// rather than error.
    pub mem_budget: Option<u64>,
    /// Morsel worker threads for intra-query parallel execution of
    /// pure-CPU operator segments (filters, root projection, in-memory
    /// hash-join probes). `0` or `1` (the default) executes serially;
    /// results are byte-identical either way.
    pub exec_workers: usize,
}

/// Admission-control policy for [`QueryService`]. Everything is disabled
/// by default — the service behaves exactly as before until an operator
/// opts in via [`QueryService::set_admission`].
///
/// The overload ladder runs *degrade → shed → fail*: under
/// [`PressureLevel::High`] submissions degrade (greedy plan, halved
/// grant) before anything is refused; at [`PressureLevel::Critical`]
/// they shed with [`ServiceError::Overloaded`] so in-flight work can
/// finish; only an execution whose grant cannot cover its smallest
/// working unit fails with [`ServiceError::MemoryExhausted`].
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Maximum concurrently admitted submissions (0 = unlimited). The
    /// excess is refused with [`ShedReason::QueueFull`].
    pub max_inflight: usize,
    /// Consecutive resource failures (memory exhaustion, storage faults
    /// that survived retries) that trip the circuit breaker
    /// (0 = breaker disabled).
    pub breaker_threshold: u32,
    /// How long a tripped breaker sheds before half-opening to probe.
    pub breaker_cooldown: Duration,
    /// Enables the pressure ladder: degrade under
    /// [`PressureLevel::High`], shed at [`PressureLevel::Critical`].
    pub degrade_under_pressure: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 0,
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_millis(100),
            degrade_under_pressure: false,
        }
    }
}

/// Circuit-breaker state: consecutive resource failures and, when
/// tripped, the instant shedding stops and a half-open probe is allowed.
#[derive(Debug, Default)]
struct Breaker {
    consecutive_failures: u32,
    open_until: Option<Instant>,
}

/// Wall-clock nanoseconds each pipeline stage of one submission took.
/// Every submission pays parse → simplify → fingerprint → cache probe;
/// `optimize` is the Volcano search plus cache insert (≈0 on a hit);
/// `execute` is the plan run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// ZQL parse.
    pub parse_ns: u64,
    /// Simplification into the optimizer's algebra.
    pub simplify_ns: u64,
    /// Canonical fingerprint computation.
    pub fingerprint_ns: u64,
    /// Plan-cache probe.
    pub cache_probe_ns: u64,
    /// Volcano search + cache insert (misses only; ~0 on hits).
    pub optimize_ns: u64,
    /// Plan execution.
    pub execute_ns: u64,
}

/// A registered prepared statement: the compiled query held server-side
/// so executions by id skip parse + simplify + fingerprint entirely and
/// go straight to the plan-cache probe. The id IS the canonical
/// fingerprint hash, so textual variants of one query share a statement
/// (and its cached plan) automatically.
#[derive(Debug)]
pub struct PreparedQuery {
    /// Statement id: the canonical fingerprint hash of the query.
    pub id: u64,
    /// The source text the statement was prepared from (diagnostics).
    pub zql: String,
    fp: QueryFingerprint,
    env: QueryEnv,
    plan: LogicalPlan,
    result_vars: VarSet,
    order: Option<SortSpec>,
}

impl PreparedQuery {
    /// The canonical structural key the id hashes (cache-collision guard).
    pub fn structural_key(&self) -> &str {
        &self.fp.key
    }
}

/// The answer to one submission.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutput {
    /// Rendered result rows, sorted — byte-comparable across runs and
    /// plan choices.
    pub rows: Vec<String>,
    /// Number of result rows.
    pub row_count: usize,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Time spent in the front end (parse + simplify) — paid on every
    /// submission, hit or miss.
    pub compile_ns: u64,
    /// Time spent obtaining a plan: fingerprint + cache probe, plus the
    /// full Volcano search on a miss. This is the stage the cache
    /// amortizes.
    pub optimize_ns: u64,
    /// Time spent executing the plan.
    pub execute_ns: u64,
    /// The plan's estimated cost in seconds.
    pub est_cost_s: f64,
    /// Simulated I/O seconds the execution charged.
    pub sim_io_s: f64,
    /// Index names the executed plan read — evidence for invalidation
    /// tests that a dropped index is never served.
    pub indexes_used: Vec<String>,
    /// Per-stage wall-clock breakdown of this submission.
    pub stages: StageBreakdown,
    /// Buffer hits charged to this execution (per-run attribution).
    pub buffer_hits: u64,
    /// Buffer misses charged to this execution.
    pub buffer_misses: u64,
    /// The per-operator execution trace, when [`SubmitOptions::trace`]
    /// was set.
    pub trace: Option<OpTrace>,
    /// True when the optimizer deadline expired and this answer came from
    /// the greedy fallback plan rather than the full cost-based search.
    pub degraded: bool,
    /// Transient-fault retries this submission spent before succeeding.
    pub retries: u32,
    /// High-water mark of bytes the execution's memory grant held.
    pub mem_peak_bytes: u64,
    /// Spill pages the execution moved (written + read back); nonzero
    /// only when the memory grant forced operators to overflow.
    pub spill_pages: u64,
    /// `stats_epoch` of the store snapshot this submission ran against.
    /// Paired with [`QueryOutput::config_fp`], it identifies the ONE
    /// service snapshot the whole pipeline observed — concurrency tests
    /// assert the pair always matches a published snapshot (no tearing).
    pub stats_epoch: u64,
    /// Fingerprint of the optimizer configuration the submission used.
    pub config_fp: u64,
}

/// Counters of the active WAL session, for the server's `/stats`
/// `durability` object and the CLI's `\wal stats`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DurabilityStats {
    /// Durability directory (checkpoint + log).
    pub dir: String,
    /// Flush policy, rendered (`EveryRecord`, `Batch(8)`, `Manual`).
    pub policy: String,
    /// Records accepted by the log this session.
    pub records: u64,
    /// Frame bytes accepted this session.
    pub bytes: u64,
    /// Flushes that reached the file.
    pub flushes: u64,
    /// Syncs that completed.
    pub syncs: u64,
    /// Injected write faults.
    pub faults: u64,
    /// Records appended but not yet flushed (the crash window).
    pub buffered_records: u64,
    /// Sequence number the next record will carry.
    pub next_seq: u64,
    /// Records in the most recent checkpoint.
    pub checkpoint_records: u64,
    /// Bytes in the most recent checkpoint.
    pub checkpoint_bytes: u64,
    /// Log records folded into checkpoints over this session.
    pub compacted_records: u64,
    /// Whether a write fault poisoned the session (mutations continue
    /// in memory but are no longer acknowledged durable).
    pub poisoned: bool,
}

/// Handles to every metric the service records, registered once at
/// construction so the per-submission path never takes the registry lock.
struct ServiceMetrics {
    stage_parse: Histogram,
    stage_simplify: Histogram,
    stage_fingerprint: Histogram,
    stage_cache_probe: Histogram,
    stage_optimize: Histogram,
    stage_execute: Histogram,
    submissions: Counter,
    errors: Counter,
    /// Prepared-statement registrations (`prepare` calls that created a
    /// new entry; re-preparing an existing statement is not counted).
    prepares: Counter,
    /// Executions submitted by prepared-statement id.
    prepared_executes: Counter,
    /// Currently registered prepared statements.
    prepared_statements: Gauge,
    optimizer_runs: Counter,
    transform_firings: Counter,
    plans_costed: Counter,
    exec_buffer_hits: Counter,
    exec_buffer_misses: Counter,
    exec_pages_read: Counter,
    exec_tuples: Counter,
    exec_sim_io_us: Counter,
    /// Static-verifier findings on winning plans (0 on a sound optimizer).
    verify_violations: Counter,
    /// Subset of `verify_violations`: cost-model estimates that escaped
    /// their sound `[lo, hi]` cardinality intervals (a cost-model bug).
    interval_violations: Counter,
    /// Executions whose measured row counts escaped their estimates — the
    /// stale-statistics detector. Traced runs check every operator against
    /// its catalog-derived interval; untraced runs check the root row
    /// count against the drift threshold, so the counter is live in
    /// production mode too.
    actual_card_violations: Counter,
    /// Feedback-driven re-optimizations: cache misses whose search ran
    /// under corrective selectivity overrides after drift marked the
    /// fingerprint suspect.
    reopt: Counter,
    /// Selectivity overrides currently active across all feedback entries
    /// (refreshed at export time, like the cache mirrors).
    feedback_overrides: Gauge,
    /// Submissions that ran out of deadline during execution.
    timeouts: Counter,
    /// Transient-storage-fault retries across all submissions.
    retries: Counter,
    /// Optimizer-deadline expiries served by the greedy fallback plan.
    fallback_plans: Counter,
    /// Submissions that panicked and were converted to typed errors.
    submission_panics: Counter,
    /// Submissions refused at admission, by reason.
    shed_queue_full: Counter,
    shed_circuit_open: Counter,
    shed_memory_pressure: Counter,
    /// Circuit-breaker trips (closed → open transitions).
    breaker_trips: Counter,
    /// 1 while the breaker is open, else 0.
    breaker_open: Gauge,
    /// Currently admitted submissions.
    inflight: Gauge,
    /// Submissions served degraded because of memory pressure (greedy
    /// plan, halved grant).
    pressure_degrades: Counter,
    /// Spill pages executions wrote / read back (cumulative).
    exec_spill_written: Counter,
    exec_spill_read: Counter,
    /// Memory-grant reservations refused across executions.
    grant_denials: Counter,
    /// Mirrors of the memory governor's ledger, refreshed at export time.
    mem_reserved_bytes: Gauge,
    mem_capacity_bytes: Gauge,
    /// Mirror of the fault injector's total injected faults (refreshed at
    /// export time, like the cache mirrors).
    injected_faults: Counter,
    // Mirrors of the plan cache's own counters, refreshed at export time.
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    cache_stale_rejects: Counter,
    cache_verify_rejects: Counter,
    cache_entries: Gauge,
    cache_bytes: Gauge,
    // Durability mirrors (refreshed at export time from the WAL session)
    // and recovery counters (bumped once by [`QueryService::recover`]).
    wal_records: Counter,
    wal_bytes: Counter,
    recovery_replayed: Counter,
    wal_torn_tails: Counter,
}

impl ServiceMetrics {
    fn register(reg: &MetricsRegistry) -> Self {
        let stage = |name: &str| reg.histogram("oodb_stage_latency_ns", &[("stage", name)]);
        ServiceMetrics {
            stage_parse: stage("parse"),
            stage_simplify: stage("simplify"),
            stage_fingerprint: stage("fingerprint"),
            stage_cache_probe: stage("cache_probe"),
            stage_optimize: stage("optimize"),
            stage_execute: stage("execute"),
            submissions: reg.counter("oodb_submissions_total", &[]),
            errors: reg.counter("oodb_submission_errors_total", &[]),
            prepares: reg.counter("oodb_prepares_total", &[]),
            prepared_executes: reg.counter("oodb_prepared_executes_total", &[]),
            prepared_statements: reg.gauge("oodb_prepared_statements", &[]),
            optimizer_runs: reg.counter("oodb_optimizer_runs_total", &[]),
            transform_firings: reg.counter("oodb_optimizer_transform_firings_total", &[]),
            plans_costed: reg.counter("oodb_optimizer_plans_costed_total", &[]),
            exec_buffer_hits: reg.counter("oodb_exec_buffer_hits_total", &[]),
            exec_buffer_misses: reg.counter("oodb_exec_buffer_misses_total", &[]),
            exec_pages_read: reg.counter("oodb_exec_pages_read_total", &[]),
            exec_tuples: reg.counter("oodb_exec_tuples_total", &[]),
            exec_sim_io_us: reg.counter("oodb_exec_sim_io_microseconds_total", &[]),
            verify_violations: reg.counter("oodb_verify_violations_total", &[]),
            interval_violations: reg.counter("oodb_interval_violations_total", &[]),
            actual_card_violations: reg.counter("oodb_actual_card_violations_total", &[]),
            reopt: reg.counter("oodb_reopt_total", &[]),
            feedback_overrides: reg.gauge("oodb_feedback_overrides_active", &[]),
            timeouts: reg.counter("oodb_timeouts_total", &[]),
            retries: reg.counter("oodb_retries_total", &[]),
            fallback_plans: reg.counter("oodb_fallback_plans_total", &[]),
            submission_panics: reg.counter("oodb_submission_panics_total", &[]),
            shed_queue_full: reg.counter("oodb_shed_total", &[("reason", "queue_full")]),
            shed_circuit_open: reg.counter("oodb_shed_total", &[("reason", "circuit_open")]),
            shed_memory_pressure: reg.counter("oodb_shed_total", &[("reason", "memory_pressure")]),
            breaker_trips: reg.counter("oodb_breaker_trips_total", &[]),
            breaker_open: reg.gauge("oodb_breaker_open", &[]),
            inflight: reg.gauge("oodb_inflight", &[]),
            pressure_degrades: reg.counter("oodb_pressure_degrades_total", &[]),
            exec_spill_written: reg.counter("oodb_exec_spill_pages_written_total", &[]),
            exec_spill_read: reg.counter("oodb_exec_spill_pages_read_total", &[]),
            grant_denials: reg.counter("oodb_grant_denials_total", &[]),
            mem_reserved_bytes: reg.gauge("oodb_mem_reserved_bytes", &[]),
            mem_capacity_bytes: reg.gauge("oodb_mem_capacity_bytes", &[]),
            injected_faults: reg.counter("oodb_injected_faults_total", &[]),
            cache_hits: reg.counter("oodb_plancache_hits_total", &[]),
            cache_misses: reg.counter("oodb_plancache_misses_total", &[]),
            cache_evictions: reg.counter("oodb_plancache_evictions_total", &[]),
            cache_stale_rejects: reg.counter("oodb_plancache_stale_rejects_total", &[]),
            cache_verify_rejects: reg.counter("oodb_plancache_verify_rejects_total", &[]),
            cache_entries: reg.gauge("oodb_plancache_entries", &[]),
            cache_bytes: reg.gauge("oodb_plancache_bytes", &[]),
            wal_records: reg.counter("oodb_wal_records_total", &[]),
            wal_bytes: reg.counter("oodb_wal_bytes_total", &[]),
            recovery_replayed: reg.counter("oodb_recovery_replayed_total", &[]),
            wal_torn_tails: reg.counter("oodb_wal_torn_tails_total", &[]),
        }
    }

    fn record_exec(&self, stats: &ExecStats) {
        self.exec_buffer_hits.add(stats.buffer_hits);
        self.exec_buffer_misses.add(stats.buffer_misses);
        self.exec_pages_read.add(stats.disk.pages());
        self.exec_tuples.add(stats.counts.tuples);
        self.exec_sim_io_us.add((stats.disk.total_s * 1e6) as u64);
        self.exec_spill_written.add(stats.mem.spill_pages_written);
        self.exec_spill_read.add(stats.mem.spill_pages_read);
        self.grant_denials.add(stats.mem.grant_denials);
    }

    fn record_shed(&self, reason: ShedReason) {
        match reason {
            ShedReason::QueueFull => self.shed_queue_full.inc(),
            ShedReason::CircuitOpen => self.shed_circuit_open.inc(),
            ShedReason::MemoryPressure => self.shed_memory_pressure.inc(),
        }
    }
}

/// Decrements the in-flight ledger when an admitted submission finishes,
/// on every path out — success, typed error, or panic unwind.
struct InflightGuard<'a> {
    counter: &'a AtomicUsize,
    gauge: &'a Gauge,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::Relaxed);
        self.gauge.sub(1);
    }
}

/// What a submission executes: raw ZQL text (parsed per submission) or a
/// registered prepared statement (parsed once at [`QueryService::prepare`]).
enum QueryInput<'a> {
    Text(&'a str),
    Prepared(&'a PreparedQuery),
}

/// Everything a submission reads from the service, published as ONE
/// epoch snapshot. A submission loads the snapshot once and works from
/// it for its whole pipeline, so it can never observe a store from one
/// reconfiguration and a config (or admission policy) from another —
/// torn reads are impossible by construction, not by locking. Mutators
/// build a complete replacement and swap it in ([`Snap`]); the read
/// side is a single atomic load with no shared-cache-line writes.
#[derive(Clone, Debug)]
struct ServiceState {
    store: Arc<Store>,
    /// The configuration plus its precomputed fingerprint — recomputing
    /// the fingerprint (sorting rule names) on every submit would cost
    /// more than the cache probe it keys.
    config: Arc<OptimizerConfig>,
    config_fp: u64,
    admission: AdmissionConfig,
}

struct Inner {
    state: Snap<ServiceState>,
    params: CostParams,
    cache: Arc<PlanCache>,
    /// Prepared-statement registry, keyed by canonical fingerprint hash.
    /// Reads (the execute hot path) are lock-free snapshot loads; only
    /// `prepare` of a *new* statement pays the copy-on-write clone.
    prepared: Snap<BTreeMap<u64, Arc<PreparedQuery>>>,
    telemetry: Arc<MetricsRegistry>,
    metrics: ServiceMetrics,
    inflight: AtomicUsize,
    breaker: Mutex<Breaker>,
    /// Actual-vs-estimated cardinality feedback, keyed by canonical
    /// fingerprint hash. Fed by every static submission (traced or not);
    /// read back as corrective [`oodb_algebra::StatsOverlay`]s at the
    /// cache probe.
    feedback: Arc<FeedbackStore>,
    /// Active write-ahead-log session, if durability is on. Logging
    /// mutators hold this lock across append *and* snapshot swap so the
    /// log order always matches the apply order.
    durability: Mutex<Option<WalSession>>,
}

/// The query service. Cheap to clone — all clones share state.
#[derive(Clone)]
pub struct QueryService {
    inner: Arc<Inner>,
}

impl QueryService {
    /// Wraps a store. `cache_capacity`/`cache_shards` size the plan cache.
    pub fn new(
        store: Store,
        params: CostParams,
        config: OptimizerConfig,
        cache_capacity: usize,
        cache_shards: usize,
    ) -> Self {
        let config_fp = config.fingerprint();
        let telemetry = Arc::new(MetricsRegistry::new());
        let metrics = ServiceMetrics::register(&telemetry);
        QueryService {
            inner: Arc::new(Inner {
                state: Snap::new(ServiceState {
                    store: Arc::new(store),
                    config: Arc::new(config),
                    config_fp,
                    admission: AdmissionConfig::default(),
                }),
                params,
                cache: Arc::new(PlanCache::new(cache_capacity, cache_shards)),
                prepared: Snap::new(BTreeMap::new()),
                telemetry,
                metrics,
                inflight: AtomicUsize::new(0),
                breaker: Mutex::new(Breaker::default()),
                feedback: Arc::new(FeedbackStore::default()),
                durability: Mutex::new(None),
            }),
        }
    }

    /// Rebuilds a service from a durability directory — checkpoint, then
    /// the longest valid log prefix — and resumes logging into it (the
    /// recovered state is folded into a fresh checkpoint, so the log
    /// restarts empty). Returns the service plus what recovery found.
    pub fn recover(
        dir: &Path,
        params: CostParams,
        config: OptimizerConfig,
        cache_capacity: usize,
        cache_shards: usize,
        policy: FlushPolicy,
    ) -> Result<(QueryService, RecoveryReport), RecoverError> {
        let (store, report) = oodb_wal::recover(dir)?;
        let svc = QueryService::new(store, params, config, cache_capacity, cache_shards);
        svc.inner
            .metrics
            .recovery_replayed
            .add(report.replayed_records);
        if report.torn_tail_bytes > 0 {
            svc.inner.metrics.wal_torn_tails.inc();
        }
        svc.enable_durability(dir, policy)
            .map_err(|e| RecoverError::Io(std::io::Error::other(e.to_string())))?;
        Ok((svc, report))
    }

    /// Publishes a new store snapshot derived from the current one,
    /// leaving config and admission policy untouched. Serialized with
    /// every other mutator by the snapshot cell's writer lock, so
    /// concurrent reconfigurations never lose each other's changes.
    fn swap_store(&self, f: impl FnOnce(&mut Store)) {
        self.inner.state.update(|s| {
            let mut store = (*s.store).clone();
            f(&mut store);
            (
                ServiceState {
                    store: Arc::new(store),
                    ..s.clone()
                },
                (),
            )
        });
        // Feedback recorded under an older stats epoch described a
        // distribution that no longer exists; retire it (and its suspect
        // markers) the moment the epoch moves. A no-op for swaps that do
        // not bump the epoch (fault injectors, governors).
        self.inner
            .feedback
            .retire_older_than(self.inner.state.load().store.catalog().stats_epoch());
    }

    /// The service's metrics registry (shared with all clones).
    pub fn telemetry(&self) -> &Arc<MetricsRegistry> {
        &self.inner.telemetry
    }

    /// Turns per-stage latency histograms on or off. Counters and gauges
    /// stay live either way; with profiling off the histogram observation
    /// path reduces to one relaxed load.
    pub fn set_profiling(&self, on: bool) {
        self.inner.telemetry.set_profiling(on);
    }

    /// Refreshes the plan-cache mirror metrics from the cache's own
    /// counters. Called automatically by the render methods.
    fn sync_cache_metrics(&self) {
        let s = self.inner.cache.stats();
        let m = &self.inner.metrics;
        m.cache_hits.store(s.hits);
        m.cache_misses.store(s.misses);
        m.cache_evictions.store(s.evictions);
        m.cache_stale_rejects.store(s.stale_rejects);
        m.cache_verify_rejects.store(s.verify_rejects);
        m.cache_entries.set(s.entries as i64);
        m.cache_bytes.set(s.bytes as i64);
        m.feedback_overrides
            .set(self.inner.feedback.stats().overrides.min(i64::MAX as u64) as i64);
        let store = self.store();
        if let Some(inj) = store.fault_injector() {
            m.injected_faults.store(inj.stats().injected);
        }
        if let Some(gov) = store.memory_governor() {
            let gs = gov.stats();
            m.mem_reserved_bytes
                .set(gs.reserved.min(i64::MAX as u64) as i64);
            m.mem_capacity_bytes
                .set(gs.capacity.min(i64::MAX as u64) as i64);
        }
        if let Some(session) = self.durability_lock().as_ref() {
            let ws = session.wal_stats();
            m.wal_records.store(ws.records);
            m.wal_bytes.store(ws.bytes);
        }
    }

    /// Every metric in the Prometheus text exposition format (`\metrics`).
    pub fn metrics_prometheus(&self) -> String {
        self.sync_cache_metrics();
        self.inner.telemetry.render_prometheus()
    }

    /// A JSON snapshot of every metric, for embedding in bench reports.
    pub fn metrics_json(&self) -> String {
        self.sync_cache_metrics();
        self.inner.telemetry.render_json()
    }

    /// The current store snapshot.
    pub fn store(&self) -> Arc<Store> {
        Arc::clone(&self.inner.state.load().store)
    }

    /// The plan cache (shared).
    pub fn cache(&self) -> &PlanCache {
        &self.inner.cache
    }

    /// The feedback store accumulating actual-vs-estimated root
    /// cardinalities per query fingerprint (shared with all clones).
    pub fn feedback(&self) -> &Arc<FeedbackStore> {
        &self.inner.feedback
    }

    /// Aggregate feedback counters, for the server's `/stats` endpoint
    /// and the CLI's `\feedback stats`.
    pub fn feedback_stats(&self) -> FeedbackStats {
        self.inner.feedback.stats()
    }

    /// Per-fingerprint feedback entries, worst drift first.
    pub fn feedback_snapshot(&self) -> Vec<FeedbackEntry> {
        self.inner.feedback.snapshot()
    }

    /// The current optimizer configuration.
    pub fn config(&self) -> OptimizerConfig {
        (*self.inner.state.load().config).clone()
    }

    /// The identity of the current snapshot as a consistent
    /// `(stats_epoch, config_fingerprint)` pair — both fields come from
    /// ONE atomic snapshot load, never from two reconfigurations.
    pub fn snapshot_identity(&self) -> (u64, u64) {
        let s = self.inner.state.load();
        (s.store.catalog().stats_epoch(), s.config_fp)
    }

    /// Replaces the optimizer configuration. Plans cached under the old
    /// configuration stay resident but can no longer be served — the
    /// config fingerprint is part of every cache key.
    pub fn set_config(&self, config: OptimizerConfig) {
        let fp = config.fingerprint();
        let config = Arc::new(config);
        self.inner.state.update(|s| {
            (
                ServiceState {
                    config: Arc::clone(&config),
                    config_fp: fp,
                    ..s.clone()
                },
                (),
            )
        });
    }

    /// Collects histograms and swaps in a store whose catalog carries the
    /// refined statistics and a bumped `stats_epoch`. With durability on,
    /// the refresh is logged before it is applied (log-then-apply); WAL
    /// replay re-runs the identical collect + set-catalog + rebuild
    /// composite, so the recovered catalog matches bucket for bucket.
    pub fn refresh_statistics(&self, buckets: usize) {
        let mut dur = self.durability_lock();
        self.log_mutation(
            &mut dur,
            &WalRecord::StatsRefresh {
                buckets: buckets as u32,
            },
        );
        self.swap_store(|store| {
            let catalog = store.collect_statistics(&[], buckets);
            store.set_catalog(catalog);
            store.build_indexes();
        });
    }

    /// Replaces statistics *and* configuration in one snapshot swap: a
    /// reader either sees both changes or neither. This is the mutation
    /// the concurrency proof drives while submissions race it.
    pub fn refresh_statistics_with_config(&self, buckets: usize, config: OptimizerConfig) {
        let mut dur = self.durability_lock();
        self.log_mutation(
            &mut dur,
            &WalRecord::StatsRefresh {
                buckets: buckets as u32,
            },
        );
        let fp = config.fingerprint();
        let config = Arc::new(config);
        self.inner.state.update(|s| {
            let mut store = (*s.store).clone();
            let catalog = store.collect_statistics(&[], buckets);
            store.set_catalog(catalog);
            store.build_indexes();
            (
                ServiceState {
                    store: Arc::new(store),
                    config: Arc::clone(&config),
                    config_fp: fp,
                    admission: s.admission,
                },
                (),
            )
        });
        self.inner
            .feedback
            .retire_older_than(self.inner.state.load().store.catalog().stats_epoch());
    }

    /// Drops every index not named in `keep` (physical-design change) and
    /// swaps in the rebuilt store. The epoch bump makes every cached plan
    /// unservable, so a plan relying on a dropped index can never run.
    pub fn restrict_indexes(&self, keep: &[&str]) {
        let mut dur = self.durability_lock();
        // The logged copy can come from the current snapshot — catalog-
        // changing mutators are serialized by the durability lock, so it
        // matches what the swap below produces. The swap itself must not
        // reuse it: mutators that skip this lock (fault injectors,
        // memory governors) may publish a newer snapshot in between, and
        // writing a catalog derived from the stale store would clobber
        // theirs. Derive it from the store actually being mutated.
        self.log_mutation(
            &mut dur,
            &WalRecord::SetCatalog {
                catalog: self.store().catalog().with_only_indexes(keep),
            },
        );
        self.log_mutation(&mut dur, &WalRecord::BuildIndexes { bump_epoch: true });
        let keep: Vec<String> = keep.iter().map(|s| s.to_string()).collect();
        self.swap_store(move |store| {
            let keep: Vec<&str> = keep.iter().map(String::as_str).collect();
            let catalog = store.catalog().with_only_indexes(&keep);
            store.set_catalog(catalog);
            store.build_indexes();
        });
    }

    fn durability_lock(&self) -> std::sync::MutexGuard<'_, Option<WalSession>> {
        self.inner
            .durability
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one record to the WAL session, if durability is on. An
    /// append failure (injected write fault, full disk) poisons the
    /// session rather than blocking the mutation: the in-memory state
    /// moves on, the mutation is simply not acknowledged durable, and
    /// [`DurabilityStats::poisoned`] reports the degradation.
    fn log_mutation(&self, dur: &mut Option<WalSession>, rec: &WalRecord) {
        if let Some(session) = dur.as_mut() {
            let _ = session.append(rec);
        }
    }

    /// Switches durability on: checkpoints the current store into `dir`
    /// and opens a fresh log there. Subsequent statistics and
    /// physical-design mutations are logged before they are applied.
    /// Idempotent per directory — re-enabling replaces the session (the
    /// old one flushes on drop via its final checkpoint already on disk).
    pub fn enable_durability(&self, dir: &Path, policy: FlushPolicy) -> Result<(), SessionError> {
        let mut dur = self.durability_lock();
        let session = WalSession::create(dir, &self.store(), policy, None)?;
        *dur = Some(session);
        Ok(())
    }

    /// Switches durability off, flushing buffered records first. Returns
    /// whether a session was active.
    pub fn disable_durability(&self) -> bool {
        let mut dur = self.durability_lock();
        match dur.take() {
            Some(mut session) => {
                let _ = session.flush();
                true
            }
            None => false,
        }
    }

    /// Whether a WAL session is active.
    pub fn durability_enabled(&self) -> bool {
        self.durability_lock().is_some()
    }

    /// Forces buffered WAL records to disk (`FlushPolicy::Batch`/`Manual`
    /// sessions; a no-op under `EveryRecord`).
    pub fn flush_wal(&self) -> Option<Result<(), String>> {
        let mut dur = self.durability_lock();
        dur.as_mut().map(|s| s.flush().map_err(|e| e.to_string()))
    }

    /// Compacts the log into a fresh checkpoint of the current store.
    /// Mutators are blocked for the duration, so the checkpoint can never
    /// miss a logged-but-unapplied record.
    pub fn checkpoint_wal(&self) -> Option<Result<CheckpointStats, String>> {
        let mut dur = self.durability_lock();
        let store = self.store();
        dur.as_mut()
            .map(|s| s.checkpoint(&store).map_err(|e| e.to_string()))
    }

    /// A snapshot of the WAL session's counters, or `None` with
    /// durability off.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        let dur = self.durability_lock();
        dur.as_ref().map(|s| {
            let ws = s.wal_stats();
            let ck = s.last_checkpoint();
            DurabilityStats {
                dir: s.dir().display().to_string(),
                policy: format!("{:?}", s.policy()),
                records: ws.records,
                bytes: ws.bytes,
                flushes: ws.flushes,
                syncs: ws.syncs,
                faults: ws.faults,
                buffered_records: s.buffered_records() as u64,
                next_seq: s.next_seq(),
                checkpoint_records: ck.records,
                checkpoint_bytes: ck.bytes,
                compacted_records: s.compacted_records(),
                poisoned: s.poisoned(),
            }
        })
    }

    /// Routes subsequent executions through a fault injector by swapping
    /// in a store snapshot that carries it. No epoch bump: injected faults
    /// do not invalidate cached plans, only their executions.
    pub fn attach_fault_injector(&self, injector: FaultInjector) {
        self.swap_store(|store| store.attach_fault_injector(injector));
    }

    /// Removes the fault injector (fresh snapshots execute fault-free).
    pub fn detach_fault_injector(&self) {
        self.swap_store(Store::detach_fault_injector);
    }

    /// The fault injector on the current store snapshot, if any.
    pub fn fault_injector(&self) -> Option<FaultInjector> {
        self.store().fault_injector().cloned()
    }

    /// Routes subsequent executions through a process-wide
    /// [`MemoryGovernor`] by swapping in a store snapshot that carries
    /// it. Executions draw byte grants from the governor; operators
    /// whose grant runs out spill to simulated disk instead of growing.
    /// No epoch bump: governance changes execution, not plans.
    pub fn attach_memory_governor(&self, governor: MemoryGovernor) {
        self.swap_store(|store| store.attach_memory_governor(governor));
    }

    /// Removes the memory governor (fresh snapshots execute ungoverned).
    pub fn detach_memory_governor(&self) {
        self.swap_store(Store::detach_memory_governor);
    }

    /// The memory governor on the current store snapshot, if any.
    pub fn memory_governor(&self) -> Option<MemoryGovernor> {
        self.store().memory_governor().cloned()
    }

    /// Replaces the admission-control policy (applies to the next
    /// submission; in-flight work is never revoked).
    pub fn set_admission(&self, config: AdmissionConfig) {
        self.inner.state.update(|s| {
            (
                ServiceState {
                    admission: config,
                    ..s.clone()
                },
                (),
            )
        });
    }

    /// The current admission-control policy.
    pub fn admission(&self) -> AdmissionConfig {
        self.inner.state.load().admission
    }

    /// Registers a prepared statement: parses, simplifies, and
    /// fingerprints `zql_src`, storing the compiled query under its
    /// canonical fingerprint hash. Returns the statement and whether this
    /// call created it (`false` = an equivalent statement — possibly a
    /// textual variant — was already registered; both callers share it).
    /// Nothing is optimized or executed yet: the first
    /// [`QueryService::submit_prepared_with`] fills the plan cache, and
    /// every execution after that hits it by id.
    pub fn prepare(&self, zql_src: &str) -> Result<(Arc<PreparedQuery>, bool), ServiceError> {
        let m = &self.inner.metrics;
        let state = self.inner.state.load();
        let ast = zql::parser::parse(zql_src).map_err(|e| {
            m.errors.inc();
            ServiceError::Zql(e)
        })?;
        let q = zql::simplify(&ast, state.store.schema(), state.store.catalog()).map_err(|e| {
            m.errors.inc();
            ServiceError::Zql(e)
        })?;
        let fp = fingerprint(&q.env, &q.plan, q.result_vars, q.order.as_ref());
        let id = fp.hash;
        if let Some(existing) = self.inner.prepared.load().get(&id) {
            return Ok((Arc::clone(existing), false));
        }
        let stmt = Arc::new(PreparedQuery {
            id,
            zql: zql_src.to_string(),
            fp,
            env: q.env,
            plan: q.plan,
            result_vars: q.result_vars,
            order: q.order,
        });
        let (entry, created) = self.inner.prepared.update(|map| {
            if let Some(existing) = map.get(&id) {
                // Two racing prepares of one query agree on a statement.
                return (map.clone(), (Arc::clone(existing), false));
            }
            let mut next = map.clone();
            next.insert(id, Arc::clone(&stmt));
            (next, (Arc::clone(&stmt), true))
        });
        if created {
            m.prepares.inc();
            m.prepared_statements
                .set(self.inner.prepared.load().len() as i64);
        }
        Ok((entry, created))
    }

    /// Looks up a registered prepared statement by id.
    pub fn prepared(&self, id: u64) -> Option<Arc<PreparedQuery>> {
        self.inner.prepared.load().get(&id).cloned()
    }

    /// Every registered prepared statement, in id order.
    pub fn prepared_statements(&self) -> Vec<Arc<PreparedQuery>> {
        self.inner.prepared.load().values().cloned().collect()
    }

    /// Drops a prepared statement. Cached plans stay resident (they are
    /// keyed by fingerprint, not by registration) but can no longer be
    /// reached by id. Returns whether the id was registered.
    pub fn deallocate(&self, id: u64) -> bool {
        let removed = self.inner.prepared.update(|map| {
            if !map.contains_key(&id) {
                return (map.clone(), false);
            }
            let mut next = map.clone();
            next.remove(&id);
            (next, true)
        });
        if removed {
            self.inner
                .metrics
                .prepared_statements
                .set(self.inner.prepared.load().len() as i64);
        }
        removed
    }

    /// Executes a prepared statement by id: no parse, no simplify, no
    /// fingerprint — straight to the plan-cache probe. Equivalent to
    /// [`QueryService::submit_with`] for the statement's query otherwise
    /// (same admission control, same error surface).
    pub fn submit_prepared_with(
        &self,
        id: u64,
        opts: SubmitOptions,
    ) -> Result<QueryOutput, ServiceError> {
        self.submit_prepared_guarded(id, opts, None)
    }

    /// [`QueryService::submit_prepared_with`] plus a cooperative
    /// [`CancelToken`].
    pub fn submit_prepared_cancellable(
        &self,
        id: u64,
        opts: SubmitOptions,
        cancel: &CancelToken,
    ) -> Result<QueryOutput, ServiceError> {
        self.submit_prepared_guarded(id, opts, Some(cancel))
    }

    fn submit_prepared_guarded(
        &self,
        id: u64,
        opts: SubmitOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<QueryOutput, ServiceError> {
        let m = &self.inner.metrics;
        m.prepared_executes.inc();
        let Some(stmt) = self.prepared(id) else {
            m.errors.inc();
            return Err(ServiceError::UnknownStatement { id });
        };
        match catch_unwind(AssertUnwindSafe(|| {
            self.submit_inner(QueryInput::Prepared(&stmt), opts, cancel)
        })) {
            Ok(reply) => reply,
            Err(payload) => {
                m.errors.inc();
                m.submission_panics.inc();
                Err(ServiceError::Panicked(panic_message(payload.as_ref())))
            }
        }
    }

    /// Compiles, plans (via cache), executes. Equivalent to
    /// [`QueryService::submit_with`] with default options.
    pub fn submit(&self, zql_src: &str) -> Result<QueryOutput, ServiceError> {
        self.submit_with(zql_src, SubmitOptions::default())
    }

    /// Compiles, plans (via cache), executes, with options. Panics inside
    /// the pipeline are caught and surfaced as
    /// [`ServiceError::Panicked`] — a submission can fail, but it cannot
    /// take the service down.
    pub fn submit_with(
        &self,
        zql_src: &str,
        opts: SubmitOptions,
    ) -> Result<QueryOutput, ServiceError> {
        self.submit_guarded(zql_src, opts, None)
    }

    /// [`QueryService::submit_with`] plus a cooperative [`CancelToken`]:
    /// cancel it from any thread and the execution stops at its next
    /// operator batch boundary with [`ServiceError::Cancelled`].
    pub fn submit_cancellable(
        &self,
        zql_src: &str,
        opts: SubmitOptions,
        cancel: &CancelToken,
    ) -> Result<QueryOutput, ServiceError> {
        self.submit_guarded(zql_src, opts, Some(cancel))
    }

    /// The panic boundary around the submission pipeline.
    fn submit_guarded(
        &self,
        zql_src: &str,
        opts: SubmitOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<QueryOutput, ServiceError> {
        match catch_unwind(AssertUnwindSafe(|| {
            self.submit_inner(QueryInput::Text(zql_src), opts, cancel)
        })) {
            Ok(reply) => reply,
            Err(payload) => {
                let m = &self.inner.metrics;
                m.errors.inc();
                m.submission_panics.inc();
                Err(ServiceError::Panicked(panic_message(payload.as_ref())))
            }
        }
    }

    /// Admission control around the pipeline: circuit breaker, in-flight
    /// cap, and the pressure ladder (degrade at High, shed at Critical),
    /// all disabled by default ([`AdmissionConfig`]).
    fn submit_inner(
        &self,
        input: QueryInput<'_>,
        opts: SubmitOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<QueryOutput, ServiceError> {
        let m = &self.inner.metrics;
        m.submissions.inc();
        if cancel.is_some_and(CancelToken::is_cancelled) {
            m.errors.inc();
            return Err(ServiceError::Cancelled);
        }
        // ONE snapshot load serves this whole submission: admission
        // policy, store, and config all come from the same epoch.
        let state = self.inner.state.load();
        let adm = state.admission;

        // Circuit breaker: while open, shed without touching the pipeline.
        // Once the cooldown passes, half-open — let one probe through; a
        // single failure re-trips (the failure count still sits at the
        // threshold), a success closes.
        if adm.breaker_threshold > 0 {
            let mut breaker = lock_mutex(&self.inner.breaker);
            if let Some(until) = breaker.open_until {
                if Instant::now() < until {
                    drop(breaker);
                    m.errors.inc();
                    m.record_shed(ShedReason::CircuitOpen);
                    return Err(ServiceError::Overloaded {
                        reason: ShedReason::CircuitOpen,
                    });
                }
                breaker.open_until = None;
                m.breaker_open.set(0);
            }
        }

        // In-flight cap. The guard is armed before the check so a refused
        // submission's increment is rolled back by the same Drop path.
        let prev_inflight = self.inner.inflight.fetch_add(1, Ordering::Relaxed);
        m.inflight.add(1);
        let _inflight = InflightGuard {
            counter: &self.inner.inflight,
            gauge: &m.inflight,
        };
        if adm.max_inflight > 0 && prev_inflight >= adm.max_inflight {
            m.errors.inc();
            m.record_shed(ShedReason::QueueFull);
            return Err(ServiceError::Overloaded {
                reason: ShedReason::QueueFull,
            });
        }

        // Pressure ladder: degrade before shedding, shed before failing.
        let mut pressure_degraded = false;
        if adm.degrade_under_pressure {
            if let Some(gov) = state.store.memory_governor() {
                match gov.pressure() {
                    PressureLevel::Critical => {
                        m.errors.inc();
                        m.record_shed(ShedReason::MemoryPressure);
                        return Err(ServiceError::Overloaded {
                            reason: ShedReason::MemoryPressure,
                        });
                    }
                    PressureLevel::High => pressure_degraded = true,
                    PressureLevel::Nominal | PressureLevel::Elevated => {}
                }
            }
        }

        let result = self.submit_pipeline(&state, input, opts, cancel, pressure_degraded);

        if adm.breaker_threshold > 0 {
            let mut breaker = lock_mutex(&self.inner.breaker);
            match &result {
                Ok(_) => {
                    breaker.consecutive_failures = 0;
                    breaker.open_until = None;
                    m.breaker_open.set(0);
                }
                // Only resource failures trip the breaker: a malformed
                // query or a cancelled token says nothing about capacity.
                Err(ServiceError::MemoryExhausted { .. })
                | Err(ServiceError::StorageFault { .. }) => {
                    breaker.consecutive_failures += 1;
                    if breaker.consecutive_failures >= adm.breaker_threshold {
                        breaker.open_until = Some(Instant::now() + adm.breaker_cooldown);
                        m.breaker_trips.inc();
                        m.breaker_open.set(1);
                    }
                }
                Err(_) => {}
            }
        }
        result
    }

    /// Parse → plan (via cache) → execute. `pressure_degraded` selects
    /// the cheap path: greedy plan, no cache traffic, halved grant.
    /// `state` is the snapshot its caller loaded — the pipeline never
    /// re-reads shared state mid-flight, so the (store, config,
    /// stats_epoch) triple it works from is consistent end to end.
    fn submit_pipeline(
        &self,
        state: &ServiceState,
        input: QueryInput<'_>,
        opts: SubmitOptions,
        cancel: Option<&CancelToken>,
        pressure_degraded: bool,
    ) -> Result<QueryOutput, ServiceError> {
        let m = &self.inner.metrics;
        let deadline = opts.deadline.map(|d| Instant::now() + d);
        let store = Arc::clone(&state.store);
        let (config, config_fp) = (Arc::clone(&state.config), state.config_fp);
        let mut stages = StageBreakdown::default();
        let mut timer = StageTimer::start();
        // Front end: a textual submission pays parse + simplify +
        // fingerprint here; a prepared execution borrows all three from
        // its registration and goes straight to the cache probe.
        let compiled: zql::SimplifiedQuery;
        let text_fp: QueryFingerprint;
        let (env, plan, result_vars, order, fp): (
            &QueryEnv,
            &LogicalPlan,
            VarSet,
            Option<SortSpec>,
            &QueryFingerprint,
        ) = match input {
            QueryInput::Text(zql_src) => {
                let ast = zql::parser::parse(zql_src).map_err(|e| {
                    m.errors.inc();
                    ServiceError::Zql(e)
                })?;
                stages.parse_ns = timer.lap_into(&m.stage_parse);
                let q = zql::simplify(&ast, store.schema(), store.catalog()).map_err(|e| {
                    m.errors.inc();
                    ServiceError::Zql(e)
                })?;
                stages.simplify_ns = timer.lap_into(&m.stage_simplify);
                text_fp = fingerprint(&q.env, &q.plan, q.result_vars, q.order.as_ref());
                compiled = q;
                (
                    &compiled.env,
                    &compiled.plan,
                    compiled.result_vars,
                    compiled.order,
                    &text_fp,
                )
            }
            QueryInput::Prepared(stmt) => (
                &stmt.env,
                &stmt.plan,
                stmt.result_vars,
                stmt.order,
                &stmt.fp,
            ),
        };
        let epoch = store.catalog().stats_epoch();
        // Corrective selectivity overrides recorded for this fingerprint
        // under the current epoch, if drift feedback produced any. The
        // overlay fingerprint is part of the cache key, so the corrected
        // and catalog-only worlds can never serve each other's plans.
        let overlay = if opts.dynamic {
            None
        } else {
            self.inner.feedback.overlay_for(fp.hash, epoch)
        };
        let overlay_fp = overlay.as_ref().map_or(0, |o| o.fingerprint());
        let key = if opts.dynamic {
            CacheKey::dynamic_family(fp, config_fp, epoch, 0)
        } else {
            CacheKey::static_plan(
                fp,
                config_fp,
                epoch,
                store.catalog().index_set_hash(),
                overlay_fp,
            )
        };
        stages.fingerprint_ns = timer.lap_into(&m.stage_fingerprint);

        // A pressure-degraded submission bypasses the cache entirely: its
        // greedy plan is not worth caching, and a hit would be wasted on
        // a query about to run with half a grant anyway.
        let probed = if pressure_degraded {
            None
        } else {
            self.inner.cache.get(&key, &fp.key)
        };
        stages.cache_probe_ns = timer.lap_into(&m.stage_cache_probe);
        let (entry, cache_hit, degraded) = match probed {
            Some(entry) => (entry, true, false),
            None => {
                m.optimizer_runs.inc();
                let mut degraded = false;
                let body = if pressure_degraded {
                    // Degrade rung of the ladder: skip the Volcano search,
                    // take the estimator-annotated greedy plan.
                    m.pressure_degrades.inc();
                    degraded = true;
                    let (plan, cost, diagnostics) =
                        oodb_core::greedy_fallback(env, self.inner.params, plan, result_vars)
                            .ok_or_else(|| {
                                m.errors.inc();
                                ServiceError::NoPlan
                            })?;
                    m.verify_violations.add(diagnostics.len() as u64);
                    m.interval_violations
                        .add(count_interval_diags(&diagnostics));
                    CachedBody::Static { plan, cost }
                } else if opts.dynamic {
                    CachedBody::Dynamic(compile_dynamic(
                        env,
                        self.inner.params,
                        &config,
                        plan,
                        result_vars,
                    ))
                } else {
                    let mut optimizer = OpenOodb::new(env, self.inner.params, (*config).clone());
                    if let Some(ov) = overlay.as_ref() {
                        // Feedback-driven re-optimization: the search runs
                        // under corrected selectivities layered over the
                        // epoch snapshot — the catalog itself is never
                        // mutated.
                        m.reopt.inc();
                        optimizer = optimizer.with_overlay(Arc::clone(ov));
                    }
                    match optimizer.optimize_within(plan, result_vars, order, deadline) {
                        BoundedOutcome::Complete(out) => {
                            m.transform_firings.add(out.stats.transform_firings);
                            m.plans_costed.add(out.stats.plans_costed);
                            m.verify_violations.add(out.diagnostics.len() as u64);
                            m.interval_violations
                                .add(count_interval_diags(&out.diagnostics));
                            CachedBody::Static {
                                plan: out.plan,
                                cost: out.cost,
                            }
                        }
                        BoundedOutcome::DeadlineExpired => {
                            // Degradation ladder: full search → greedy.
                            // The greedy plan is still estimator-annotated
                            // and verifier-linted; it is just not optimal.
                            m.fallback_plans.inc();
                            degraded = true;
                            let (plan, cost, diagnostics) = oodb_core::greedy_fallback(
                                env,
                                self.inner.params,
                                plan,
                                result_vars,
                            )
                            .ok_or_else(|| {
                                m.errors.inc();
                                ServiceError::NoPlan
                            })?;
                            m.verify_violations.add(diagnostics.len() as u64);
                            m.interval_violations
                                .add(count_interval_diags(&diagnostics));
                            CachedBody::Static { plan, cost }
                        }
                        BoundedOutcome::Infeasible => {
                            m.errors.inc();
                            return Err(ServiceError::NoPlan);
                        }
                    }
                };
                // Misses pay one env clone for the cache entry (prepared
                // statements keep their compiled env registered; textual
                // submissions could move theirs, but a clone beside the
                // full Volcano search is noise and keeps one code path).
                let entry = Arc::new(CachedPlan {
                    structural: fp.key.clone(),
                    env: env.clone(),
                    result_vars,
                    body,
                });
                // Re-read the *current* epoch before inserting: if
                // statistics were recollected while we optimized, the
                // cache refuses the now-stale entry instead of pinning it.
                // Degraded plans are never cached — the next submission
                // deserves the full search.
                if !degraded {
                    self.inner
                        .cache
                        .note_epoch(self.store().catalog().stats_epoch());
                    self.inner.cache.insert(key, Arc::clone(&entry));
                }
                (entry, false, degraded)
            }
        };
        stages.optimize_ns = timer.lap_into(&m.stage_optimize);

        // Dynamic families: select the member for the indexes that exist
        // *now*. Static plans were keyed on the exact index set.
        let (plan, est_cost_s) = match &entry.body {
            CachedBody::Static { plan, cost } => (plan, cost.total()),
            CachedBody::Dynamic(family) => {
                let available: HashSet<String> = store
                    .catalog()
                    .indexes()
                    .map(|(_, d)| d.name.clone())
                    .collect();
                let alt = family.select(&available);
                (&alt.plan, alt.cost.total())
            }
        };

        let indexes_used = oodb_core::dynamic::indexes_used(&entry.env, plan);
        // A degraded plan executes without the deadline: once the search
        // has already timed out, a late best-effort answer beats an error.
        let exec_deadline = if degraded { None } else { deadline };
        // Memory grant: the caller's budget, else a quarter of governor
        // capacity so four queries can always progress concurrently. A
        // pressure-degraded run gets half of either — smaller footprint
        // now beats optimal hash tables later.
        let mut mem_budget = opts.mem_budget.or_else(|| {
            store
                .memory_governor()
                .map(|gov| (gov.capacity() / 4).max(1))
        });
        if pressure_degraded {
            mem_budget = mem_budget.map(|b| (b / 2).max(1));
        }
        // A suspect fingerprint with no recorded overrides yet gets one
        // traced probe execution: only the per-operator trace can
        // attribute root-level drift to individual predicates.
        let probe =
            !opts.trace && !opts.dynamic && !degraded && self.inner.feedback.wants_probe(fp.hash);
        let want_trace = opts.trace || probe;
        let mut retries_used = 0u32;
        let (result, stats, trace) = loop {
            let limits = RunLimits {
                deadline: exec_deadline,
                cancel: cancel.cloned(),
                row_budget: opts.row_budget,
                mem_budget,
            };
            let attempt = if want_trace {
                try_execute_traced(&store, &entry.env, plan, limits)
                    .map(|(r, s, t)| (r, s, Some(t)))
            } else if opts.exec_workers > 1 {
                try_execute_parallel(&store, &entry.env, plan, limits, opts.exec_workers)
                    .map(|(r, s)| (r, s, None))
            } else {
                try_execute(&store, &entry.env, plan, limits).map(|(r, s)| (r, s, None))
            };
            match attempt {
                Ok(v) => break v,
                Err(ExecError::Fault(f))
                    if f.class == FaultClass::Transient
                        && retries_used < opts.retries
                        && exec_deadline.is_none_or(|d| Instant::now() < d) =>
                {
                    retries_used += 1;
                    m.retries.inc();
                    // Exponential backoff from 100 µs, capped at 5 ms and
                    // clipped to the remaining deadline.
                    let mut backoff = Duration::from_micros(50u64 << retries_used.min(7))
                        .min(Duration::from_millis(5));
                    if let Some(d) = exec_deadline {
                        backoff = backoff.min(d.saturating_duration_since(Instant::now()));
                    }
                    thread::sleep(backoff);
                }
                Err(e) => {
                    m.errors.inc();
                    return Err(match e {
                        ExecError::Fault(f) => ServiceError::StorageFault {
                            transient: f.class == FaultClass::Transient,
                            retries: retries_used,
                        },
                        ExecError::Cancelled => ServiceError::Cancelled,
                        ExecError::DeadlineExceeded => {
                            m.timeouts.inc();
                            ServiceError::DeadlineExceeded { stage: "execute" }
                        }
                        ExecError::RowBudgetExceeded { budget } => {
                            ServiceError::RowBudgetExceeded { budget }
                        }
                        // Not retryable: the same budget would exhaust the
                        // same way. The breaker watches this error.
                        ExecError::MemoryExhausted { requested, budget } => {
                            ServiceError::MemoryExhausted { requested, budget }
                        }
                        other => ServiceError::Exec(other.to_string()),
                    });
                }
            }
        };
        stages.execute_ns = timer.lap_into(&m.stage_execute);
        m.record_exec(&stats);
        // Execute-time half of the interval audit: measured row counts
        // against the catalog-derived bounds. An escape here with a clean
        // verify pass means the statistics are stale, not the cost model.
        if let Some(t) = &trace {
            let actual_diags = oodb_core::verify::check_actual_cards(&entry.env, plan, t);
            m.actual_card_violations.add(actual_diags.len() as u64);
        }
        // Close the feedback loop on BOTH paths. The traced branch above
        // only fires under EXPLAIN ANALYZE; production executions feed
        // the drift detector through the root row-count sample the
        // executor returns for free, so stale estimates are caught even
        // with profiling off.
        if !opts.dynamic && !degraded {
            let fb = &self.inner.feedback;
            let obs = fb.observe_root(
                fp.hash,
                epoch,
                plan.est.out_card,
                stats.root_rows,
                overlay.is_some(),
            );
            if trace.is_none() && obs != Observation::InBounds {
                // Untraced counterpart of `check_actual_cards`: the root
                // estimate drifted past the threshold.
                m.actual_card_violations.inc();
            }
            if obs == Observation::NewlySuspect {
                // The cached plan was chosen from estimates we now know
                // to be wrong; evict it so the next submission re-plans
                // (and, once probed, re-optimizes under the overlay).
                self.inner.cache.remove(&key);
            }
            if let Some(t) = &trace {
                if fb.observe_trace(fp.hash, epoch, &entry.env, plan, t) > 0 && overlay.is_none() {
                    // Per-predicate overrides are now recorded: retire the
                    // catalog-only plan — the next probe keys on the
                    // overlay fingerprint and re-optimizes.
                    self.inner.cache.remove(&key);
                }
            }
        }
        let sim_io_s = stats.disk.total_s;
        if opts.realize_io_scale > 0.0 {
            thread::sleep(Duration::from_secs_f64(sim_io_s * opts.realize_io_scale));
        }

        let mut rows = render_rows(&entry.env, entry.result_vars, &result);
        let row_count = rows.len();
        rows.sort();
        Ok(QueryOutput {
            rows,
            row_count,
            cache_hit,
            compile_ns: stages.parse_ns + stages.simplify_ns,
            optimize_ns: stages.fingerprint_ns + stages.cache_probe_ns + stages.optimize_ns,
            execute_ns: stages.execute_ns,
            est_cost_s,
            sim_io_s,
            indexes_used,
            stages,
            buffer_hits: stats.buffer_hits,
            buffer_misses: stats.buffer_misses,
            // A probe trace is feedback-internal; callers only see traces
            // they asked for.
            trace: if opts.trace { trace } else { None },
            degraded,
            retries: retries_used,
            mem_peak_bytes: stats.mem.peak_bytes,
            spill_pages: stats.mem.spill_pages_written + stats.mem.spill_pages_read,
            stats_epoch: epoch,
            config_fp,
        })
    }
}

/// Counts the interval-cardinality findings in a verifier report (the
/// `card/interval` check), for the dedicated telemetry counter.
fn count_interval_diags(diags: &[oodb_core::verify::Diagnostic]) -> u64 {
    diags
        .iter()
        .filter(|d| d.check == oodb_core::verify::checks::CARD_INTERVAL)
        .count() as u64
}

/// Renders result rows deterministically. Tuple results project only the
/// query's *result* variables: different plans bind different auxiliary
/// variables (a materialized path object, say), and those must not leak
/// into the observable answer.
fn render_rows(
    env: &oodb_algebra::QueryEnv,
    result_vars: oodb_algebra::VarSet,
    result: &ExecResult,
) -> Vec<String> {
    match result {
        ExecResult::Rows(rows) => rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(oodb_object::Value::to_string).collect();
                cells.join(" | ")
            })
            .collect(),
        ExecResult::Tuples(tuples) => tuples
            .iter()
            .map(|t| {
                let cells: Vec<String> = env
                    .scopes
                    .iter()
                    .filter(|(id, _)| result_vars.contains(*id))
                    .filter_map(|(id, v)| t.try_get(id).map(|o| format!("{}={o}", v.name)))
                    .collect();
                cells.join("  ")
            })
            .collect(),
    }
}

type Reply = Result<QueryOutput, ServiceError>;

/// What one pool job executes.
enum JobKind {
    /// Raw ZQL text, parsed by the serving worker.
    Text(String),
    /// A prepared-statement id (no parsing on the worker).
    Prepared(u64),
    /// Test hook: a poison pill that makes the receiving worker retire
    /// without replying, simulating a worker death mid-job.
    Kill,
}

struct Job {
    kind: JobKind,
    opts: SubmitOptions,
    cancel: Option<CancelToken>,
    reply: mpsc::Sender<Reply>,
}

/// A handle to one enqueued submission.
pub struct Pending {
    rx: mpsc::Receiver<Reply>,
}

impl Pending {
    /// Blocks until the worker answers. If the worker died with the job
    /// in flight (its reply sender was dropped), this is
    /// [`ServiceError::WorkerLost`] — never a panic or a hang.
    pub fn wait(self) -> Reply {
        self.rx.recv().unwrap_or(Err(ServiceError::WorkerLost))
    }

    /// Waits up to `timeout` for the reply. `None` means no reply arrived
    /// in time — the job may still be queued or running (e.g. waiting on
    /// a worker respawn) and can complete later.
    pub fn wait_timeout(self, timeout: Duration) -> Option<Reply> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => Some(reply),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServiceError::WorkerLost)),
        }
    }
}

/// State shared between the pool handle and its worker threads, so a
/// replacement worker can be spawned from the same queues and registry.
///
/// Each worker slot owns its own channel: dequeue never serializes
/// across workers on one shared receiver lock (the old design's
/// bottleneck at high thread counts). A slot's mutex is only ever taken
/// by the one worker bound to that slot — it exists so a *respawned*
/// worker can adopt its dead predecessor's receiver, keeping queued
/// jobs alive across worker deaths.
struct PoolShared {
    rxs: Vec<Mutex<mpsc::Receiver<Job>>>,
    svc: QueryService,
    reg: Arc<MetricsRegistry>,
    queue_depth: Gauge,
    /// Jobs enqueued but not yet dequeued — the ledger behind the
    /// bounded-queue admission check (the gauge is display-only).
    queued: AtomicUsize,
}

fn spawn_worker(shared: &Arc<PoolShared>, i: usize) -> thread::JoinHandle<()> {
    let shared = Arc::clone(shared);
    thread::Builder::new()
        .name(format!("oodb-worker-{i}"))
        .spawn(move || {
            let worker = i.to_string();
            // Registration is get-or-create, so a respawned worker
            // reclaims its predecessor's gauges and counters.
            let busy = shared.reg.gauge("oodb_worker_busy", &[("worker", &worker)]);
            let jobs = shared
                .reg
                .counter("oodb_worker_jobs_total", &[("worker", &worker)]);
            loop {
                // This slot's receiver; uncontended (one worker per slot).
                let job = match lock_mutex(&shared.rxs[i]).recv() {
                    Ok(job) => job,
                    Err(_) => break,
                };
                shared.queued.fetch_sub(1, Ordering::Relaxed);
                shared.queue_depth.sub(1);
                busy.set(1);
                jobs.inc();
                if matches!(job.kind, JobKind::Kill) {
                    // Retire without replying: the dropped reply sender
                    // surfaces as WorkerLost and the next enqueue respawns.
                    busy.set(0);
                    break;
                }
                // `submit_guarded` already converts pipeline panics into
                // typed errors; this outer boundary covers everything
                // else (reply plumbing, metrics). A worker that panics
                // anyway retires silently and is respawned.
                let out = catch_unwind(AssertUnwindSafe(|| match &job.kind {
                    JobKind::Text(zql) => {
                        shared
                            .svc
                            .submit_guarded(zql, job.opts, job.cancel.as_ref())
                    }
                    JobKind::Prepared(id) => {
                        shared
                            .svc
                            .submit_prepared_guarded(*id, job.opts, job.cancel.as_ref())
                    }
                    JobKind::Kill => unreachable!("kill handled above"),
                }));
                busy.set(0);
                match out {
                    Ok(reply) => {
                        let _ = job.reply.send(reply);
                    }
                    Err(_) => break,
                }
            }
        })
        .expect("spawn worker thread")
}

/// N `std::thread` workers, each with its own job channel; submissions
/// are distributed round-robin. Dead workers (panics, poison pills) are
/// detected and respawned on the next enqueue — a respawn adopts the
/// dead slot's receiver, so jobs already queued there still run. Jobs a
/// worker died *holding* surface as [`ServiceError::WorkerLost`] rather
/// than hanging or panicking the caller.
pub struct WorkerPool {
    /// Per-slot senders; `None` after shutdown closed the queues.
    txs: Option<Vec<mpsc::Sender<Job>>>,
    shared: Arc<PoolShared>,
    /// Worker slots: (slot index, live handle). A slot's handle is
    /// replaced when the worker is found dead.
    handles: Mutex<Vec<(usize, thread::JoinHandle<()>)>>,
    /// Round-robin cursor over the worker slots.
    next: AtomicUsize,
    queue_depth: Gauge,
    respawns: Counter,
    /// Maximum queued (not yet dequeued) jobs across all slots; 0 =
    /// unbounded. The excess is shed at enqueue with
    /// [`ShedReason::QueueFull`].
    queue_limit: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads serving `service`. The pool registers a
    /// shared `oodb_queue_depth` gauge (incremented on enqueue, decremented
    /// on dequeue), an `oodb_worker_respawns_total` counter, plus
    /// per-worker `oodb_worker_busy` gauges and `oodb_worker_jobs_total`
    /// counters in the service's registry. The queue is unbounded; use
    /// [`WorkerPool::with_queue_limit`] for load shedding.
    pub fn new(service: QueryService, workers: usize) -> Self {
        WorkerPool::build(service, workers, 0)
    }

    /// As [`WorkerPool::new`], but the queue holds at most `queue_limit`
    /// not-yet-dequeued jobs: submissions past the limit resolve
    /// immediately to [`ServiceError::Overloaded`] with
    /// [`ShedReason::QueueFull`] instead of queueing without bound —
    /// bounded staleness beats unbounded latency under saturation.
    pub fn with_queue_limit(service: QueryService, workers: usize, queue_limit: usize) -> Self {
        WorkerPool::build(service, workers, queue_limit.max(1))
    }

    fn build(service: QueryService, workers: usize, queue_limit: usize) -> Self {
        let workers = workers.max(1);
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..workers)
            .map(|_| {
                let (tx, rx) = mpsc::channel::<Job>();
                (tx, Mutex::new(rx))
            })
            .unzip();
        let reg = Arc::clone(service.telemetry());
        let queue_depth = reg.gauge("oodb_queue_depth", &[]);
        let respawns = reg.counter("oodb_worker_respawns_total", &[]);
        let shared = Arc::new(PoolShared {
            rxs,
            svc: service,
            reg,
            queue_depth: queue_depth.clone(),
            queued: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| (i, spawn_worker(&shared, i)))
            .collect();
        WorkerPool {
            txs: Some(txs),
            shared,
            handles: Mutex::new(handles),
            next: AtomicUsize::new(0),
            queue_depth,
            respawns,
            queue_limit,
        }
    }

    /// Replaces every dead worker with a fresh thread on the same slot.
    fn reap(&self) {
        let mut handles = lock_mutex(&self.handles);
        for slot in handles.iter_mut() {
            if slot.1.is_finished() {
                let fresh = spawn_worker(&self.shared, slot.0);
                let dead = std::mem::replace(&mut slot.1, fresh);
                let _ = dead.join();
                self.respawns.inc();
            }
        }
    }

    fn enqueue(&self, kind: JobKind, opts: SubmitOptions, cancel: Option<CancelToken>) -> Pending {
        self.reap();
        let (reply, rx) = mpsc::channel();
        // Bounded-queue shed: resolve the handle immediately instead of
        // queueing. Poison pills (tests) are exempt — they must always
        // reach a worker.
        if !matches!(kind, JobKind::Kill)
            && self.queue_limit > 0
            && self.shared.queued.load(Ordering::Relaxed) >= self.queue_limit
        {
            self.shared
                .svc
                .inner
                .metrics
                .record_shed(ShedReason::QueueFull);
            let _ = reply.send(Err(ServiceError::Overloaded {
                reason: ShedReason::QueueFull,
            }));
            return Pending { rx };
        }
        self.shared.queued.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.add(1);
        if let Some(txs) = self.txs.as_ref() {
            // Round-robin over per-worker queues: senders never contend
            // with each other or with dequeuing workers.
            let slot = self.next.fetch_add(1, Ordering::Relaxed) % txs.len();
            // The receiver lives in PoolShared, so this send cannot fail
            // while the pool exists; `let _ =` keeps shutdown races benign.
            let _ = txs[slot].send(Job {
                kind,
                opts,
                cancel,
                reply,
            });
        }
        Pending { rx }
    }

    /// Enqueues a query; the returned handle yields the result.
    pub fn submit(&self, zql: impl Into<String>, opts: SubmitOptions) -> Pending {
        self.enqueue(JobKind::Text(zql.into()), opts, None)
    }

    /// Enqueues a prepared-statement execution by id; the serving worker
    /// skips parsing entirely.
    pub fn submit_prepared(&self, id: u64, opts: SubmitOptions) -> Pending {
        self.enqueue(JobKind::Prepared(id), opts, None)
    }

    /// Enqueues a query with a [`CancelToken`] the caller can trip from
    /// any thread to stop the execution cooperatively.
    pub fn submit_cancellable(
        &self,
        zql: impl Into<String>,
        opts: SubmitOptions,
        cancel: &CancelToken,
    ) -> Pending {
        self.enqueue(JobKind::Text(zql.into()), opts, Some(cancel.clone()))
    }

    /// As [`WorkerPool::submit_prepared`], with a [`CancelToken`].
    pub fn submit_prepared_cancellable(
        &self,
        id: u64,
        opts: SubmitOptions,
        cancel: &CancelToken,
    ) -> Pending {
        self.enqueue(JobKind::Prepared(id), opts, Some(cancel.clone()))
    }

    /// Test hook: enqueues a poison pill that kills the worker that
    /// dequeues it. The returned handle yields
    /// [`ServiceError::WorkerLost`]; the next enqueue respawns the worker.
    #[doc(hidden)]
    pub fn kill_worker_for_test(&self) -> Pending {
        self.enqueue(JobKind::Kill, SubmitOptions::default(), None)
    }

    /// Drains the queues and joins every worker.
    pub fn shutdown(mut self) {
        self.txs.take(); // close every per-worker queue
        for (_, h) in lock_mutex(&self.handles).drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.txs.take();
        for (_, h) in lock_mutex(&self.handles).drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_storage::{generate_paper_db, GenConfig};

    fn small_service() -> QueryService {
        let (store, _model) = generate_paper_db(GenConfig {
            scale_div: 100,
            ..Default::default()
        });
        QueryService::new(
            store,
            CostParams::default(),
            OptimizerConfig::all_rules(),
            64,
            4,
        )
    }

    const Q_TIME: &str = "SELECT t FROM Task t IN Tasks WHERE t.time() == 100";

    /// An explicit equi-join over the two largest extents. Paired with
    /// [`hash_join_service`], whose config disables the pointer- and
    /// merge-join implementations, it is guaranteed to execute as a
    /// hybrid hash join — the memory-hungry operator the governor tests
    /// need.
    const Q_JOIN: &str = "SELECT Newobject(e.name(), d.name()) \
                          FROM Employee e IN Employees, Department d IN Department \
                          WHERE e.dept() == d";

    fn hash_join_service() -> QueryService {
        let (store, _model) = generate_paper_db(GenConfig {
            scale_div: 100,
            ..Default::default()
        });
        QueryService::new(
            store,
            CostParams::default(),
            OptimizerConfig::without(&[
                oodb_core::config::rule_names::POINTER_JOIN,
                oodb_core::config::rule_names::MERGE_JOIN,
            ]),
            64,
            4,
        )
    }

    /// A database whose `Employees` set is half Freds while the catalog
    /// still claims ≈1% — the estimate-drift fixture.
    fn skewed_service() -> QueryService {
        let (store, _model) = generate_paper_db(GenConfig {
            scale_div: 100,
            hot_employee_name_fraction: 0.5,
            ..Default::default()
        });
        QueryService::new(
            store,
            CostParams::default(),
            OptimizerConfig::all_rules(),
            64,
            4,
        )
    }

    const Q_FRED: &str = "SELECT e FROM Employee e IN Employees WHERE e.name() == \"Fred\"";

    /// Regression test for the headline bug: drift detection used to run
    /// only under `EXPLAIN ANALYZE` (`opts.trace`), so production
    /// executions never moved `oodb_actual_card_violations_total` and the
    /// feedback loop was silently disabled on the hot path.
    #[test]
    fn untraced_executions_feed_the_drift_detector() {
        let svc = skewed_service();
        let out = svc.submit(Q_FRED).unwrap();
        assert!(out.trace.is_none(), "no trace was requested");
        let text = svc.metrics_prometheus();
        assert!(
            text.contains("oodb_actual_card_violations_total 1"),
            "untraced drift must move the violation counter: {text}"
        );
        let stats = svc.feedback_stats();
        assert_eq!(stats.suspect, 1, "{stats:?}");
        assert!(stats.worst_drift >= 10.0, "{stats:?}");
    }

    #[test]
    fn drift_ladder_probes_then_reoptimizes_under_an_overlay() {
        let svc = skewed_service();
        // 1: miss → catalog-only plan; root sample trips the threshold,
        //    the cached plan is evicted.
        let first = svc.submit(Q_FRED).unwrap();
        assert!(!first.cache_hit);
        // 2: suspect with no overrides yet → internally-traced probe;
        //    per-operator actuals become selectivity overrides. The probe
        //    trace is not surfaced to the caller.
        let second = svc.submit(Q_FRED).unwrap();
        assert!(second.trace.is_none(), "probe traces are internal");
        assert!(
            svc.feedback_stats().overrides > 0,
            "probe must record overrides"
        );
        // 3: overlay-keyed cache miss → re-optimization under corrected
        //    selectivities.
        let third = svc.submit(Q_FRED).unwrap();
        assert!(!third.cache_hit, "overlay key must force a re-plan");
        assert_eq!(first.rows, third.rows, "plans must agree on the answer");
        let text = svc.metrics_prometheus();
        assert!(text.contains("oodb_reopt_total 1"), "{text}");
        // 4: the corrected plan is cached under the overlay key and the
        //    corrected execution does not re-trip the ladder.
        let fourth = svc.submit(Q_FRED).unwrap();
        assert!(fourth.cache_hit, "corrected plan must be served from cache");
        let text = svc.metrics_prometheus();
        assert!(
            text.contains("oodb_reopt_total 1"),
            "no re-opt loop: {text}"
        );
        assert!(
            text.contains("oodb_feedback_overrides_active"),
            "gauge must export: {text}"
        );
    }

    #[test]
    fn stats_refresh_retires_suspect_markers() {
        let svc = skewed_service();
        svc.submit(Q_FRED).unwrap();
        assert_eq!(svc.feedback_stats().suspect, 1);
        // Refreshing statistics bumps the epoch; feedback gathered under
        // the old distribution (including suspect markers) is retired.
        svc.refresh_statistics(8);
        let stats = svc.feedback_stats();
        assert_eq!(
            (stats.tracked, stats.suspect),
            (0, 0),
            "stale feedback must not survive an epoch bump: {stats:?}"
        );
    }

    #[test]
    fn second_submit_hits_the_cache() {
        let svc = small_service();
        let first = svc.submit(Q_TIME).unwrap();
        assert!(!first.cache_hit);
        let second = svc.submit(Q_TIME).unwrap();
        assert!(second.cache_hit, "identical re-parse must hit");
        assert_eq!(first.rows, second.rows);
        let stats = svc.cache().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn textual_variants_share_an_entry() {
        let svc = small_service();
        let a = svc
            .submit("SELECT t FROM Task t IN Tasks WHERE t.time() == 100")
            .unwrap();
        let b = svc
            .submit("SELECT zz FROM Task zz IN Tasks WHERE 100 == zz.time()")
            .unwrap();
        assert!(!a.cache_hit);
        assert!(b.cache_hit, "renamed variable + flipped Eq must collide");
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn parse_errors_surface() {
        let svc = small_service();
        assert!(matches!(
            svc.submit("SELECT FROM WHERE"),
            Err(ServiceError::Zql(_))
        ));
    }

    #[test]
    fn dynamic_family_is_cached_and_selects() {
        let svc = small_service();
        let opts = SubmitOptions {
            dynamic: true,
            ..Default::default()
        };
        let a = svc.submit_with(Q_TIME, opts).unwrap();
        assert!(!a.cache_hit);
        let b = svc.submit_with(Q_TIME, opts).unwrap();
        assert!(b.cache_hit);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn stage_breakdown_and_counters_populate() {
        let svc = small_service();
        svc.set_profiling(true);
        let out = svc.submit(Q_TIME).unwrap();
        assert_eq!(out.compile_ns, out.stages.parse_ns + out.stages.simplify_ns);
        assert_eq!(
            out.optimize_ns,
            out.stages.fingerprint_ns + out.stages.cache_probe_ns + out.stages.optimize_ns
        );
        assert_eq!(out.execute_ns, out.stages.execute_ns);
        let text = svc.metrics_prometheus();
        assert!(text.contains("oodb_submissions_total 1"));
        assert!(text.contains("oodb_optimizer_runs_total 1"));
        assert!(text.contains("oodb_plancache_misses_total 1"));
        assert!(text.contains(r#"oodb_stage_latency_ns_count{stage="parse"} 1"#));
        let json = svc.metrics_json();
        assert!(json.contains(r#""name": "oodb_submissions_total""#));
    }

    #[test]
    fn traced_submit_reconciles_with_row_count() {
        let svc = small_service();
        let opts = SubmitOptions {
            trace: true,
            ..Default::default()
        };
        let out = svc.submit_with(Q_TIME, opts).unwrap();
        let trace = out.trace.expect("trace requested");
        assert_eq!(trace.actual_rows, out.row_count as u64);
        assert!(svc.submit(Q_TIME).unwrap().trace.is_none());
    }

    #[test]
    fn errors_are_counted() {
        let svc = small_service();
        let _ = svc.submit("SELECT FROM WHERE");
        let text = svc.metrics_prometheus();
        assert!(text.contains("oodb_submission_errors_total 1"));
    }

    #[test]
    fn prepared_statements_share_ids_and_hit_the_cache() {
        let svc = small_service();
        let (stmt, created) = svc.prepare(Q_TIME).unwrap();
        assert!(created);
        // A textual variant (renamed var, flipped Eq) collides on the
        // canonical fingerprint: same statement, not a new registration.
        let (variant, created2) = svc
            .prepare("SELECT zz FROM Task zz IN Tasks WHERE 100 == zz.time()")
            .unwrap();
        assert!(!created2);
        assert_eq!(stmt.id, variant.id);
        // First execute fills the plan cache; the second hits by id.
        let a = svc
            .submit_prepared_with(stmt.id, SubmitOptions::default())
            .unwrap();
        assert!(!a.cache_hit);
        let b = svc
            .submit_prepared_with(stmt.id, SubmitOptions::default())
            .unwrap();
        assert!(b.cache_hit, "prepared execute must hit by id");
        assert_eq!(a.rows, b.rows);
        // Ad-hoc text of the same query shares the cached plan too.
        assert!(svc.submit(Q_TIME).unwrap().cache_hit);
        assert_eq!(
            (a.stages.parse_ns, a.stages.simplify_ns),
            (0, 0),
            "prepared executions never parse"
        );
        let text = svc.metrics_prometheus();
        assert!(text.contains("oodb_prepares_total 1"), "{text}");
        assert!(text.contains("oodb_prepared_statements 1"), "{text}");
        assert!(text.contains("oodb_prepared_executes_total 2"), "{text}");
    }

    #[test]
    fn unknown_statement_is_typed_and_deallocate_unregisters() {
        let svc = small_service();
        assert_eq!(
            svc.submit_prepared_with(42, SubmitOptions::default()),
            Err(ServiceError::UnknownStatement { id: 42 })
        );
        let (stmt, _) = svc.prepare(Q_TIME).unwrap();
        assert!(svc.prepared(stmt.id).is_some());
        assert!(svc.deallocate(stmt.id));
        assert!(!svc.deallocate(stmt.id), "second deallocate is a no-op");
        assert_eq!(
            svc.submit_prepared_with(stmt.id, SubmitOptions::default()),
            Err(ServiceError::UnknownStatement { id: stmt.id })
        );
    }

    #[test]
    fn prepared_execution_survives_stats_epoch_bumps() {
        let svc = small_service();
        let (stmt, _) = svc.prepare(Q_TIME).unwrap();
        let before = svc
            .submit_prepared_with(stmt.id, SubmitOptions::default())
            .unwrap();
        // A statistics refresh bumps the epoch: the next execute misses
        // the cache (stale key) but still answers, re-optimizing from the
        // registered compiled query.
        svc.refresh_statistics(8);
        let after = svc
            .submit_prepared_with(stmt.id, SubmitOptions::default())
            .unwrap();
        assert!(!after.cache_hit, "epoch bump must invalidate by key");
        assert_eq!(before.rows, after.rows);
        assert!(after.stats_epoch > before.stats_epoch);
    }

    #[test]
    fn pool_serves_prepared_executions() {
        let svc = small_service();
        let (stmt, _) = svc.prepare(Q_TIME).unwrap();
        let expect = svc.submit(Q_TIME).unwrap();
        let pool = WorkerPool::new(svc, 2);
        let pending: Vec<Pending> = (0..8)
            .map(|_| pool.submit_prepared(stmt.id, SubmitOptions::default()))
            .collect();
        for p in pending {
            let out = p.wait().unwrap();
            assert!(out.cache_hit);
            assert_eq!(out.rows, expect.rows);
        }
        pool.shutdown();
    }

    #[test]
    fn pool_round_trip() {
        let svc = small_service();
        let pool = WorkerPool::new(svc, 2);
        let pending: Vec<Pending> = (0..8)
            .map(|_| pool.submit(Q_TIME, SubmitOptions::default()))
            .collect();
        let outs: Vec<QueryOutput> = pending.into_iter().map(|p| p.wait().unwrap()).collect();
        for o in &outs[1..] {
            assert_eq!(o.rows, outs[0].rows);
        }
        pool.shutdown();
    }

    #[test]
    fn panicking_mutator_does_not_wedge_snapshot_state() {
        let svc = small_service();
        // Panic *inside* a snapshot update closure: the writer mutex is
        // abandoned mid-section, which is exactly the poisoning shape
        // the old RwLock design had to recover from.
        let s = svc.clone();
        let _ = catch_unwind(AssertUnwindSafe(|| {
            s.inner.state.update(|_| -> (ServiceState, ()) {
                panic!("poison the snapshot writer lock");
            });
        }));
        // The service keeps working: the published snapshot is still the
        // intact pre-panic value, and both readers and writers recover.
        assert!(svc.submit(Q_TIME).is_ok());
        svc.set_config(OptimizerConfig::all_rules());
        svc.refresh_statistics(8);
        assert!(svc.submit(Q_TIME).is_ok());
    }

    #[test]
    fn combined_swap_is_observed_atomically() {
        let svc = small_service();
        let before = svc.snapshot_identity();
        // A combined statistics+config swap either happened entirely or
        // not at all from any reader's point of view.
        svc.refresh_statistics_with_config(
            8,
            OptimizerConfig::without(&[oodb_core::config::rule_names::MERGE_JOIN]),
        );
        let after = svc.snapshot_identity();
        assert_ne!(before, after);
        let out = svc.submit(Q_TIME).unwrap();
        assert_eq!((out.stats_epoch, out.config_fp), after);
    }

    #[test]
    fn injected_panic_is_caught_and_service_stays_healthy() {
        let svc = small_service();
        svc.attach_fault_injector(FaultInjector::new(oodb_fault::FaultConfig {
            panic_rate: 1.0,
            ..Default::default()
        }));
        let err = svc.submit(Q_TIME).unwrap_err();
        assert!(matches!(err, ServiceError::Panicked(_)), "{err:?}");
        let text = svc.metrics_prometheus();
        assert!(text.contains("oodb_submission_panics_total 1"), "{text}");
        // Detach and the same service (same locks, same cache) recovers.
        svc.detach_fault_injector();
        assert!(svc.submit(Q_TIME).is_ok());
    }

    #[test]
    fn worker_death_surfaces_as_worker_lost_and_respawns() {
        let svc = small_service();
        let pool = WorkerPool::new(svc.clone(), 1);
        assert_eq!(
            pool.kill_worker_for_test().wait(),
            Err(ServiceError::WorkerLost)
        );
        // The next submissions respawn the dead worker and are served.
        // `wait_timeout` guards the race where the enqueue's reap ran
        // before the dead thread was observably finished: that job sits
        // queued until a later enqueue respawns the worker.
        let mut served = false;
        for _ in 0..100 {
            let pending = pool.submit(Q_TIME, SubmitOptions::default());
            if matches!(
                pending.wait_timeout(Duration::from_millis(200)),
                Some(Ok(_))
            ) {
                served = true;
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert!(served, "respawned worker must serve new submissions");
        let text = svc.metrics_prometheus();
        assert!(text.contains("oodb_worker_respawns_total 1"), "{text}");
        pool.shutdown();
    }

    #[test]
    fn cancelled_submission_returns_typed_error() {
        let svc = small_service();
        let cancel = CancelToken::new();
        cancel.cancel();
        assert_eq!(
            svc.submit_cancellable(Q_TIME, SubmitOptions::default(), &cancel),
            Err(ServiceError::Cancelled)
        );
        // A fresh token does not interfere.
        let fresh = CancelToken::new();
        assert!(svc
            .submit_cancellable(Q_TIME, SubmitOptions::default(), &fresh)
            .is_ok());
    }

    #[test]
    fn row_budget_zero_is_rejected_with_budget_in_error() {
        let svc = small_service();
        let opts = SubmitOptions {
            row_budget: Some(0),
            ..Default::default()
        };
        assert_eq!(
            svc.submit_with(Q_TIME, opts),
            Err(ServiceError::RowBudgetExceeded { budget: 0 })
        );
    }

    #[test]
    fn tight_memory_budget_spills_and_still_answers() {
        let svc = hash_join_service();
        svc.attach_memory_governor(MemoryGovernor::new(64 << 20));
        let free = svc
            .submit_with(
                Q_JOIN,
                SubmitOptions {
                    mem_budget: Some(64 << 20),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(free.spill_pages, 0, "a wide grant must not spill");
        assert!(free.mem_peak_bytes > 0, "a hash join must reserve memory");
        let tight = svc
            .submit_with(
                Q_JOIN,
                SubmitOptions {
                    mem_budget: Some(512),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(tight.rows, free.rows, "spilling must not change answers");
        assert!(tight.spill_pages > 0, "512 bytes must force a spill");
        assert!(tight.mem_peak_bytes <= 512, "{}", tight.mem_peak_bytes);
        let gov = svc.memory_governor().unwrap();
        assert_eq!(gov.stats().reserved, 0, "grants must drain at quiesce");
        let text = svc.metrics_prometheus();
        assert!(
            text.contains("oodb_exec_spill_pages_written_total"),
            "{text}"
        );
        assert!(text.contains("oodb_mem_capacity_bytes"), "{text}");
    }

    #[test]
    fn memory_exhausted_is_typed_and_not_retried() {
        let svc = hash_join_service();
        let err = svc
            .submit_with(
                Q_JOIN,
                SubmitOptions {
                    mem_budget: Some(0),
                    retries: 8,
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(
            matches!(err, ServiceError::MemoryExhausted { budget: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn inflight_cap_sheds_concurrent_submissions() {
        let svc = small_service();
        svc.set_admission(AdmissionConfig {
            max_inflight: 1,
            ..Default::default()
        });
        // Hold the one slot by submitting from another thread with
        // realized I/O, then saturate from this one.
        let bg = svc.clone();
        let slow = thread::spawn(move || {
            bg.submit_with(
                Q_TIME,
                SubmitOptions {
                    realize_io_scale: 50.0,
                    ..Default::default()
                },
            )
        });
        // Wait until the background submission is admitted.
        for _ in 0..200 {
            if svc.inner.inflight.load(Ordering::Relaxed) > 0 {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        let shed = svc.submit(Q_TIME).unwrap_err();
        assert_eq!(
            shed,
            ServiceError::Overloaded {
                reason: ShedReason::QueueFull
            }
        );
        assert!(slow.join().unwrap().is_ok(), "in-flight work must finish");
        // With the slot free again, submissions are admitted.
        assert!(svc.submit(Q_TIME).is_ok());
        let text = svc.metrics_prometheus();
        assert!(
            text.contains(r#"oodb_shed_total{reason="queue_full"} 1"#),
            "{text}"
        );
    }

    #[test]
    fn breaker_trips_on_resource_failures_and_half_opens() {
        let svc = hash_join_service();
        svc.set_admission(AdmissionConfig {
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(40),
            ..Default::default()
        });
        let exhaust = SubmitOptions {
            mem_budget: Some(0),
            ..Default::default()
        };
        // Two consecutive memory exhaustions trip the breaker...
        for _ in 0..2 {
            assert!(matches!(
                svc.submit_with(Q_JOIN, exhaust).unwrap_err(),
                ServiceError::MemoryExhausted { .. }
            ));
        }
        // ...so the next submission sheds without executing, even though
        // it carries no budget problem of its own.
        assert_eq!(
            svc.submit(Q_TIME).unwrap_err(),
            ServiceError::Overloaded {
                reason: ShedReason::CircuitOpen
            }
        );
        let text = svc.metrics_prometheus();
        assert!(text.contains("oodb_breaker_trips_total 1"), "{text}");
        assert!(text.contains("oodb_breaker_open 1"), "{text}");
        // After the cooldown the breaker half-opens; a healthy probe
        // closes it and service resumes.
        thread::sleep(Duration::from_millis(60));
        assert!(svc.submit(Q_TIME).is_ok());
        assert!(svc.submit(Q_TIME).is_ok());
        let text = svc.metrics_prometheus();
        assert!(text.contains("oodb_breaker_open 0"), "{text}");
    }

    #[test]
    fn half_open_probe_failure_retrips_immediately() {
        let svc = hash_join_service();
        svc.set_admission(AdmissionConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(40),
            ..Default::default()
        });
        let exhaust = SubmitOptions {
            mem_budget: Some(0),
            ..Default::default()
        };
        let _ = svc.submit_with(Q_JOIN, exhaust); // trips
        thread::sleep(Duration::from_millis(60));
        let _ = svc.submit_with(Q_JOIN, exhaust); // half-open probe fails
        assert_eq!(
            svc.submit(Q_TIME).unwrap_err(),
            ServiceError::Overloaded {
                reason: ShedReason::CircuitOpen
            }
        );
        assert!(svc
            .metrics_prometheus()
            .contains("oodb_breaker_trips_total 2"));
    }

    #[test]
    fn pressure_ladder_degrades_then_sheds() {
        let svc = small_service();
        let gov = MemoryGovernor::new(1000);
        svc.attach_memory_governor(gov.clone());
        svc.set_admission(AdmissionConfig {
            degrade_under_pressure: true,
            ..Default::default()
        });
        // Nominal pressure: full search, not degraded.
        let calm = svc.submit(Q_TIME).unwrap();
        assert!(!calm.degraded);
        // An outside tenant pushes reservation over 90%: critical → shed.
        let hog = gov.grant(None);
        assert!(hog.try_reserve(950));
        assert_eq!(
            svc.submit(Q_TIME).unwrap_err(),
            ServiceError::Overloaded {
                reason: ShedReason::MemoryPressure
            }
        );
        // Down to high (75–90%): degrade — greedy plan, answer still right.
        hog.release(150);
        let degraded = svc.submit(Q_TIME).unwrap();
        assert!(degraded.degraded, "High pressure must degrade");
        assert_eq!(degraded.rows, calm.rows);
        assert!(!degraded.cache_hit, "degraded runs bypass the cache");
        // Released: back to the full search.
        drop(hog);
        assert!(!svc.submit(Q_TIME).unwrap().degraded);
        let text = svc.metrics_prometheus();
        assert!(
            text.contains(r#"oodb_shed_total{reason="memory_pressure"} 1"#),
            "{text}"
        );
        assert!(text.contains("oodb_pressure_degrades_total 1"), "{text}");
    }

    #[test]
    fn bounded_pool_sheds_when_queue_is_full() {
        let svc = small_service();
        let pool = WorkerPool::with_queue_limit(svc.clone(), 1, 1);
        // One slow job occupies the worker, the next fills the queue;
        // everything past that sheds instantly with a typed error.
        let slow_opts = SubmitOptions {
            realize_io_scale: 50.0,
            ..Default::default()
        };
        let running = pool.submit(Q_TIME, slow_opts);
        // Wait until the worker has *dequeued* the slow job; otherwise it
        // still occupies the 1-deep queue and the whole burst sheds.
        for _ in 0..400 {
            if pool.shared.queued.load(Ordering::Relaxed) == 0 {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        let burst: Vec<Pending> = (0..16)
            .map(|_| pool.submit(Q_TIME, SubmitOptions::default()))
            .collect();
        let (mut served, mut shed) = (0usize, 0usize);
        for p in burst {
            match p.wait() {
                Ok(_) => served += 1,
                Err(ServiceError::Overloaded {
                    reason: ShedReason::QueueFull,
                }) => shed += 1,
                Err(other) => panic!("unexpected reply: {other:?}"),
            }
        }
        assert!(shed > 0, "a 1-deep queue must shed under a 16-burst");
        assert!(served > 0, "queued jobs must still be served");
        assert!(running.wait().is_ok(), "in-flight work must finish");
        let text = svc.metrics_prometheus();
        assert!(
            text.contains(r#"oodb_shed_total{reason="queue_full"}"#),
            "{text}"
        );
        pool.shutdown();
    }

    #[test]
    fn plancache_bytes_gauge_exports() {
        let svc = small_service();
        svc.submit(Q_TIME).unwrap();
        let text = svc.metrics_prometheus();
        let line = text
            .lines()
            .find(|l| l.starts_with("oodb_plancache_bytes "))
            .expect("gauge exported");
        let v: i64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(v > 0, "resident bytes must be positive after an insert");
    }

    #[test]
    fn transient_faults_retry_to_success_and_are_counted() {
        let svc = small_service();
        svc.attach_fault_injector(FaultInjector::new(oodb_fault::FaultConfig {
            read_fault_rate: 0.05,
            permanent_ratio: 0.0,
            ..Default::default()
        }));
        let opts = SubmitOptions {
            retries: 64,
            ..Default::default()
        };
        let out = svc.submit_with(Q_TIME, opts).expect("retries must win");
        assert!(!out.degraded);
        let inj = svc.fault_injector().unwrap();
        assert_eq!(inj.stats().permanent, 0);
        // Every injected transient fault cost exactly one retry.
        assert_eq!(out.retries as u64, inj.stats().transient);
        let text = svc.metrics_prometheus();
        assert!(
            text.contains(&format!("oodb_retries_total {}", out.retries)),
            "{text}"
        );
    }

    #[test]
    fn durable_mutations_recover_to_identical_query_results() {
        let dir = oodb_wal::ScratchDir::new("svc-durable").unwrap();
        let svc = small_service();
        svc.enable_durability(dir.path(), FlushPolicy::EveryRecord)
            .unwrap();
        // A logged mutation: bumps the epoch and refines the catalog.
        svc.refresh_statistics(24);
        let live = svc.submit(Q_TIME).expect("live query");
        let stats = svc.durability_stats().expect("durability on");
        assert_eq!(stats.records, 1);
        assert!(!stats.poisoned);
        let text = svc.metrics_prometheus();
        assert!(text.contains("oodb_wal_records_total 1"), "{text}");

        let (back, report) = QueryService::recover(
            dir.path(),
            CostParams::default(),
            OptimizerConfig::all_rules(),
            64,
            4,
            FlushPolicy::EveryRecord,
        )
        .expect("recovery");
        assert_eq!(report.replayed_records, 1);
        assert!(report.stopped.is_none());
        assert_eq!(
            oodb_wal::store_digest(&svc.store()),
            oodb_wal::store_digest(&back.store()),
            "recovered store must match the live one bit for bit"
        );
        let replayed = back.submit(Q_TIME).expect("recovered query");
        assert_eq!(live.rows, replayed.rows);
        assert_eq!(live.stats_epoch, replayed.stats_epoch);
        // The recovered service resumed logging: its session starts at
        // the recovered sequence with an empty, freshly compacted log.
        assert!(back.durability_enabled());
        let rtext = back.metrics_prometheus();
        assert!(rtext.contains("oodb_recovery_replayed_total 1"), "{rtext}");
    }
}
