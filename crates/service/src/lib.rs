//! # `oodb-service` — a concurrent query service over the optimizer
//!
//! The ROADMAP's north star is a system serving heavy query traffic, yet
//! everything below this crate is per-query and single-threaded: each ZQL
//! string pays full parse → simplify → Volcano search → execute. This
//! crate adds the serving layer:
//!
//! * [`QueryService`] owns a shared [`Store`] snapshot, the current
//!   [`OptimizerConfig`], and a sharded [`PlanCache`]; [`QueryService::submit`]
//!   compiles, fingerprints, and either reuses a cached plan or optimizes
//!   and caches the winner.
//! * [`WorkerPool`] serves `submit` from N `std::thread` workers feeding
//!   off one queue — the optimizer is `&self` and the executor borrows
//!   `&Store`, so scaling out is `Arc`-ification, not a rewrite.
//! * Statistics and physical-design changes go through the service
//!   ([`QueryService::refresh_statistics`], [`QueryService::restrict_indexes`]),
//!   which swap in a new store snapshot whose catalog carries a bumped
//!   `stats_epoch` — cached plans go stale *by key*, never by cache walk.
//!
//! In-flight queries keep executing against the snapshot they started
//! with (the `Arc<Store>` they cloned); new submissions see the new
//! snapshot and miss the cache. Cached entries carry the `QueryEnv` they
//! were optimized under, so interned `PredId`/`VarId` values never leak
//! across parses.

use oodb_algebra::fingerprint::fingerprint;
use oodb_core::plancache::{CacheKey, CachedBody, CachedPlan, PlanCache};
use oodb_core::{compile_dynamic, CostParams, OpenOodb, OptimizerConfig};
use oodb_exec::{execute, ExecResult};
use oodb_storage::Store;
use std::collections::HashSet;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// Errors a submission can produce.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// The front end rejected the query.
    Zql(zql::ZqlError),
    /// No feasible plan under the current rule configuration.
    NoPlan,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Zql(e) => write!(f, "{e}"),
            ServiceError::NoPlan => {
                write!(f, "no feasible plan under the current rule configuration")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Per-submission options.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOptions {
    /// Cache and select from an ObjectStore-style dynamic plan *family*
    /// (one plan per useful index subset) instead of one static plan.
    pub dynamic: bool,
    /// When positive, sleep `simulated_io_seconds × scale` after
    /// executing, turning the storage simulator's I/O estimate into real
    /// wall-clock stalls. This is what makes multi-worker throughput
    /// meaningful on a machine whose *real* I/O is a warm page cache.
    pub realize_io_scale: f64,
}

/// The answer to one submission.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutput {
    /// Rendered result rows, sorted — byte-comparable across runs and
    /// plan choices.
    pub rows: Vec<String>,
    /// Number of result rows.
    pub row_count: usize,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Time spent in the front end (parse + simplify) — paid on every
    /// submission, hit or miss.
    pub compile_ns: u64,
    /// Time spent obtaining a plan: fingerprint + cache probe, plus the
    /// full Volcano search on a miss. This is the stage the cache
    /// amortizes.
    pub optimize_ns: u64,
    /// Time spent executing the plan.
    pub execute_ns: u64,
    /// The plan's estimated cost in seconds.
    pub est_cost_s: f64,
    /// Simulated I/O seconds the execution charged.
    pub sim_io_s: f64,
    /// Index names the executed plan read — evidence for invalidation
    /// tests that a dropped index is never served.
    pub indexes_used: Vec<String>,
}

struct Inner {
    store: RwLock<Arc<Store>>,
    /// The configuration plus its precomputed fingerprint — recomputing
    /// the fingerprint (sorting rule names) on every submit would cost
    /// more than the cache probe it keys.
    config: RwLock<(Arc<OptimizerConfig>, u64)>,
    params: CostParams,
    cache: Arc<PlanCache>,
}

/// The query service. Cheap to clone — all clones share state.
#[derive(Clone)]
pub struct QueryService {
    inner: Arc<Inner>,
}

impl QueryService {
    /// Wraps a store. `cache_capacity`/`cache_shards` size the plan cache.
    pub fn new(
        store: Store,
        params: CostParams,
        config: OptimizerConfig,
        cache_capacity: usize,
        cache_shards: usize,
    ) -> Self {
        let config_fp = config.fingerprint();
        QueryService {
            inner: Arc::new(Inner {
                store: RwLock::new(Arc::new(store)),
                config: RwLock::new((Arc::new(config), config_fp)),
                params,
                cache: Arc::new(PlanCache::new(cache_capacity, cache_shards)),
            }),
        }
    }

    /// The current store snapshot.
    pub fn store(&self) -> Arc<Store> {
        Arc::clone(&self.inner.store.read().unwrap())
    }

    /// The plan cache (shared).
    pub fn cache(&self) -> &PlanCache {
        &self.inner.cache
    }

    /// The current optimizer configuration.
    pub fn config(&self) -> OptimizerConfig {
        (*self.inner.config.read().unwrap().0).clone()
    }

    /// Replaces the optimizer configuration. Plans cached under the old
    /// configuration stay resident but can no longer be served — the
    /// config fingerprint is part of every cache key.
    pub fn set_config(&self, config: OptimizerConfig) {
        let fp = config.fingerprint();
        *self.inner.config.write().unwrap() = (Arc::new(config), fp);
    }

    /// Collects histograms and swaps in a store whose catalog carries the
    /// refined statistics and a bumped `stats_epoch`.
    pub fn refresh_statistics(&self, buckets: usize) {
        let mut store = (*self.store()).clone();
        let catalog = store.collect_statistics(&[], buckets);
        store.set_catalog(catalog);
        store.build_indexes();
        *self.inner.store.write().unwrap() = Arc::new(store);
    }

    /// Drops every index not named in `keep` (physical-design change) and
    /// swaps in the rebuilt store. The epoch bump makes every cached plan
    /// unservable, so a plan relying on a dropped index can never run.
    pub fn restrict_indexes(&self, keep: &[&str]) {
        let mut store = (*self.store()).clone();
        let catalog = store.catalog().with_only_indexes(keep);
        store.set_catalog(catalog);
        store.build_indexes();
        *self.inner.store.write().unwrap() = Arc::new(store);
    }

    /// Compiles, plans (via cache), executes. Equivalent to
    /// [`QueryService::submit_with`] with default options.
    pub fn submit(&self, zql_src: &str) -> Result<QueryOutput, ServiceError> {
        self.submit_with(zql_src, SubmitOptions::default())
    }

    /// Compiles, plans (via cache), executes, with options.
    pub fn submit_with(
        &self,
        zql_src: &str,
        opts: SubmitOptions,
    ) -> Result<QueryOutput, ServiceError> {
        let store = self.store();
        let (config, config_fp) = {
            let guard = self.inner.config.read().unwrap();
            (Arc::clone(&guard.0), guard.1)
        };
        let compile_start = Instant::now();
        let q =
            zql::compile(zql_src, store.schema(), store.catalog()).map_err(ServiceError::Zql)?;
        let compile_ns = compile_start.elapsed().as_nanos() as u64;
        let plan_start = Instant::now();
        let fp = fingerprint(&q.env, &q.plan, q.result_vars, q.order.as_ref());
        let epoch = store.catalog().stats_epoch();
        let key = if opts.dynamic {
            CacheKey::dynamic_family(&fp, config_fp, epoch)
        } else {
            CacheKey::static_plan(&fp, config_fp, epoch, store.catalog().index_set_hash())
        };

        let (entry, cache_hit) = match self.inner.cache.get(&key, &fp.key) {
            Some(entry) => (entry, true),
            None => {
                let body = if opts.dynamic {
                    CachedBody::Dynamic(compile_dynamic(
                        &q.env,
                        self.inner.params,
                        &config,
                        &q.plan,
                        q.result_vars,
                    ))
                } else {
                    let optimizer = OpenOodb::new(&q.env, self.inner.params, (*config).clone());
                    let out = optimizer
                        .optimize_ordered(&q.plan, q.result_vars, q.order)
                        .ok_or(ServiceError::NoPlan)?;
                    CachedBody::Static {
                        plan: out.plan,
                        cost: out.cost,
                    }
                };
                let entry = Arc::new(CachedPlan {
                    structural: fp.key.clone(),
                    env: q.env,
                    result_vars: q.result_vars,
                    body,
                });
                self.inner.cache.insert(key, Arc::clone(&entry));
                (entry, false)
            }
        };
        let optimize_ns = plan_start.elapsed().as_nanos() as u64;

        // Dynamic families: select the member for the indexes that exist
        // *now*. Static plans were keyed on the exact index set.
        let (plan, est_cost_s) = match &entry.body {
            CachedBody::Static { plan, cost } => (plan, cost.total()),
            CachedBody::Dynamic(family) => {
                let available: HashSet<String> = store
                    .catalog()
                    .indexes()
                    .map(|(_, d)| d.name.clone())
                    .collect();
                let alt = family.select(&available);
                (&alt.plan, alt.cost.total())
            }
        };

        let indexes_used = oodb_core::dynamic::indexes_used(&entry.env, plan);
        let exec_start = Instant::now();
        let (result, stats) = execute(&store, &entry.env, plan);
        let execute_ns = exec_start.elapsed().as_nanos() as u64;
        let sim_io_s = stats.disk.total_s;
        if opts.realize_io_scale > 0.0 {
            thread::sleep(Duration::from_secs_f64(sim_io_s * opts.realize_io_scale));
        }

        let mut rows = render_rows(&entry.env, entry.result_vars, &result);
        let row_count = rows.len();
        rows.sort();
        Ok(QueryOutput {
            rows,
            row_count,
            cache_hit,
            compile_ns,
            optimize_ns,
            execute_ns,
            est_cost_s,
            sim_io_s,
            indexes_used,
        })
    }
}

/// Renders result rows deterministically. Tuple results project only the
/// query's *result* variables: different plans bind different auxiliary
/// variables (a materialized path object, say), and those must not leak
/// into the observable answer.
fn render_rows(
    env: &oodb_algebra::QueryEnv,
    result_vars: oodb_algebra::VarSet,
    result: &ExecResult,
) -> Vec<String> {
    match result {
        ExecResult::Rows(rows) => rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(oodb_object::Value::to_string).collect();
                cells.join(" | ")
            })
            .collect(),
        ExecResult::Tuples(tuples) => tuples
            .iter()
            .map(|t| {
                let cells: Vec<String> = env
                    .scopes
                    .iter()
                    .filter(|(id, _)| result_vars.contains(*id))
                    .filter_map(|(id, v)| t.try_get(id).map(|o| format!("{}={o}", v.name)))
                    .collect();
                cells.join("  ")
            })
            .collect(),
    }
}

type Reply = Result<QueryOutput, ServiceError>;

struct Job {
    zql: String,
    opts: SubmitOptions,
    reply: mpsc::Sender<Reply>,
}

/// A handle to one enqueued submission.
pub struct Pending {
    rx: mpsc::Receiver<Reply>,
}

impl Pending {
    /// Blocks until the worker answers.
    pub fn wait(self) -> Reply {
        self.rx
            .recv()
            .expect("worker pool shut down with job pending")
    }
}

/// N `std::thread` workers pulling submissions off one queue.
pub struct WorkerPool {
    tx: Option<mpsc::Sender<Job>>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads serving `service`.
    pub fn new(service: QueryService, workers: usize) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let svc = service.clone();
                thread::Builder::new()
                    .name(format!("oodb-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing.
                        let job = match rx.lock().unwrap().recv() {
                            Ok(job) => job,
                            Err(_) => break,
                        };
                        let out = svc.submit_with(&job.zql, job.opts);
                        let _ = job.reply.send(out);
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
        }
    }

    /// Enqueues a query; the returned handle yields the result.
    pub fn submit(&self, zql: impl Into<String>, opts: SubmitOptions) -> Pending {
        let (reply, rx) = mpsc::channel();
        self.tx
            .as_ref()
            .expect("pool already shut down")
            .send(Job {
                zql: zql.into(),
                opts,
                reply,
            })
            .expect("all workers exited");
        Pending { rx }
    }

    /// Drains the queue and joins every worker.
    pub fn shutdown(mut self) {
        self.tx.take(); // close the queue
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_storage::{generate_paper_db, GenConfig};

    fn small_service() -> QueryService {
        let (store, _model) = generate_paper_db(GenConfig {
            scale_div: 100,
            ..Default::default()
        });
        QueryService::new(
            store,
            CostParams::default(),
            OptimizerConfig::all_rules(),
            64,
            4,
        )
    }

    const Q_TIME: &str = "SELECT t FROM Task t IN Tasks WHERE t.time() == 100";

    #[test]
    fn second_submit_hits_the_cache() {
        let svc = small_service();
        let first = svc.submit(Q_TIME).unwrap();
        assert!(!first.cache_hit);
        let second = svc.submit(Q_TIME).unwrap();
        assert!(second.cache_hit, "identical re-parse must hit");
        assert_eq!(first.rows, second.rows);
        let stats = svc.cache().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn textual_variants_share_an_entry() {
        let svc = small_service();
        let a = svc
            .submit("SELECT t FROM Task t IN Tasks WHERE t.time() == 100")
            .unwrap();
        let b = svc
            .submit("SELECT zz FROM Task zz IN Tasks WHERE 100 == zz.time()")
            .unwrap();
        assert!(!a.cache_hit);
        assert!(b.cache_hit, "renamed variable + flipped Eq must collide");
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn parse_errors_surface() {
        let svc = small_service();
        assert!(matches!(
            svc.submit("SELECT FROM WHERE"),
            Err(ServiceError::Zql(_))
        ));
    }

    #[test]
    fn dynamic_family_is_cached_and_selects() {
        let svc = small_service();
        let opts = SubmitOptions {
            dynamic: true,
            ..Default::default()
        };
        let a = svc.submit_with(Q_TIME, opts).unwrap();
        assert!(!a.cache_hit);
        let b = svc.submit_with(Q_TIME, opts).unwrap();
        assert!(b.cache_hit);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn pool_round_trip() {
        let svc = small_service();
        let pool = WorkerPool::new(svc, 2);
        let pending: Vec<Pending> = (0..8)
            .map(|_| pool.submit(Q_TIME, SubmitOptions::default()))
            .collect();
        let outs: Vec<QueryOutput> = pending.into_iter().map(|p| p.wait().unwrap()).collect();
        for o in &outs[1..] {
            assert_eq!(o.rows, outs[0].rows);
        }
        pool.shutdown();
    }
}
