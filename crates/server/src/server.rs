//! The serving loop: a `std::net` listener, a bounded acceptor, one
//! thread per connection, and graceful shutdown that drains in-flight
//! work through the [`WorkerPool`].
//!
//! Life of a request: accept → (connection thread) read + parse →
//! route → tenant admission ([`crate::tenant`]) → worker-pool submit →
//! settle tenant permit with the outcome → encode → write. Keep-alive
//! and pipelining fall out of the sequential read loop; read/write
//! socket deadlines bound a stalled peer, and the shutdown signal is an
//! `oodb-fault` [`CancelToken`] checked between requests — the same
//! cooperative-cancellation primitive executions use, applied to
//! connections.

use crate::http::{read_request, ReadError, Request, Response};
use crate::json::{self, Json};
use crate::tenant::{TenantRegistry, TenantShed};
use oodb_fault::CancelToken;
use oodb_service::{
    AdmissionConfig, QueryService, ServiceError, ShedReason, SubmitOptions, WorkerPool,
};
use oodb_telemetry::metrics::{Counter, Gauge};
use std::fmt::Write as _;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Server tuning knobs. The defaults are test-friendly; a real
/// deployment would raise the connection and body caps.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads in the serving [`WorkerPool`].
    pub pool_workers: usize,
    /// Bounded pool queue depth (0 = unbounded). Overflow sheds with
    /// [`ShedReason::QueueFull`] exactly as in-process callers see it.
    pub queue_limit: usize,
    /// Concurrent connections the acceptor admits; the excess is
    /// answered `503` + `Retry-After` and closed without a thread.
    pub max_connections: usize,
    /// Request-body ceiling; larger declared bodies get `413`.
    pub max_body_bytes: usize,
    /// Socket read/write deadline. Bounds a stalled peer and sets the
    /// cadence at which idle keep-alive connections notice shutdown.
    pub io_timeout: Duration,
    /// Execution deadline applied to requests that do not set their own
    /// `deadline_ms` (flows into the executor's `RunLimits`). `None`
    /// leaves them unbounded.
    pub default_deadline: Option<Duration>,
    /// Per-tenant admission policy (every tenant without an override).
    pub tenant_admission: AdmissionConfig,
    /// Named tenants with their own policy.
    pub tenant_overrides: Vec<(String, AdmissionConfig)>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            pool_workers: 4,
            queue_limit: 0,
            max_connections: 64,
            max_body_bytes: 1 << 20,
            io_timeout: Duration::from_secs(5),
            default_deadline: None,
            tenant_admission: AdmissionConfig::default(),
            tenant_overrides: Vec::new(),
        }
    }
}

struct ServerMetrics {
    requests_query: Counter,
    requests_prepare: Counter,
    requests_execute: Counter,
    requests_other: Counter,
    responses_2xx: Counter,
    responses_4xx: Counter,
    responses_5xx: Counter,
    executed_ok: Counter,
    executed_err: Counter,
    protocol_errors: Counter,
    accept_rejects: Counter,
    connections_total: Counter,
    connections: Gauge,
}

struct Shared {
    service: QueryService,
    pool: WorkerPool,
    tenants: TenantRegistry,
    config: ServerConfig,
    m: ServerMetrics,
    shutdown: CancelToken,
    started: Instant,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running server. Dropping it without [`Server::shutdown`] aborts
/// connections unceremoniously; call `shutdown` for the drain.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `service`. Registers `oodb_build_info` and the server's
    /// own counters on the service's metrics registry so one `/metrics`
    /// scrape covers both layers.
    pub fn start(service: QueryService, addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        crate::register_build_info(service.telemetry());
        let reg = service.telemetry();
        let m = ServerMetrics {
            requests_query: reg.counter("oodb_server_requests_total", &[("endpoint", "query")]),
            requests_prepare: reg.counter("oodb_server_requests_total", &[("endpoint", "prepare")]),
            requests_execute: reg.counter("oodb_server_requests_total", &[("endpoint", "execute")]),
            requests_other: reg.counter("oodb_server_requests_total", &[("endpoint", "other")]),
            responses_2xx: reg.counter("oodb_server_responses_total", &[("class", "2xx")]),
            responses_4xx: reg.counter("oodb_server_responses_total", &[("class", "4xx")]),
            responses_5xx: reg.counter("oodb_server_responses_total", &[("class", "5xx")]),
            executed_ok: reg.counter("oodb_server_executed_total", &[("outcome", "ok")]),
            executed_err: reg.counter("oodb_server_executed_total", &[("outcome", "error")]),
            protocol_errors: reg.counter("oodb_server_protocol_errors_total", &[]),
            accept_rejects: reg.counter("oodb_server_accept_rejects_total", &[]),
            connections_total: reg.counter("oodb_server_connections_total", &[]),
            connections: reg.gauge("oodb_server_connections", &[]),
        };
        let tenants = TenantRegistry::new(
            config.tenant_admission,
            config.tenant_overrides.clone(),
            Arc::clone(reg),
        );
        let pool = if config.queue_limit > 0 {
            WorkerPool::with_queue_limit(service.clone(), config.pool_workers, config.queue_limit)
        } else {
            WorkerPool::new(service.clone(), config.pool_workers)
        };
        let shared = Arc::new(Shared {
            service,
            pool,
            tenants,
            config,
            m,
            shutdown: CancelToken::new(),
            started: Instant::now(),
        });
        let conns: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            thread::Builder::new()
                .name("oodb-accept".into())
                .spawn(move || accept_loop(listener, shared, conns))?
        };
        Ok(Server {
            shared,
            addr: local,
            acceptor: Some(acceptor),
            conns,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service being served (for tests and the CLI).
    pub fn service(&self) -> &QueryService {
        &self.shared.service
    }

    /// Graceful shutdown: stop accepting, let every connection finish
    /// the request it is reading or running (responses are written
    /// before close), then drain and join the worker pool. Idle
    /// keep-alive connections notice within one `io_timeout`.
    pub fn shutdown(mut self) {
        self.shared.shutdown.cancel();
        // Unblock the acceptor's blocking accept() with a throwaway
        // connection; it checks the token first thing afterwards.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = lock(&self.conns).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // All connections are gone, so this Arc is the last owner and
        // the pool can be drained and joined for real.
        if let Ok(shared) = Arc::try_unwrap(self.shared) {
            shared.pool.shutdown();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.is_cancelled() {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Bounded acceptor: over the connection cap we answer with the
        // back-pressure contract (503 + Retry-After) inline on the
        // acceptor thread — cheap, and no thread is spawned.
        let active = shared.m.connections.get();
        if active >= shared.config.max_connections as i64 {
            shared.m.accept_rejects.inc();
            let mut resp = Response::json(
                503,
                "{\"error\":{\"kind\":\"overloaded\",\"reason\":\"connections\",\
                 \"message\":\"connection limit reached\"}}"
                    .into(),
            );
            resp.retry_after_s = Some(1);
            resp.close = true;
            let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
            let _ = resp.write_to(&mut BufWriter::new(&stream));
            continue;
        }
        shared.m.connections_total.inc();
        shared.m.connections.add(1);
        let shared_conn = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name("oodb-conn".into())
            .spawn(move || {
                connection_loop(&stream, &shared_conn);
                shared_conn.m.connections.sub(1);
            });
        match handle {
            Ok(h) => lock(&conns).push(h),
            Err(_) => shared.m.connections.sub(1),
        }
        // Opportunistically reap finished connection threads so the
        // handle list does not grow with connection churn.
        let mut guard = lock(&conns);
        let done: Vec<_> = {
            let mut keep = Vec::with_capacity(guard.len());
            let mut done = Vec::new();
            for h in guard.drain(..) {
                if h.is_finished() {
                    done.push(h);
                } else {
                    keep.push(h);
                }
            }
            *guard = keep;
            done
        };
        drop(guard);
        for h in done {
            let _ = h.join();
        }
    }
}

fn connection_loop(stream: &TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        // Between requests is the graceful-shutdown point: a request
        // already being read or executed always gets its response.
        if shared.shutdown.is_cancelled() {
            return;
        }
        let req = match read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(r) => r,
            Err(ReadError::Eof) => return,
            Err(ReadError::Io(_)) => return, // timeout or peer death
            Err(ReadError::Malformed(msg)) => {
                shared.m.protocol_errors.inc();
                let mut resp = protocol_error_response(400, "bad_request", &msg);
                resp.close = true;
                count_response(shared, resp.status);
                let _ = resp.write_to(&mut writer);
                return;
            }
            Err(ReadError::TooLarge { declared }) => {
                shared.m.protocol_errors.inc();
                let mut resp = protocol_error_response(
                    413,
                    "payload_too_large",
                    &format!(
                        "declared body of {declared} bytes exceeds the {}-byte cap",
                        shared.config.max_body_bytes
                    ),
                );
                resp.close = true; // the body was never consumed
                count_response(shared, resp.status);
                let _ = resp.write_to(&mut writer);
                return;
            }
        };
        let client_close = req.close;
        let mut resp = handle_request(shared, &req);
        // Once shutdown begins, finish this exchange and tell the peer.
        if shared.shutdown.is_cancelled() || client_close {
            resp.close = true;
        }
        count_response(shared, resp.status);
        if resp.write_to(&mut writer).is_err() {
            return;
        }
        if resp.close {
            return;
        }
    }
}

fn count_response(shared: &Shared, status: u16) {
    match status {
        200..=299 => shared.m.responses_2xx.inc(),
        400..=499 => shared.m.responses_4xx.inc(),
        _ => shared.m.responses_5xx.inc(),
    }
}

fn protocol_error_response(status: u16, kind: &str, msg: &str) -> Response {
    let mut body = String::from("{\"error\":{\"kind\":");
    json::push_escaped(&mut body, kind);
    body.push_str(",\"message\":");
    json::push_escaped(&mut body, msg);
    body.push_str("}}");
    Response::json(status, body)
}

/// Maps a typed [`ServiceError`] to its HTTP status.
pub fn status_for(e: &ServiceError) -> u16 {
    match e {
        ServiceError::Zql(_) | ServiceError::NoPlan => 400,
        ServiceError::UnknownStatement { .. } => 404,
        ServiceError::DeadlineExceeded { .. } => 408,
        ServiceError::RowBudgetExceeded { .. } => 422,
        ServiceError::Overloaded { reason } => match reason {
            ShedReason::QueueFull => 429,
            ShedReason::CircuitOpen | ShedReason::MemoryPressure => 503,
        },
        ServiceError::Cancelled => 499,
        ServiceError::MemoryExhausted { .. }
        | ServiceError::StorageFault { .. }
        | ServiceError::Exec(_)
        | ServiceError::WorkerLost
        | ServiceError::Panicked(_) => 500,
    }
}

fn error_response(e: &ServiceError, retry_after: Option<Duration>) -> Response {
    let status = status_for(e);
    let mut resp = Response::json(status, format!("{{\"error\":{}}}", json::encode_error(e)));
    if matches!(status, 429 | 503) {
        // Back-pressure contract: every shed carries Retry-After.
        resp.retry_after_s = Some(retry_after.map_or(1, |d| d.as_secs().max(1)));
    }
    resp
}

/// Extracts [`SubmitOptions`] from a request body object.
fn submit_options(body: &Json, default_deadline: Option<Duration>) -> SubmitOptions {
    let u = |k: &str| body.get(k).and_then(Json::as_u64);
    SubmitOptions {
        dynamic: body.get("dynamic").and_then(Json::as_bool).unwrap_or(false),
        realize_io_scale: body
            .get("realize_io_scale")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        trace: false,
        deadline: u("deadline_ms")
            .map(Duration::from_millis)
            .or(default_deadline),
        row_budget: u("row_budget"),
        retries: u("retries").unwrap_or(0) as u32,
        mem_budget: u("mem_budget"),
        exec_workers: u("exec_workers").unwrap_or(0) as usize,
    }
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| protocol_error_response(400, "bad_request", "body is not utf-8"))?;
    json::parse(text)
        .map_err(|e| protocol_error_response(400, "bad_request", &format!("invalid json: {e}")))
}

fn tenant_of(body: &Json) -> Option<String> {
    body.get("tenant")
        .and_then(Json::as_str)
        .map(str::to_string)
}

fn handle_request(shared: &Shared, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/query") => {
            shared.m.requests_query.inc();
            handle_submission(shared, req, None)
        }
        ("POST", "/prepare") => {
            shared.m.requests_prepare.inc();
            handle_prepare(shared, req)
        }
        ("POST", path) if path.starts_with("/execute/") => {
            shared.m.requests_execute.inc();
            match json::parse_hex_id(&path["/execute/".len()..]) {
                Some(id) => handle_submission(shared, req, Some(id)),
                None => protocol_error_response(
                    400,
                    "bad_request",
                    "statement id must be 16 hex digits",
                ),
            }
        }
        ("GET", "/metrics") => {
            shared.m.requests_other.inc();
            Response::text(200, shared.service.metrics_prometheus())
        }
        ("GET", "/healthz") => {
            shared.m.requests_other.inc();
            Response::json(200, "{\"status\":\"ok\"}".into())
        }
        ("GET", "/stats") => {
            shared.m.requests_other.inc();
            Response::json(200, stats_json(shared))
        }
        (_, "/query" | "/prepare" | "/metrics" | "/healthz" | "/stats") => {
            shared.m.requests_other.inc();
            protocol_error_response(405, "method_not_allowed", "wrong method for this path")
        }
        _ => {
            shared.m.requests_other.inc();
            protocol_error_response(404, "not_found", "unknown path")
        }
    }
}

/// `/query` (ad-hoc text) and `/execute/{id}` (prepared) share one
/// path: tenant admission → pool submit → settle → encode.
fn handle_submission(shared: &Shared, req: &Request, prepared: Option<u64>) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let opts = submit_options(&body, shared.config.default_deadline);
    let permit = match shared.tenants.admit(tenant_of(&body).as_deref()) {
        Ok(p) => p,
        Err(TenantShed {
            reason,
            retry_after,
        }) => {
            return error_response(&ServiceError::Overloaded { reason }, Some(retry_after));
        }
    };
    let pending = match prepared {
        Some(id) => shared.pool.submit_prepared(id, opts),
        None => match body.get("query").and_then(Json::as_str) {
            Some(zql) => shared.pool.submit(zql, opts),
            None => {
                permit.settle(Ok(()));
                return protocol_error_response(
                    400,
                    "bad_request",
                    "missing required field \"query\"",
                );
            }
        },
    };
    match pending.wait() {
        Ok(out) => {
            shared.m.executed_ok.inc();
            permit.settle(Ok(()));
            Response::json(200, json::encode_output(&out))
        }
        Err(e) => {
            shared.m.executed_err.inc();
            permit.settle(Err(&e));
            // Service-side breaker sheds carry the service cooldown as
            // the hint; queue sheds get the 1s default.
            let hint = matches!(
                e,
                ServiceError::Overloaded {
                    reason: ShedReason::CircuitOpen
                }
            )
            .then(|| shared.service.admission().breaker_cooldown);
            error_response(&e, hint)
        }
    }
}

fn handle_prepare(shared: &Shared, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let zql = match body.get("query").and_then(Json::as_str) {
        Some(q) => q,
        None => {
            return protocol_error_response(400, "bad_request", "missing required field \"query\"")
        }
    };
    // Registration is parse + fingerprint — cheap enough to run on the
    // connection thread; executions are what go through the pool.
    match shared.service.prepare(zql) {
        Ok((stmt, created)) => {
            let mut out = String::from("{\"id\":");
            json::push_escaped(&mut out, &json::hex_id(stmt.id));
            let _ = write!(out, ",\"created\":{created},\"key\":");
            json::push_escaped(&mut out, stmt.structural_key());
            out.push('}');
            Response::json(200, out)
        }
        Err(e) => error_response(&e, None),
    }
}

fn stats_json(shared: &Shared) -> String {
    let m = &shared.m;
    let cache = shared.service.cache().stats();
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"uptime_ms\":{},\"connections\":{},\"connections_total\":{},\
         \"accept_rejects\":{},\"protocol_errors\":{},\
         \"requests\":{{\"query\":{},\"prepare\":{},\"execute\":{},\"other\":{}}},\
         \"responses\":{{\"2xx\":{},\"4xx\":{},\"5xx\":{}}},\
         \"executed\":{{\"ok\":{},\"error\":{}}},\
         \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}},\
         \"prepared_statements\":{},\"tenants\":[",
        shared.started.elapsed().as_millis(),
        m.connections.get(),
        m.connections_total.get(),
        m.accept_rejects.get(),
        m.protocol_errors.get(),
        m.requests_query.get(),
        m.requests_prepare.get(),
        m.requests_execute.get(),
        m.requests_other.get(),
        m.responses_2xx.get(),
        m.responses_4xx.get(),
        m.responses_5xx.get(),
        m.executed_ok.get(),
        m.executed_err.get(),
        cache.hits,
        cache.misses,
        cache.evictions,
        shared.service.prepared_statements().len(),
    );
    for (i, t) in shared.tenants.snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (admitted, shed_q, shed_b, failures) = t.counts();
        out.push_str("{\"name\":");
        json::push_escaped(&mut out, &t.name);
        let _ = write!(
            out,
            ",\"inflight\":{},\"admitted\":{admitted},\"shed_queue_full\":{shed_q},\
             \"shed_circuit_open\":{shed_b},\"resource_failures\":{failures}}}",
            t.inflight(),
        );
    }
    let fb = shared.service.feedback_stats();
    let _ = write!(
        out,
        "],\"feedback\":{{\"tracked\":{},\"suspect\":{},\"overridden\":{},\
         \"overrides\":{},\"worst_drift\":{:.3}}}",
        fb.tracked, fb.suspect, fb.overridden, fb.overrides, fb.worst_drift,
    );
    match shared.service.durability_stats() {
        Some(d) => {
            out.push_str(",\"durability\":{\"enabled\":true,\"dir\":");
            json::push_escaped(&mut out, &d.dir);
            out.push_str(",\"policy\":");
            json::push_escaped(&mut out, &d.policy);
            let _ = write!(
                out,
                ",\"records\":{},\"bytes\":{},\"flushes\":{},\"syncs\":{},\
                 \"faults\":{},\"buffered_records\":{},\"next_seq\":{},\
                 \"checkpoint_records\":{},\"checkpoint_bytes\":{},\
                 \"compacted_records\":{},\"poisoned\":{}}}",
                d.records,
                d.bytes,
                d.flushes,
                d.syncs,
                d.faults,
                d.buffered_records,
                d.next_seq,
                d.checkpoint_records,
                d.checkpoint_bytes,
                d.compacted_records,
                d.poisoned,
            );
        }
        None => out.push_str(",\"durability\":{\"enabled\":false}"),
    }
    out.push('}');
    out
}
