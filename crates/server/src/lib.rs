//! # oodb-server — the network serving front end
//!
//! Everything below this crate (the optimizer, the plan cache, the
//! resilience and memory-governance ladders, the morsel-parallel
//! executor) is reachable only in-process; this crate puts a wire on
//! it. It is a dependency-free HTTP/1.1 + JSON layer over
//! [`oodb_service::QueryService`] / [`oodb_service::WorkerPool`]:
//!
//! | Endpoint              | Meaning                                        |
//! |-----------------------|------------------------------------------------|
//! | `POST /query`         | Ad-hoc ZQL submission                          |
//! | `POST /prepare`       | Register a prepared statement (id = canonical  |
//! |                       | fingerprint hash)                              |
//! | `POST /execute/{id}`  | Execute a prepared statement — no re-parse,    |
//! |                       | straight to the plan-cache probe               |
//! | `GET /metrics`        | Prometheus text exposition                     |
//! | `GET /healthz`        | Liveness probe                                 |
//! | `GET /stats`          | Server + cache + per-tenant counters, JSON     |
//!
//! Connections are keep-alive and pipelined; requests may carry a
//! `tenant` namespace, and each tenant gets its own admission ladder
//! (inflight cap → `429`, circuit breaker → `503` + `Retry-After`) —
//! see [`tenant`]. Typed [`oodb_service::ServiceError`]s map onto HTTP
//! statuses ([`server::status_for`]); graceful shutdown stops
//! accepting, answers every accepted in-flight request, and drains the
//! worker pool.

#![forbid(unsafe_code)]

pub mod client;
pub mod http;
pub mod json;
pub mod server;
pub mod tenant;

pub use client::{Client, ClientError, RemoteOutput, RequestOptions};
pub use server::{status_for, Server, ServerConfig};

use oodb_telemetry::metrics::MetricsRegistry;

/// The crate version baked into `oodb_build_info`.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
/// The git commit hash baked in at build time (`"unknown"` outside a
/// checkout).
pub const GIT_HASH: &str = env!("OODB_GIT_HASH");

/// Registers the `oodb_build_info` gauge: constant `1`, with the
/// version and git hash carried as labels — the standard Prometheus
/// idiom for identifying the binary behind a scrape target.
pub fn register_build_info(reg: &MetricsRegistry) {
    reg.gauge(
        "oodb_build_info",
        &[("version", VERSION), ("git_hash", GIT_HASH)],
    )
    .set(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_info_gauge_carries_version_and_hash_labels() {
        let reg = MetricsRegistry::new();
        register_build_info(&reg);
        let text = reg.render_prometheus();
        assert!(
            text.contains(&format!(
                "oodb_build_info{{git_hash=\"{GIT_HASH}\",version=\"{VERSION}\"}} 1"
            )) || text.contains(&format!(
                "oodb_build_info{{version=\"{VERSION}\",git_hash=\"{GIT_HASH}\"}} 1"
            )),
            "{text}"
        );
        assert!(!GIT_HASH.is_empty());
    }
}
