//! A deliberately small HTTP/1.1 subset — exactly what the protocol
//! needs and nothing more: request-line + headers + `Content-Length`
//! bodies, keep-alive by default, pipelining for free (requests are
//! read sequentially off one `BufRead`, responses written in order).
//! No chunked encoding, no TLS, no multipart — those belong to a real
//! proxy in front, not to a reproduction's serving layer.

use std::io::{self, BufRead, Write};

/// Hard ceilings on request framing, independent of the configurable
/// body cap: one header line and the total header block. Oversized
/// framing is a malformed request, not a negotiation.
const MAX_LINE_BYTES: usize = 8 * 1024;
const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as received (`GET`, `POST`, ...).
    pub method: String,
    /// Path component, query string stripped.
    pub path: String,
    /// Header pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// True when the client asked to drop the connection after this
    /// exchange (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why reading a request failed — each class maps to a different
/// connection outcome.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF before any request byte: the peer is done; close quietly.
    Eof,
    /// Socket-level failure (including read-timeout expiry).
    Io(io::Error),
    /// Syntactically invalid framing → `400`, then close (the stream
    /// position is unrecoverable).
    Malformed(String),
    /// `Content-Length` above the server's cap → `413`, then close
    /// (the body was never read).
    TooLarge {
        /// The declared length that broke the cap.
        declared: usize,
    },
}

fn read_line(r: &mut impl BufRead) -> Result<String, ReadError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(ReadError::Eof);
                }
                return Err(ReadError::Malformed("eof mid-line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf)
                        .map_err(|_| ReadError::Malformed("non-utf8 header line".into()));
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE_BYTES {
                    return Err(ReadError::Malformed("header line too long".into()));
                }
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

/// Reads one request off the stream. `max_body` caps the declared
/// `Content-Length`; an over-cap body is rejected *without* reading it.
pub fn read_request(r: &mut impl BufRead, max_body: usize) -> Result<Request, ReadError> {
    let line = read_line(r)?;
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
        _ => return Err(ReadError::Malformed(format!("bad request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let http10 = version == "HTTP/1.0";
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Err(ReadError::Malformed(format!(
            "bad request target {target:?}"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_line(r) {
            Ok(l) => l,
            Err(ReadError::Eof) => return Err(ReadError::Malformed("eof in headers".into())),
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        if headers.len() > MAX_HEADERS {
            return Err(ReadError::Malformed("too many headers".into()));
        }
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(ReadError::TooLarge {
            declared: content_length,
        });
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).map_err(ReadError::Io)?;

    let conn = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let close = match conn.as_deref() {
        Some("close") => true,
        Some("keep-alive") => false,
        _ => http10,
    };

    Ok(Request {
        method: method.to_string(),
        path,
        headers,
        body,
        close,
    })
}

/// One response, built by the handler and serialized by the connection
/// loop.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// When set, emitted as a `Retry-After: <seconds>` header — the
    /// back-pressure contract for 429/503.
    pub retry_after_s: Option<u64>,
    /// Ask the peer to drop the connection after this response.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after_s: None,
            close: false,
        }
    }

    /// A plain-text response (metrics exposition, health probes).
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            retry_after_s: None,
            close: false,
        }
    }

    /// Serializes onto the wire.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        if let Some(s) = self.retry_after_s {
            write!(w, "retry-after: {s}\r\n")?;
        }
        if self.close {
            w.write_all(b"connection: close\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// The reason phrase for every status this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A client-side parsed response (status + headers + body). Reuses the
/// same framing reader as the server side.
#[derive(Debug)]
pub struct RawResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl RawResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy — diagnostics only on the failure path).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one response off a stream (client side).
pub fn read_response(r: &mut impl BufRead) -> Result<RawResponse, ReadError> {
    let line = read_line(r)?;
    let mut parts = line.splitn(3, ' ');
    let status = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| ReadError::Malformed(format!("bad status line {line:?}")))?,
        _ => return Err(ReadError::Malformed(format!("bad status line {line:?}"))),
    };
    let mut headers = Vec::new();
    loop {
        let line = match read_line(r) {
            Ok(l) => l,
            Err(ReadError::Eof) => return Err(ReadError::Malformed("eof in headers".into())),
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let len = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(ReadError::Io)?;
    Ok(RawResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_pipelined_requests_off_one_stream() {
        let wire = b"POST /query HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdGET /healthz?x=1 HTTP/1.1\r\n\r\n";
        let mut r = BufReader::new(&wire[..]);
        let a = read_request(&mut r, 1024).unwrap();
        assert_eq!((a.method.as_str(), a.path.as_str()), ("POST", "/query"));
        assert_eq!(a.body, b"abcd");
        assert!(!a.close);
        let b = read_request(&mut r, 1024).unwrap();
        assert_eq!(b.path, "/healthz", "query string must be stripped");
        assert!(matches!(read_request(&mut r, 1024), Err(ReadError::Eof)));
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let wire = b"POST /query HTTP/1.1\r\ncontent-length: 999999\r\n\r\n";
        let mut r = BufReader::new(&wire[..]);
        match read_request(&mut r, 1024) {
            Err(ReadError::TooLarge { declared }) => assert_eq!(declared, 999999),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_framing() {
        for wire in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x SPDY/3\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: many\r\n\r\n",
        ] {
            let mut r = BufReader::new(wire);
            assert!(
                matches!(read_request(&mut r, 1024), Err(ReadError::Malformed(_))),
                "accepted {:?}",
                String::from_utf8_lossy(wire)
            );
        }
    }

    #[test]
    fn connection_semantics_follow_version_and_header() {
        let cases: [(&[u8], bool); 3] = [
            (b"GET / HTTP/1.1\r\n\r\n", false),
            (b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", true),
            (b"GET / HTTP/1.0\r\n\r\n", true),
        ];
        for (wire, close) in cases {
            let mut r = BufReader::new(wire);
            assert_eq!(read_request(&mut r, 0).unwrap().close, close);
        }
    }

    #[test]
    fn response_round_trips_through_client_reader() {
        let mut resp = Response::json(429, "{\"error\":{}}".into());
        resp.retry_after_s = Some(2);
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let parsed = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(parsed.status, 429);
        assert_eq!(parsed.header("retry-after"), Some("2"));
        assert_eq!(parsed.body, b"{\"error\":{}}");
    }
}
