//! Hand-rolled JSON for the wire protocol — same no-dependency policy as
//! `oodb-telemetry`'s metric export, but bidirectional: the server
//! parses request bodies and the client parses responses, so this
//! module carries a small recursive-descent parser next to the
//! encoders.
//!
//! Two conventions keep the format honest:
//!
//! * 64-bit identifiers (prepared-statement ids, config fingerprints)
//!   travel as **16-digit lowercase hex strings**, never as JSON
//!   numbers — an f64 silently corrupts integers above 2^53 and every
//!   fingerprint hash lives up there.
//! * Every error body is `{"error": {"kind": ..., "message": ...}}`
//!   with one `kind` per [`ServiceError`] variant plus the variant's
//!   fields, so a client can reconstruct the *typed* error
//!   ([`decode_error`]) instead of pattern-matching prose.

use oodb_service::{QueryOutput, ServiceError, ShedReason, StageBreakdown};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects keep insertion order irrelevant — they
/// are stored sorted by key, which is fine for a protocol whose readers
/// only ever look fields up by name.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as f64 (ids travel as hex strings instead).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Field lookup on an object; `None` on any other variant.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a u64 (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, String> {
    let b = src.as_bytes();
    let mut pos = 0;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at offset {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at offset {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(b, pos)?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: the low half must follow.
                            if b.get(*pos) != Some(&b'\\') || b.get(*pos + 1) != Some(&b'u') {
                                return Err("lone high surrogate".into());
                            }
                            *pos += 2;
                            let lo = parse_hex4(b, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(char::from_u32(cp).ok_or("invalid codepoint")?);
                    }
                    _ => return Err(format!("invalid escape \\{}", esc as char)),
                }
            }
            Some(&c) if c < 0x20 => return Err("raw control byte in string".into()),
            Some(_) => {
                // Copy the whole run up to the next quote, escape, or
                // control byte in one shot, validating only that span
                // (validating from `pos` to the end per character turns
                // large-row bodies O(n^2)).
                let start = *pos;
                while let Some(&c) = b.get(*pos) {
                    if c == b'"' || c == b'\\' || c < 0x20 {
                        break;
                    }
                    *pos += 1;
                }
                let run = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid utf-8")?;
                out.push_str(run);
            }
        }
    }
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    let chunk = b
        .get(*pos..*pos + 4)
        .and_then(|c| std::str::from_utf8(c).ok())
        .ok_or("truncated \\u escape")?;
    *pos += 4;
    u32::from_str_radix(chunk, 16).map_err(|_| "invalid \\u escape".into())
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {}", *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
        }
    }
}

/// Appends `s` JSON-escaped (with surrounding quotes) to `out`.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A u64 identifier in wire form: 16 lowercase hex digits.
pub fn hex_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a wire-form identifier ([`hex_id`]).
pub fn parse_hex_id(s: &str) -> Option<u64> {
    (s.len() == 16)
        .then(|| u64::from_str_radix(s, 16).ok())
        .flatten()
}

/// Encodes a [`StageBreakdown`] as a JSON object.
pub fn encode_stages(s: &StageBreakdown) -> String {
    format!(
        "{{\"parse_ns\":{},\"simplify_ns\":{},\"fingerprint_ns\":{},\
         \"cache_probe_ns\":{},\"optimize_ns\":{},\"execute_ns\":{}}}",
        s.parse_ns, s.simplify_ns, s.fingerprint_ns, s.cache_probe_ns, s.optimize_ns, s.execute_ns
    )
}

/// Decodes a [`StageBreakdown`] from its wire object.
pub fn decode_stages(v: &Json) -> Option<StageBreakdown> {
    let field = |k: &str| v.get(k).and_then(Json::as_u64);
    Some(StageBreakdown {
        parse_ns: field("parse_ns")?,
        simplify_ns: field("simplify_ns")?,
        fingerprint_ns: field("fingerprint_ns")?,
        cache_probe_ns: field("cache_probe_ns")?,
        optimize_ns: field("optimize_ns")?,
        execute_ns: field("execute_ns")?,
    })
}

/// Encodes a successful [`QueryOutput`] as the `POST /query` /
/// `POST /execute/{id}` response body. The operator trace is omitted —
/// it is an interactive `EXPLAIN ANALYZE` artifact, not a serving one.
pub fn encode_output(o: &QueryOutput) -> String {
    let mut out = String::with_capacity(256 + o.rows.iter().map(|r| r.len() + 3).sum::<usize>());
    out.push_str("{\"rows\":[");
    for (i, row) in o.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, row);
    }
    let _ = write!(
        out,
        "],\"row_count\":{},\"cache_hit\":{},\"degraded\":{},\"retries\":{},\
         \"est_cost_s\":{},\"sim_io_s\":{},\"buffer_hits\":{},\"buffer_misses\":{},\
         \"mem_peak_bytes\":{},\"spill_pages\":{},\"stats_epoch\":{},",
        o.row_count,
        o.cache_hit,
        o.degraded,
        o.retries,
        o.est_cost_s,
        o.sim_io_s,
        o.buffer_hits,
        o.buffer_misses,
        o.mem_peak_bytes,
        o.spill_pages,
        o.stats_epoch,
    );
    out.push_str("\"config_fp\":");
    push_escaped(&mut out, &hex_id(o.config_fp));
    out.push_str(",\"indexes_used\":[");
    for (i, ix) in o.indexes_used.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, ix);
    }
    out.push_str("],\"stages\":");
    out.push_str(&encode_stages(&o.stages));
    out.push('}');
    out
}

/// Encodes a [`ServiceError`] as the inner `error` object:
/// `{"kind": ..., "message": ..., <variant fields>}`.
pub fn encode_error(e: &ServiceError) -> String {
    let mut out = String::from("{\"kind\":");
    let kind = error_kind(e);
    push_escaped(&mut out, kind);
    out.push_str(",\"message\":");
    push_escaped(&mut out, &e.to_string());
    match e {
        ServiceError::Zql(z) => {
            out.push_str(",\"zql_msg\":");
            push_escaped(&mut out, &z.msg);
            if let Some(p) = z.pos {
                let _ = write!(out, ",\"pos\":{p}");
            }
        }
        ServiceError::UnknownStatement { id } => {
            out.push_str(",\"id\":");
            push_escaped(&mut out, &hex_id(*id));
        }
        ServiceError::DeadlineExceeded { stage } => {
            out.push_str(",\"stage\":");
            push_escaped(&mut out, stage);
        }
        ServiceError::RowBudgetExceeded { budget } => {
            let _ = write!(out, ",\"budget\":{budget}");
        }
        ServiceError::Overloaded { reason } => {
            out.push_str(",\"reason\":");
            push_escaped(&mut out, shed_reason_kind(*reason));
        }
        ServiceError::MemoryExhausted { requested, budget } => {
            let _ = write!(out, ",\"requested\":{requested},\"budget\":{budget}");
        }
        ServiceError::StorageFault { transient, retries } => {
            let _ = write!(out, ",\"transient\":{transient},\"retries\":{retries}");
        }
        ServiceError::Exec(msg) | ServiceError::Panicked(msg) => {
            out.push_str(",\"detail\":");
            push_escaped(&mut out, msg);
        }
        ServiceError::NoPlan | ServiceError::Cancelled | ServiceError::WorkerLost => {}
    }
    out.push('}');
    out
}

/// The wire `kind` discriminant for each error variant.
pub fn error_kind(e: &ServiceError) -> &'static str {
    match e {
        ServiceError::Zql(_) => "zql",
        ServiceError::NoPlan => "no_plan",
        ServiceError::UnknownStatement { .. } => "unknown_statement",
        ServiceError::DeadlineExceeded { .. } => "deadline_exceeded",
        ServiceError::Cancelled => "cancelled",
        ServiceError::RowBudgetExceeded { .. } => "row_budget_exceeded",
        ServiceError::Overloaded { .. } => "overloaded",
        ServiceError::MemoryExhausted { .. } => "memory_exhausted",
        ServiceError::StorageFault { .. } => "storage_fault",
        ServiceError::Exec(_) => "exec",
        ServiceError::WorkerLost => "worker_lost",
        ServiceError::Panicked(_) => "panicked",
    }
}

fn shed_reason_kind(r: ShedReason) -> &'static str {
    match r {
        ShedReason::QueueFull => "queue_full",
        ShedReason::CircuitOpen => "circuit_open",
        ShedReason::MemoryPressure => "memory_pressure",
    }
}

/// Reconstructs the typed [`ServiceError`] from a parsed `error` object —
/// the client-side inverse of [`encode_error`]. Unknown kinds decode to
/// [`ServiceError::Exec`] carrying the raw message, so a newer server
/// never strands an older client without an error value.
pub fn decode_error(v: &Json) -> ServiceError {
    let msg = || {
        v.get("message")
            .and_then(Json::as_str)
            .unwrap_or("malformed error body")
            .to_string()
    };
    match v.get("kind").and_then(Json::as_str).unwrap_or("") {
        "zql" => ServiceError::Zql(zql::ZqlError {
            msg: v
                .get("zql_msg")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            pos: v.get("pos").and_then(Json::as_u64).map(|p| p as usize),
        }),
        "no_plan" => ServiceError::NoPlan,
        "unknown_statement" => ServiceError::UnknownStatement {
            id: v
                .get("id")
                .and_then(Json::as_str)
                .and_then(parse_hex_id)
                .unwrap_or(0),
        },
        "deadline_exceeded" => ServiceError::DeadlineExceeded {
            // Stage names are &'static str in the service; map the known
            // ones, defaulting to "execute" (the only stage that errors
            // today).
            stage: match v.get("stage").and_then(Json::as_str) {
                Some("optimize") => "optimize",
                _ => "execute",
            },
        },
        "cancelled" => ServiceError::Cancelled,
        "row_budget_exceeded" => ServiceError::RowBudgetExceeded {
            budget: v.get("budget").and_then(Json::as_u64).unwrap_or(0),
        },
        "overloaded" => ServiceError::Overloaded {
            reason: match v.get("reason").and_then(Json::as_str) {
                Some("circuit_open") => ShedReason::CircuitOpen,
                Some("memory_pressure") => ShedReason::MemoryPressure,
                _ => ShedReason::QueueFull,
            },
        },
        "memory_exhausted" => ServiceError::MemoryExhausted {
            requested: v.get("requested").and_then(Json::as_u64).unwrap_or(0),
            budget: v.get("budget").and_then(Json::as_u64).unwrap_or(0),
        },
        "storage_fault" => ServiceError::StorageFault {
            transient: v.get("transient").and_then(Json::as_bool).unwrap_or(false),
            retries: v.get("retries").and_then(Json::as_u64).unwrap_or(0) as u32,
        },
        "worker_lost" => ServiceError::WorkerLost,
        "panicked" => ServiceError::Panicked(
            v.get("detail")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        ),
        _ => ServiceError::Exec(
            v.get("detail")
                .and_then(Json::as_str)
                .map(str::to_string)
                .unwrap_or_else(msg),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_survives_a_parse_round_trip() {
        let nasty = "he said \"hi\"\\\n\tcol\u{1}umn\r — €𝄞";
        let mut enc = String::new();
        push_escaped(&mut enc, nasty);
        assert_eq!(parse(&enc).unwrap(), Json::Str(nasty.to_string()));
        // The encoder must emit \u escapes for control bytes, never raw.
        assert!(enc.contains("\\u0001"), "{enc}");
        assert!(
            !enc.bytes().any(|b| b < 0x20 && b != b'\\'),
            "raw control byte leaked"
        );
    }

    #[test]
    fn parser_handles_structures_numbers_and_unicode_escapes() {
        let v =
            parse(r#"{"a":[1,-2.5,1e3,true,false,null],"b":{"k":"\u00e9\ud834\udd1e"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 6);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Num(1000.0));
        assert_eq!(v.get("b").unwrap().get("k").unwrap().as_str(), Some("é𝄞"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1e999",
            "{\"a\":1}x",
            "\"\\u12\"",
            "\"\\ud834\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn hex_ids_round_trip() {
        for id in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(parse_hex_id(&hex_id(id)), Some(id));
        }
        assert_eq!(parse_hex_id("xyz"), None);
        assert_eq!(parse_hex_id("123"), None, "short ids are rejected");
    }

    #[test]
    fn every_error_variant_round_trips() {
        let variants = vec![
            ServiceError::Zql(zql::ZqlError {
                msg: "unexpected token \"}\"".into(),
                pos: Some(17),
            }),
            ServiceError::NoPlan,
            ServiceError::UnknownStatement {
                id: 0xabcdef0123456789,
            },
            ServiceError::DeadlineExceeded { stage: "execute" },
            ServiceError::Cancelled,
            ServiceError::RowBudgetExceeded { budget: 1000 },
            ServiceError::Overloaded {
                reason: ShedReason::QueueFull,
            },
            ServiceError::Overloaded {
                reason: ShedReason::CircuitOpen,
            },
            ServiceError::Overloaded {
                reason: ShedReason::MemoryPressure,
            },
            ServiceError::MemoryExhausted {
                requested: 4096,
                budget: 1024,
            },
            ServiceError::StorageFault {
                transient: true,
                retries: 3,
            },
            ServiceError::Exec("join side \"inner\"\nfailed".into()),
            ServiceError::WorkerLost,
            ServiceError::Panicked("index out of bounds".into()),
        ];
        for e in variants {
            let wire = encode_error(&e);
            let parsed = parse(&wire).unwrap_or_else(|err| panic!("{wire}: {err}"));
            assert_eq!(decode_error(&parsed), e, "wire: {wire}");
            // Every encoding carries the human-readable message too.
            assert_eq!(
                parsed.get("message").and_then(Json::as_str),
                Some(e.to_string().as_str())
            );
        }
    }

    #[test]
    fn output_encoding_parses_and_preserves_fields() {
        let out = QueryOutput {
            rows: vec!["task \"a\"".into(), "row\t2".into()],
            row_count: 2,
            cache_hit: true,
            compile_ns: 10,
            optimize_ns: 20,
            execute_ns: 30,
            est_cost_s: 0.5,
            sim_io_s: 0.25,
            indexes_used: vec!["Tasks.time".into()],
            stages: StageBreakdown {
                parse_ns: 1,
                simplify_ns: 2,
                fingerprint_ns: 3,
                cache_probe_ns: 4,
                optimize_ns: 5,
                execute_ns: 6,
            },
            buffer_hits: 7,
            buffer_misses: 8,
            trace: None,
            degraded: false,
            retries: 1,
            mem_peak_bytes: 9,
            spill_pages: 11,
            stats_epoch: 12,
            config_fp: u64::MAX - 1,
        };
        let v = parse(&encode_output(&out)).unwrap();
        let rows: Vec<&str> = v
            .get("rows")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|r| r.as_str().unwrap())
            .collect();
        assert_eq!(rows, ["task \"a\"", "row\t2"]);
        assert_eq!(v.get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(
            v.get("config_fp")
                .and_then(Json::as_str)
                .and_then(parse_hex_id),
            Some(u64::MAX - 1),
            "config_fp must survive as a hex string, not an f64"
        );
        assert_eq!(decode_stages(v.get("stages").unwrap()).unwrap(), out.stages);
    }
}
