//! A minimal blocking client for the wire protocol — enough for the
//! CLI's `\connect`, the load-generating bench, and the integration
//! tests. One [`Client`] owns one keep-alive connection; the
//! `pipeline_*` methods write a batch of requests back-to-back before
//! reading any response, exercising the server's pipelining path.

use crate::http::{read_response, RawResponse, ReadError};
use crate::json::{self, Json};
use oodb_service::{ServiceError, StageBreakdown};
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What a remote submission can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(io::Error),
    /// The peer broke HTTP framing or the JSON contract.
    Protocol(String),
    /// The server answered with a typed service error.
    Service {
        /// HTTP status the error travelled under.
        status: u16,
        /// The reconstructed typed error.
        error: ServiceError,
        /// `Retry-After` seconds, when the server sent one (429/503).
        retry_after_s: Option<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Service { status, error, .. } => {
                write!(f, "server error (HTTP {status}): {error}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ReadError> for ClientError {
    fn from(e: ReadError) -> Self {
        match e {
            ReadError::Io(e) => ClientError::Io(e),
            ReadError::Eof => ClientError::Protocol("connection closed before response".into()),
            ReadError::Malformed(m) => ClientError::Protocol(m),
            ReadError::TooLarge { declared } => {
                ClientError::Protocol(format!("response body of {declared} bytes"))
            }
        }
    }
}

/// The slice of [`oodb_service::QueryOutput`] that crosses the wire.
#[derive(Clone, Debug)]
pub struct RemoteOutput {
    /// Rendered result rows.
    pub rows: Vec<String>,
    /// Row count.
    pub row_count: u64,
    /// Whether the plan came from the server's cache.
    pub cache_hit: bool,
    /// Whether the answer came from the greedy fallback plan.
    pub degraded: bool,
    /// Transient-fault retries spent server-side.
    pub retries: u64,
    /// Per-stage server-side latency breakdown.
    pub stages: StageBreakdown,
    /// Stats epoch of the snapshot the query ran against.
    pub stats_epoch: u64,
    /// Optimizer-config fingerprint of that snapshot.
    pub config_fp: u64,
    /// Index names the executed plan read.
    pub indexes_used: Vec<String>,
}

/// Options a client attaches to a submission (the request-body knobs).
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestOptions<'a> {
    /// Tenant namespace (`None` = the server's default tenant).
    pub tenant: Option<&'a str>,
    /// Execution deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Row budget.
    pub row_budget: Option<u64>,
    /// Transient-fault retry budget.
    pub retries: Option<u64>,
    /// Realized-I/O scale (testing knob: makes executions take real time).
    pub realize_io_scale: Option<f64>,
}

impl RequestOptions<'_> {
    fn encode_into(&self, out: &mut String) {
        if let Some(t) = self.tenant {
            out.push_str(",\"tenant\":");
            json::push_escaped(out, t);
        }
        for (k, v) in [
            ("deadline_ms", self.deadline_ms),
            ("row_budget", self.row_budget),
            ("retries", self.retries),
        ] {
            if let Some(v) = v {
                use std::fmt::Write as _;
                let _ = write!(out, ",\"{k}\":{v}");
            }
        }
        if let Some(s) = self.realize_io_scale {
            use std::fmt::Write as _;
            let _ = write!(out, ",\"realize_io_scale\":{s}");
        }
    }
}

/// One keep-alive connection to an `oodb-server`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
}

impl Client {
    /// Connects (with the given I/O timeout applied to reads and writes).
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> io::Result<Client> {
        let host = addr.to_string();
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            host,
        })
    }

    /// The address this client dialed.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Writes one request; does not read the response (pipelining
    /// building block).
    pub fn send(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<()> {
        let body = body.unwrap_or("");
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n\r\n{body}",
            self.host,
            body.len()
        )?;
        self.writer.flush()
    }

    /// Reads one response (pairs with [`Client::send`]).
    pub fn recv(&mut self) -> Result<RawResponse, ClientError> {
        Ok(read_response(&mut self.reader)?)
    }

    /// One full request/response exchange.
    ///
    /// A keep-alive connection the server has idle-closed (after its
    /// `io_timeout`) surfaces as a broken-pipe write or an EOF before
    /// the status line. Every endpoint is read-only or idempotent, so
    /// the exchange transparently reconnects and replays once instead
    /// of bubbling the stale-connection race to the caller.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<RawResponse, ClientError> {
        match self.try_request(method, path, body) {
            Err(e) if stale_connection(&e) => {
                *self = Client::connect(self.host.clone())?;
                self.try_request(method, path, body)
            }
            r => r,
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<RawResponse, ClientError> {
        self.send(method, path, body)?;
        self.recv()
    }

    fn decode_output(resp: &RawResponse) -> Result<RemoteOutput, ClientError> {
        if resp.status != 200 {
            return Err(service_error(resp));
        }
        let v = json::parse(&resp.body_str())
            .map_err(|e| ClientError::Protocol(format!("bad response body: {e}")))?;
        let rows = v
            .get("rows")
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(Json::as_str)
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            })
            .ok_or_else(|| ClientError::Protocol("response missing rows".into()))?;
        let indexes_used = v
            .get("indexes_used")
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(Json::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        Ok(RemoteOutput {
            row_count: v
                .get("row_count")
                .and_then(Json::as_u64)
                .unwrap_or(rows.len() as u64),
            rows,
            cache_hit: v.get("cache_hit").and_then(Json::as_bool).unwrap_or(false),
            degraded: v.get("degraded").and_then(Json::as_bool).unwrap_or(false),
            retries: v.get("retries").and_then(Json::as_u64).unwrap_or(0),
            stages: v
                .get("stages")
                .and_then(json::decode_stages)
                .unwrap_or_default(),
            stats_epoch: v.get("stats_epoch").and_then(Json::as_u64).unwrap_or(0),
            config_fp: v
                .get("config_fp")
                .and_then(Json::as_str)
                .and_then(json::parse_hex_id)
                .unwrap_or(0),
            indexes_used,
        })
    }

    /// Submits ad-hoc ZQL (`POST /query`).
    pub fn query(
        &mut self,
        zql: &str,
        opts: RequestOptions<'_>,
    ) -> Result<RemoteOutput, ClientError> {
        let mut body = String::from("{\"query\":");
        json::push_escaped(&mut body, zql);
        opts.encode_into(&mut body);
        body.push('}');
        let resp = self.request("POST", "/query", Some(&body))?;
        Self::decode_output(&resp)
    }

    /// Registers a prepared statement (`POST /prepare`); returns
    /// `(id, created)`.
    pub fn prepare(&mut self, zql: &str) -> Result<(u64, bool), ClientError> {
        let mut body = String::from("{\"query\":");
        json::push_escaped(&mut body, zql);
        body.push('}');
        let resp = self.request("POST", "/prepare", Some(&body))?;
        if resp.status != 200 {
            return Err(service_error(&resp));
        }
        let v = json::parse(&resp.body_str())
            .map_err(|e| ClientError::Protocol(format!("bad prepare body: {e}")))?;
        let id = v
            .get("id")
            .and_then(Json::as_str)
            .and_then(json::parse_hex_id)
            .ok_or_else(|| ClientError::Protocol("prepare response missing id".into()))?;
        Ok((
            id,
            v.get("created").and_then(Json::as_bool).unwrap_or(false),
        ))
    }

    /// Executes a prepared statement (`POST /execute/{id}`).
    pub fn execute(
        &mut self,
        id: u64,
        opts: RequestOptions<'_>,
    ) -> Result<RemoteOutput, ClientError> {
        let (path, body) = execute_request(id, opts);
        let resp = self.request("POST", &path, Some(&body))?;
        Self::decode_output(&resp)
    }

    /// Writes one `/execute/{id}` request without reading the response.
    pub fn send_execute(&mut self, id: u64, opts: RequestOptions<'_>) -> io::Result<()> {
        let (path, body) = execute_request(id, opts);
        self.send("POST", &path, Some(&body))
    }

    /// Pipelines a batch of prepared executions: writes every request,
    /// then reads every response in order.
    pub fn pipeline_execute(
        &mut self,
        ids: &[u64],
        opts: RequestOptions<'_>,
    ) -> Result<Vec<Result<RemoteOutput, ClientError>>, ClientError> {
        for &id in ids {
            self.send_execute(id, opts)?;
        }
        let mut out = Vec::with_capacity(ids.len());
        for _ in ids {
            let resp = self.recv()?;
            out.push(Self::decode_output(&resp));
        }
        Ok(out)
    }

    /// Fetches the Prometheus metrics text.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let resp = self.request("GET", "/metrics", None)?;
        if resp.status != 200 {
            return Err(service_error(&resp));
        }
        Ok(resp.body_str())
    }

    /// Fetches the `/stats` JSON document, parsed.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let resp = self.request("GET", "/stats", None)?;
        if resp.status != 200 {
            return Err(service_error(&resp));
        }
        json::parse(&resp.body_str()).map_err(ClientError::Protocol)
    }

    /// Liveness probe; `Ok(())` iff the server answered 200.
    pub fn healthz(&mut self) -> Result<(), ClientError> {
        let resp = self.request("GET", "/healthz", None)?;
        if resp.status != 200 {
            return Err(service_error(&resp));
        }
        Ok(())
    }
}

impl Client {
    /// Splits the connection into independently-owned send and receive
    /// halves, for open-loop load generation: a sender thread writes
    /// requests on a fixed schedule while a receiver thread drains
    /// responses — neither blocks the other. Responses arrive in
    /// request order (HTTP/1.1 pipelining).
    pub fn split(self) -> (ClientSender, ClientReceiver) {
        (
            ClientSender {
                writer: self.writer,
                host: self.host,
            },
            ClientReceiver {
                reader: self.reader,
            },
        )
    }
}

/// The write half of a split [`Client`].
pub struct ClientSender {
    writer: TcpStream,
    host: String,
}

impl ClientSender {
    /// Writes one `/execute/{id}` request (no response read).
    pub fn send_execute(&mut self, id: u64, opts: RequestOptions<'_>) -> io::Result<()> {
        let (path, body) = execute_request(id, opts);
        write!(
            self.writer,
            "POST {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n\r\n{body}",
            self.host,
            body.len()
        )?;
        self.writer.flush()
    }
}

/// The read half of a split [`Client`].
pub struct ClientReceiver {
    reader: BufReader<TcpStream>,
}

impl ClientReceiver {
    /// Reads the next pipelined response.
    pub fn recv(&mut self) -> Result<RawResponse, ClientError> {
        Ok(read_response(&mut self.reader)?)
    }
}

/// Builds the path and body for an `/execute/{id}` request.
fn execute_request(id: u64, opts: RequestOptions<'_>) -> (String, String) {
    // encode_into emits ",k:v" fragments meant to follow a first
    // field; strip the leading comma when options stand alone.
    let mut fields = String::new();
    opts.encode_into(&mut fields);
    let body = if fields.is_empty() {
        "{}".to_string()
    } else {
        format!("{{{}}}", &fields[1..])
    };
    (format!("/execute/{}", json::hex_id(id)), body)
}

/// Whether an error looks like the keep-alive race — the server
/// idle-closed the connection and we only noticed on the next use —
/// rather than a failure of the request itself.
fn stale_connection(e: &ClientError) -> bool {
    match e {
        ClientError::Io(e) => matches!(
            e.kind(),
            io::ErrorKind::BrokenPipe
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::UnexpectedEof
        ),
        // `ReadError::Eof` (close between our write landing and the
        // status line) converts to exactly this message above.
        ClientError::Protocol(m) => m == "connection closed before response",
        ClientError::Service { .. } => false,
    }
}

/// Builds the typed error for a non-200 response.
fn service_error(resp: &RawResponse) -> ClientError {
    let retry_after_s = resp.header("retry-after").and_then(|v| v.parse().ok());
    let error = json::parse(&resp.body_str())
        .ok()
        .and_then(|v| v.get("error").cloned())
        .map(|e| json::decode_error(&e))
        .unwrap_or_else(|| ServiceError::Exec(format!("HTTP {}", resp.status)));
    ClientError::Service {
        status: resp.status,
        error,
        retry_after_s,
    }
}
