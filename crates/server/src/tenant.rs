//! Per-tenant QoS: the PR 4–5 admission ladder, replicated *per
//! namespace* at the server's front door. The service's own
//! [`AdmissionConfig`] guards the process; this module guards each
//! tenant's slice of it, so one noisy tenant saturating its inflight
//! cap or tripping its breaker sheds **only its own** traffic — other
//! tenants' requests never queue behind the refusals.
//!
//! The ladder per tenant is the same shape as the service's:
//! inflight-cap shed (`429`, [`ShedReason::QueueFull`]) and a
//! consecutive-resource-failure circuit breaker with cooldown and a
//! half-open probe (`503`, [`ShedReason::CircuitOpen`], `Retry-After`
//! = remaining cooldown). Pressure-degrade stays global — memory
//! pressure is a process property, not a tenant one.

use oodb_service::{AdmissionConfig, ServiceError, ShedReason};
use oodb_telemetry::metrics::{Counter, Gauge, MetricsRegistry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The name requests without an explicit tenant land under.
pub const DEFAULT_TENANT: &str = "default";

/// A refusal from tenant admission, before any work ran.
#[derive(Debug)]
pub struct TenantShed {
    /// Which rung refused (`QueueFull` = inflight cap, `CircuitOpen` =
    /// breaker).
    pub reason: ShedReason,
    /// Suggested client backoff, surfaced as `Retry-After`.
    pub retry_after: Duration,
}

impl TenantShed {
    /// The equivalent typed service error for the wire.
    pub fn as_error(&self) -> ServiceError {
        ServiceError::Overloaded {
            reason: self.reason,
        }
    }
}

#[derive(Debug, Default)]
struct TenantBreaker {
    consecutive_failures: u32,
    open_until: Option<Instant>,
}

/// One tenant's admission state + counters.
pub struct TenantState {
    /// Tenant namespace.
    pub name: String,
    admission: AdmissionConfig,
    inflight: AtomicUsize,
    breaker: Mutex<TenantBreaker>,
    admitted: Counter,
    shed_queue_full: Counter,
    shed_circuit_open: Counter,
    resource_failures: Counter,
    inflight_gauge: Gauge,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl TenantState {
    fn new(name: &str, admission: AdmissionConfig, reg: &MetricsRegistry) -> Self {
        let t = [("tenant", name)];
        TenantState {
            name: name.to_string(),
            admission,
            inflight: AtomicUsize::new(0),
            breaker: Mutex::new(TenantBreaker::default()),
            admitted: reg.counter("oodb_server_tenant_admitted_total", &t),
            shed_queue_full: reg.counter(
                "oodb_server_tenant_shed_total",
                &[("tenant", name), ("reason", "queue_full")],
            ),
            shed_circuit_open: reg.counter(
                "oodb_server_tenant_shed_total",
                &[("tenant", name), ("reason", "circuit_open")],
            ),
            resource_failures: reg.counter("oodb_server_tenant_resource_failures_total", &t),
            inflight_gauge: reg.gauge("oodb_server_tenant_inflight", &t),
        }
    }

    /// Runs the tenant's admission ladder. `Ok` returns a permit that
    /// must be [`TenantPermit::settle`]d with the outcome (and releases
    /// the inflight slot on drop regardless).
    fn admit(self: &Arc<Self>) -> Result<TenantPermit, TenantShed> {
        // Breaker first: an open breaker sheds even an otherwise-free
        // slot, because admitted work would hit the same failing
        // resource again.
        if self.admission.breaker_threshold > 0 {
            let mut b = lock(&self.breaker);
            if let Some(until) = b.open_until {
                let now = Instant::now();
                if now < until {
                    self.shed_circuit_open.inc();
                    return Err(TenantShed {
                        reason: ShedReason::CircuitOpen,
                        retry_after: until - now,
                    });
                }
                // Cooldown over: half-open. Clear the gate but keep the
                // failure count one below the threshold, so a failing
                // probe re-trips immediately and a success resets.
                b.open_until = None;
                b.consecutive_failures = self.admission.breaker_threshold.saturating_sub(1);
            }
        }
        if self.admission.max_inflight > 0 {
            // Optimistic claim, rolled back on overflow — same pattern
            // as the service's own inflight gate.
            let claimed = self.inflight.fetch_add(1, Ordering::AcqRel) + 1;
            if claimed > self.admission.max_inflight {
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                self.shed_queue_full.inc();
                return Err(TenantShed {
                    reason: ShedReason::QueueFull,
                    retry_after: Duration::from_secs(1),
                });
            }
        } else {
            self.inflight.fetch_add(1, Ordering::AcqRel);
        }
        self.admitted.inc();
        self.inflight_gauge
            .set(self.inflight.load(Ordering::Acquire) as i64);
        Ok(TenantPermit {
            tenant: Arc::clone(self),
            settled: false,
        })
    }

    /// True when `e` counts as a *resource* failure for the breaker —
    /// the same classification the service's breaker uses, plus the
    /// worker-death family (a lost worker is a capacity loss).
    fn is_resource_failure(e: &ServiceError) -> bool {
        matches!(
            e,
            ServiceError::MemoryExhausted { .. }
                | ServiceError::StorageFault { .. }
                | ServiceError::WorkerLost
                | ServiceError::Panicked(_)
        )
    }

    fn record(&self, outcome: Result<(), &ServiceError>) {
        if self.admission.breaker_threshold == 0 {
            return;
        }
        let mut b = lock(&self.breaker);
        match outcome {
            Err(e) if Self::is_resource_failure(e) => {
                self.resource_failures.inc();
                b.consecutive_failures += 1;
                if b.consecutive_failures >= self.admission.breaker_threshold {
                    b.open_until = Some(Instant::now() + self.admission.breaker_cooldown);
                }
            }
            // Successes and benign errors (parse errors, row budgets,
            // deadlines) close the loop: the tenant's resources work.
            _ => b.consecutive_failures = 0,
        }
    }

    /// Currently admitted requests for this tenant.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Lifetime admitted / shed / resource-failure counts.
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        (
            self.admitted.get(),
            self.shed_queue_full.get(),
            self.shed_circuit_open.get(),
            self.resource_failures.get(),
        )
    }
}

/// An admitted request's slot: settle it with the outcome; dropping it
/// releases the tenant's inflight slot either way (panic-safe).
pub struct TenantPermit {
    tenant: Arc<TenantState>,
    settled: bool,
}

impl std::fmt::Debug for TenantPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantPermit")
            .field("tenant", &self.tenant.name)
            .field("settled", &self.settled)
            .finish()
    }
}

impl TenantPermit {
    /// Feeds the request outcome to the tenant breaker.
    pub fn settle(mut self, outcome: Result<(), &ServiceError>) {
        self.tenant.record(outcome);
        self.settled = true;
        drop(self);
    }
}

impl Drop for TenantPermit {
    fn drop(&mut self) {
        self.tenant.inflight.fetch_sub(1, Ordering::AcqRel);
        self.tenant
            .inflight_gauge
            .set(self.tenant.inflight.load(Ordering::Acquire) as i64);
        if !self.settled {
            // Dropped without settling (handler panicked mid-request):
            // count it as a resource failure so a crash-looping tenant
            // still trips its breaker.
            self.tenant
                .record(Err(&ServiceError::Panicked("unsettled permit".into())));
        }
    }
}

/// The registry of tenants: default policy plus per-name overrides,
/// states created lazily on first request.
pub struct TenantRegistry {
    default_admission: AdmissionConfig,
    overrides: HashMap<String, AdmissionConfig>,
    tenants: Mutex<HashMap<String, Arc<TenantState>>>,
    registry: Arc<MetricsRegistry>,
}

impl TenantRegistry {
    /// `default_admission` applies to every tenant without an override.
    /// `AdmissionConfig::default()` (everything disabled) makes tenant
    /// QoS a no-op, matching the service's own opt-in posture.
    pub fn new(
        default_admission: AdmissionConfig,
        overrides: Vec<(String, AdmissionConfig)>,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        TenantRegistry {
            default_admission,
            overrides: overrides.into_iter().collect(),
            tenants: Mutex::new(HashMap::new()),
            registry,
        }
    }

    fn state(&self, name: &str) -> Arc<TenantState> {
        let mut map = lock(&self.tenants);
        if let Some(t) = map.get(name) {
            return Arc::clone(t);
        }
        let admission = self
            .overrides
            .get(name)
            .copied()
            .unwrap_or(self.default_admission);
        let t = Arc::new(TenantState::new(name, admission, &self.registry));
        map.insert(name.to_string(), Arc::clone(&t));
        t
    }

    /// Admits one request for `tenant` (or [`DEFAULT_TENANT`]).
    pub fn admit(&self, tenant: Option<&str>) -> Result<TenantPermit, TenantShed> {
        self.state(tenant.unwrap_or(DEFAULT_TENANT)).admit()
    }

    /// Snapshot of every tenant seen so far, sorted by name.
    pub fn snapshot(&self) -> Vec<Arc<TenantState>> {
        let mut v: Vec<_> = lock(&self.tenants).values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(default_admission: AdmissionConfig) -> TenantRegistry {
        TenantRegistry::new(
            default_admission,
            Vec::new(),
            Arc::new(MetricsRegistry::new()),
        )
    }

    #[test]
    fn inflight_cap_sheds_only_the_saturated_tenant() {
        let reg = registry(AdmissionConfig {
            max_inflight: 2,
            ..Default::default()
        });
        let a1 = reg.admit(Some("a")).unwrap();
        let _a2 = reg.admit(Some("a")).unwrap();
        let shed = reg.admit(Some("a")).unwrap_err();
        assert_eq!(shed.reason, ShedReason::QueueFull);
        // Tenant b is untouched by a's saturation.
        let _b1 = reg.admit(Some("b")).unwrap();
        // Releasing a slot re-opens tenant a.
        a1.settle(Ok(()));
        let _a3 = reg.admit(Some("a")).unwrap();
        let a = reg.state("a");
        let (admitted, shed_q, _, _) = a.counts();
        assert_eq!((admitted, shed_q), (3, 1));
    }

    #[test]
    fn breaker_trips_on_resource_failures_and_half_opens() {
        let reg = registry(AdmissionConfig {
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(30),
            ..Default::default()
        });
        let boom = ServiceError::StorageFault {
            transient: false,
            retries: 0,
        };
        for _ in 0..2 {
            reg.admit(Some("t")).unwrap().settle(Err(&boom));
        }
        let shed = reg.admit(Some("t")).unwrap_err();
        assert_eq!(shed.reason, ShedReason::CircuitOpen);
        assert!(shed.retry_after <= Duration::from_millis(30));
        std::thread::sleep(Duration::from_millis(40));
        // Half-open probe admitted; a failure re-trips at once...
        reg.admit(Some("t")).unwrap().settle(Err(&boom));
        assert_eq!(
            reg.admit(Some("t")).unwrap_err().reason,
            ShedReason::CircuitOpen
        );
        std::thread::sleep(Duration::from_millis(40));
        // ...while a successful probe closes the breaker fully.
        reg.admit(Some("t")).unwrap().settle(Ok(()));
        reg.admit(Some("t")).unwrap().settle(Err(&boom));
        assert!(
            reg.admit(Some("t")).is_ok(),
            "one failure after close must not trip"
        );
    }

    #[test]
    fn benign_errors_do_not_feed_the_breaker() {
        let reg = registry(AdmissionConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(50),
            ..Default::default()
        });
        for e in [
            ServiceError::NoPlan,
            ServiceError::RowBudgetExceeded { budget: 1 },
            ServiceError::DeadlineExceeded { stage: "execute" },
        ] {
            reg.admit(Some("t")).unwrap().settle(Err(&e));
            let probe = reg.admit(Some("t"));
            assert!(probe.is_ok(), "{e} must not trip the breaker");
            probe.unwrap().settle(Ok(()));
        }
    }

    #[test]
    fn unsettled_permit_counts_as_a_resource_failure() {
        let reg = registry(AdmissionConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(5),
            ..Default::default()
        });
        drop(reg.admit(Some("t")).unwrap()); // handler panicked
        assert_eq!(
            reg.admit(Some("t")).unwrap_err().reason,
            ShedReason::CircuitOpen
        );
        assert_eq!(reg.state("t").inflight(), 0, "slot still released");
    }
}
