//! Bakes the git commit hash into the binary so the `oodb_build_info`
//! metric can identify exactly what is serving. Falls back to
//! `"unknown"` when the build happens outside a git checkout (vendored
//! tarballs, CI caches without history).

use std::process::Command;

fn main() {
    let hash = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=OODB_GIT_HASH={hash}");
    // Re-run when HEAD moves so the hash never goes stale silently.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
