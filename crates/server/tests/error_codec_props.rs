//! Property-based round-trip of every [`ServiceError`] variant through
//! the server's hand-rolled JSON codec, with adversarial payload strings:
//! embedded quotes, lone and doubled backslashes, text that *looks like*
//! JSON escapes, raw control characters, multi-byte unicode, and long
//! unescaped runs. The typed value that comes back must equal the one
//! that went in — the wire never degrades an error to prose.

use oodb_server::json::{decode_error, encode_error, error_kind, parse, Json};
use oodb_service::{ServiceError, ShedReason};
use proptest::prelude::*;

/// Strings built to break naive escaping: each fragment targets one
/// codec hazard, and concatenation composes them in arbitrary orders.
fn adversarial() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just(String::from("\"")),
        Just(String::from("\\")),
        Just(String::from("\\\\\"")),
        // Text resembling an escape must survive as *text*.
        Just(String::from("\\u0022\\n")),
        Just(String::from("\n\t\r")),
        Just(String::from("\u{1}\u{8}\u{1f}")),
        Just(String::from("é — €𝄞")),
        // A long unescaped run exercises the copy-through fast path.
        Just("x".repeat(300)),
        "[ -~]{0,24}".prop_map(|s: String| s),
    ];
    proptest::collection::vec(fragment, 0..8).prop_map(|v| v.concat())
}

fn arb_shed_reason() -> impl Strategy<Value = ShedReason> {
    prop_oneof![
        Just(ShedReason::QueueFull),
        Just(ShedReason::CircuitOpen),
        Just(ShedReason::MemoryPressure),
    ]
}

/// All 14 wire shapes: the 12 enum variants, with `Overloaded` split per
/// shed reason (each reason is its own `reason` discriminant on the wire).
fn arb_error() -> impl Strategy<Value = ServiceError> {
    // Raw JSON numbers are f64 on the wire; stay within exact-integer
    // range so equality is byte-faithful (ids travel as hex strings and
    // may use all 64 bits).
    let num = 0u64..(1 << 53);
    prop_oneof![
        (
            adversarial(),
            prop_oneof![Just(None), (0usize..100_000).prop_map(Some)]
        )
            .prop_map(|(msg, pos)| ServiceError::Zql(zql::ZqlError { msg, pos })),
        Just(ServiceError::NoPlan),
        any::<u64>().prop_map(|id| ServiceError::UnknownStatement { id }),
        prop_oneof![Just("execute"), Just("optimize")]
            .prop_map(|stage| ServiceError::DeadlineExceeded { stage }),
        Just(ServiceError::Cancelled),
        num.clone()
            .prop_map(|budget| ServiceError::RowBudgetExceeded { budget }),
        arb_shed_reason().prop_map(|reason| ServiceError::Overloaded { reason }),
        (num.clone(), num)
            .prop_map(|(requested, budget)| ServiceError::MemoryExhausted { requested, budget }),
        (any::<bool>(), any::<u32>())
            .prop_map(|(transient, retries)| { ServiceError::StorageFault { transient, retries } }),
        adversarial().prop_map(ServiceError::Exec),
        Just(ServiceError::WorkerLost),
        adversarial().prop_map(ServiceError::Panicked),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_variant_round_trips_with_adversarial_strings(e in arb_error()) {
        let wire = encode_error(&e);
        // The encoder must never leak a raw control byte onto the wire.
        prop_assert!(
            !wire.bytes().any(|b| b < 0x20),
            "raw control byte in wire: {wire:?}"
        );
        let parsed = parse(&wire)
            .unwrap_or_else(|err| panic!("self-produced wire must parse: {err}\n{wire}"));
        prop_assert_eq!(
            parsed.get("kind").and_then(Json::as_str),
            Some(error_kind(&e)),
            "kind discriminant"
        );
        // The human-readable message rides along regardless of variant.
        let msg = e.to_string();
        prop_assert_eq!(
            parsed.get("message").and_then(Json::as_str),
            Some(msg.as_str())
        );
        prop_assert_eq!(decode_error(&parsed), e);
    }
}
