//! Property-based tests for the on-disk codec: arbitrary objects survive
//! encode→page-pack→decode, and truncated inputs fail cleanly.

use oodb_object::{Date, Object, Oid, TypeId, Value};
use oodb_storage::codec::{
    decode_object, decode_value, encode_object, encode_value, pack_collection, unpack_pages,
};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only (NaN equality would fail the roundtrip
        // comparison, and queries never produce NaN constants).
        (-1e12f64..1e12).prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 _-]{0,40}".prop_map(|s| Value::str(&s)),
        (-500_000i32..500_000).prop_map(|d| Value::Date(Date(d))),
        (0usize..32, 0u32..10_000)
            .prop_map(|(t, s)| Value::Ref(Oid::new(TypeId::from_index(t), s))),
        proptest::collection::vec((0usize..8, 0u32..1000), 0..6).prop_map(|refs| {
            let mut v: Vec<Oid> = refs
                .into_iter()
                .map(|(t, s)| Oid::new(TypeId::from_index(t), s))
                .collect();
            v.sort_unstable();
            v.dedup();
            Value::RefSet(v.into())
        }),
    ]
}

fn arb_object(seq: u32) -> impl Strategy<Value = Object> {
    proptest::collection::vec(arb_value(), 0..8)
        .prop_map(move |slots| Object::new(Oid::new(TypeId::from_index(2), seq), slots))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn value_roundtrips(v in arb_value()) {
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(decode_value(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn objects_roundtrip_through_pages(
        objs in proptest::collection::vec(arb_object(0), 1..40)
    ) {
        // Re-sequence so OIDs are distinct (packing does not require it,
        // but realistic collections have unique identity).
        let objs: Vec<Object> = objs
            .into_iter()
            .enumerate()
            .map(|(i, o)| Object::new(Oid::new(TypeId::from_index(2), i as u32), o.slots))
            .collect();
        let pages = pack_collection(objs.iter()).unwrap();
        prop_assert_eq!(unpack_pages(&pages).unwrap(), objs);
    }

    /// Any truncation of a valid encoding fails with an error — never a
    /// panic, never a bogus success that consumes the whole buffer.
    #[test]
    fn truncation_is_detected(v in arb_value(), cut in 0usize..64) {
        let obj = Object::new(Oid::new(TypeId::from_index(0), 1), vec![v]);
        let mut buf = Vec::new();
        encode_object(&obj, &mut buf);
        if cut >= buf.len() {
            return Ok(());
        }
        let truncated = &buf[..cut];
        let mut pos = 0;
        prop_assert!(decode_object(truncated, &mut pos).is_err());
    }
}

/// Persistence round trip: pack a generated collection, write the raw
/// pages to a file, read them back, and recover every object intact.
#[test]
fn pages_survive_a_trip_through_a_file() {
    use oodb_storage::codec::Page;
    use oodb_storage::{generate_paper_db, GenConfig};
    use std::io::{Read as _, Write as _};

    let (store, model) = generate_paper_db(GenConfig::small());
    let objs: Vec<Object> = store
        .members(model.ids.cities)
        .iter()
        .map(|&o| store.object(o).clone())
        .collect();
    let pages = pack_collection(objs.iter()).unwrap();

    let path = std::env::temp_dir().join("oodb_codec_roundtrip.pages");
    {
        let mut f = std::fs::File::create(&path).unwrap();
        for p in &pages {
            f.write_all(p.bytes()).unwrap();
        }
    }
    let mut bytes = Vec::new();
    std::fs::File::open(&path)
        .unwrap()
        .read_to_end(&mut bytes)
        .unwrap();
    std::fs::remove_file(&path).ok();

    let restored: Vec<Page> = bytes
        .chunks_exact(oodb_storage::PAGE_BYTES)
        .map(|c| Page::from_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(restored.len(), pages.len());
    assert_eq!(unpack_pages(&restored).unwrap(), objs);
}
