//! The object store: typed objects in dense page regions, collections,
//! and OID dereference.
//!
//! Layout model ("objects in user-defined sets and type extents are assumed
//! to be densely packed on pages"): every type owns one contiguous page
//! region in which its instances are packed in OID order. A type's extent
//! scans the whole region; a user-defined set whose members form a prefix
//! of the region (how the generator lays them out) scans a dense prefix.
//! Dereferencing an OID maps to an exact page in O(1) — a stored reference
//! is literally a "goto on disk".

use crate::disk::PageId;
use crate::index::BuiltIndex;
use oodb_object::{Catalog, CollectionId, FieldId, IndexId, Object, Oid, Schema, TypeId, Value};
use std::collections::HashMap;

/// Page region of one type.
#[derive(Clone, Copy, Debug)]
struct Region {
    first_page: PageId,
    objs_per_page: u32,
    /// The per-object byte size the region was packed at, kept so a
    /// durability checkpoint can replay the original `insert_objects`
    /// call and land on identical page geometry.
    obj_bytes: u32,
}

/// Typed errors for store reads that previously panicked. The executor's
/// recovery-sensitive paths and WAL replay go through the `try_` accessors
/// so a corrupt log record degrades to a query error, never a process
/// abort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An OID referenced an object the store does not hold (dangling
    /// reference — out-of-range type or sequence).
    UnknownOid(Oid),
    /// The OID's type has no storage region (never populated).
    NoRegion(TypeId),
    /// The field is not part of the type's layout.
    UnknownField {
        /// The type whose layout was consulted.
        ty: TypeId,
        /// The field that is not on it.
        field: FieldId,
    },
    /// A path link held a non-reference value (schema/data mismatch).
    NotARef {
        /// The object whose link field was read.
        oid: Oid,
        /// The link field.
        field: FieldId,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownOid(oid) => write!(f, "dangling reference: {oid:?}"),
            StoreError::NoRegion(ty) => write!(f, "type {ty:?} has no storage region"),
            StoreError::UnknownField { ty, field } => {
                write!(f, "field {field:?} not on type {ty:?}")
            }
            StoreError::NotARef { oid, field } => {
                write!(
                    f,
                    "path link {field:?} on {oid:?} is not a single-valued reference"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// The in-memory database: schema + catalog + objects + indexes.
#[derive(Clone, Debug)]
pub struct Store {
    schema: Schema,
    catalog: Catalog,
    /// Objects per type, indexed by `TypeId`, packed in OID order.
    objects: Vec<Vec<Object>>,
    regions: Vec<Option<Region>>,
    /// Collection membership in storage order, indexed by `CollectionId`.
    members: Vec<Vec<Oid>>,
    /// Built indexes, parallel to `catalog.indexes()`.
    indexes: Vec<BuiltIndex>,
    /// `(type, field) -> slot` cache so hot-path slot lookup is O(1).
    slots: HashMap<(TypeId, FieldId), usize>,
    next_page: PageId,
    /// When attached, executors charge page access through this shared
    /// pool instead of a private one: concurrent queries share residency
    /// (one query's fetch warms the next) exactly as on a real server.
    /// Cloning the store — snapshot swaps in the query service — clones
    /// the `Arc`, so the pool stays warm across catalog changes.
    shared_pool: Option<crate::SharedBufferPool>,
    /// When attached, every executor created against this store routes
    /// page reads through the injector first (see
    /// [`oodb_fault::FaultInjector`]). Clones share counters and healing
    /// state, mirroring the shared-pool pattern above.
    fault_injector: Option<oodb_fault::FaultInjector>,
    /// When attached, every executor created against this store draws a
    /// per-run [`oodb_mem::MemoryGrant`] from this governor; operators
    /// reserve bytes before building hash tables or opening assembly
    /// windows, and spill or stage when refused. Clones share the
    /// ledger, mirroring the fault-injector pattern above.
    memory_governor: Option<oodb_mem::MemoryGovernor>,
}

impl Store {
    /// Creates an empty store for a schema and catalog. Populate with
    /// [`Store::insert_objects`] and [`Store::set_members`], then call
    /// [`Store::build_indexes`].
    pub fn new(schema: Schema, catalog: Catalog) -> Self {
        let n_types = schema.type_count();
        let n_colls = catalog.collections().count();
        let mut slots = HashMap::new();
        for (ty, _) in schema.types() {
            for (slot, f) in schema.fields_of(ty).into_iter().enumerate() {
                slots.insert((ty, f), slot);
            }
        }
        Store {
            schema,
            catalog,
            objects: vec![Vec::new(); n_types],
            regions: vec![None; n_types],
            members: vec![Vec::new(); n_colls],
            indexes: Vec::new(),
            slots,
            next_page: 0,
            shared_pool: None,
            fault_injector: None,
            memory_governor: None,
        }
    }

    /// Attaches a shared buffer pool of `capacity` pages (replacing any
    /// previous one, cold). Executors created against this store charge
    /// page access through it; see [`crate::SharedBufferPool`].
    pub fn attach_shared_pool(&mut self, capacity: usize) {
        self.shared_pool = Some(crate::SharedBufferPool::new(capacity));
    }

    /// Detaches the shared pool; executors go back to private pools.
    pub fn detach_shared_pool(&mut self) {
        self.shared_pool = None;
    }

    /// The shared buffer pool, when one is attached.
    pub fn shared_pool(&self) -> Option<&crate::SharedBufferPool> {
        self.shared_pool.as_ref()
    }

    /// Attaches a fault injector: executors created against this store
    /// consult it on every page read.
    pub fn attach_fault_injector(&mut self, injector: oodb_fault::FaultInjector) {
        self.fault_injector = Some(injector);
    }

    /// Detaches the fault injector; reads become infallible again.
    pub fn detach_fault_injector(&mut self) {
        self.fault_injector = None;
    }

    /// The fault injector, when one is attached.
    pub fn fault_injector(&self) -> Option<&oodb_fault::FaultInjector> {
        self.fault_injector.as_ref()
    }

    /// Attaches a memory governor: executors created against this store
    /// draw their per-run memory grants from it.
    pub fn attach_memory_governor(&mut self, governor: oodb_mem::MemoryGovernor) {
        self.memory_governor = Some(governor);
    }

    /// Detaches the memory governor; runs go back to detached grants
    /// (per-query budgets still apply, no process-wide cap).
    pub fn detach_memory_governor(&mut self) {
        self.memory_governor = None;
    }

    /// The memory governor, when one is attached.
    pub fn memory_governor(&self) -> Option<&oodb_mem::MemoryGovernor> {
        self.memory_governor.as_ref()
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Replaces the catalog (index-availability sweeps). The caller must
    /// re-run [`Store::build_indexes`] afterwards. The statistics epoch
    /// stays monotonic across the swap so plans cached under the old
    /// catalog can never be served against the new one.
    pub fn set_catalog(&mut self, catalog: Catalog) {
        let floor = self.catalog.stats_epoch() + 1;
        self.catalog = catalog;
        self.catalog.raise_stats_epoch_to(floor);
        self.indexes.clear();
    }

    /// Bulk-inserts the instances of one type, packing them into a fresh
    /// page region at `obj_bytes` per object. Objects must arrive in OID
    /// order starting at sequence 0. Panics on a second insert for a type.
    pub fn insert_objects(&mut self, ty: TypeId, objs: Vec<Object>, obj_bytes: u32) {
        assert!(
            self.regions[ty.index()].is_none(),
            "type {} already populated",
            self.schema.ty(ty).name
        );
        for (i, o) in objs.iter().enumerate() {
            assert_eq!(o.oid, Oid::new(ty, i as u32), "objects must be dense");
        }
        let per_page = (4096 / obj_bytes.max(1)).max(1);
        let pages = (objs.len() as u64).div_ceil(per_page as u64);
        self.regions[ty.index()] = Some(Region {
            first_page: self.next_page,
            objs_per_page: per_page,
            obj_bytes,
        });
        self.next_page += pages.max(1);
        self.objects[ty.index()] = objs;
    }

    /// Whether a type already owns a storage region (a second
    /// [`Store::insert_objects`] for it would panic).
    pub fn has_region(&self, ty: TypeId) -> bool {
        ty.index() < self.regions.len() && self.regions[ty.index()].is_some()
    }

    /// The per-object byte size a type's region was packed at, when the
    /// type is populated. Checkpoints record it so replaying the insert
    /// reproduces identical page geometry.
    pub fn region_obj_bytes(&self, ty: TypeId) -> Option<u32> {
        self.regions.get(ty.index())?.map(|r| r.obj_bytes)
    }

    /// The first page of a type's region (checkpoints sort regions by it
    /// so replayed inserts allocate pages in the original order).
    pub fn region_first_page(&self, ty: TypeId) -> Option<PageId> {
        self.regions.get(ty.index())?.map(|r| r.first_page)
    }

    /// All stored instances of a type, in OID order. Empty for
    /// unpopulated types.
    pub fn objects_of(&self, ty: TypeId) -> &[Object] {
        &self.objects[ty.index()]
    }

    /// Sets a collection's membership (storage order).
    pub fn set_members(&mut self, coll: CollectionId, oids: Vec<Oid>) {
        self.members[coll.index()] = oids;
    }

    /// Members of a collection, in storage order.
    pub fn members(&self, coll: CollectionId) -> &[Oid] {
        &self.members[coll.index()]
    }

    /// Dereferences an OID. Panics on dangling references — the generator
    /// never produces them; recovery-sensitive callers use
    /// [`Store::try_object`] instead.
    pub fn object(&self, oid: Oid) -> &Object {
        self.try_object(oid)
            .unwrap_or_else(|e| panic!("{e} (dangling reference)"))
    }

    /// Dereferences an OID, reporting dangling references as a typed
    /// error instead of panicking.
    pub fn try_object(&self, oid: Oid) -> Result<&Object, StoreError> {
        self.objects
            .get(oid.type_id().index())
            .and_then(|objs| objs.get(oid.seq() as usize))
            .ok_or(StoreError::UnknownOid(oid))
    }

    /// Number of stored instances of a type.
    pub fn population(&self, ty: TypeId) -> usize {
        self.objects[ty.index()].len()
    }

    /// The page an object lives on. Panics when the type was never
    /// populated; recovery-sensitive callers use [`Store::try_page_of`].
    pub fn page_of(&self, oid: Oid) -> PageId {
        self.try_page_of(oid)
            .unwrap_or_else(|e| panic!("type has no storage region ({e})"))
    }

    /// The page an object lives on, reporting a missing region as a typed
    /// error instead of panicking.
    pub fn try_page_of(&self, oid: Oid) -> Result<PageId, StoreError> {
        let ty = oid.type_id();
        let r = self
            .regions
            .get(ty.index())
            .copied()
            .flatten()
            .ok_or(StoreError::NoRegion(ty))?;
        Ok(r.first_page + (oid.seq() / r.objs_per_page) as u64)
    }

    /// Slot index of `field` on objects of exact type `ty`.
    pub fn slot(&self, ty: TypeId, field: FieldId) -> usize {
        self.try_slot(ty, field)
            .unwrap_or_else(|_| panic!("field not on type {}", self.schema.ty(ty).name))
    }

    /// Slot index of `field` on `ty`, reporting a layout mismatch as a
    /// typed error instead of panicking.
    pub fn try_slot(&self, ty: TypeId, field: FieldId) -> Result<usize, StoreError> {
        self.slots
            .get(&(ty, field))
            .copied()
            .ok_or(StoreError::UnknownField { ty, field })
    }

    /// Reads a field of an object (by the object's exact type layout).
    pub fn read_field(&self, oid: Oid, field: FieldId) -> &Value {
        let obj = self.object(oid);
        obj.slot(self.slot(oid.type_id(), field))
    }

    /// Reads a field of an object, reporting dangling OIDs and layout
    /// mismatches as typed errors instead of panicking. Recovery-sensitive
    /// executor paths and WAL replay route through this.
    pub fn try_read_field(&self, oid: Oid, field: FieldId) -> Result<&Value, StoreError> {
        let obj = self.try_object(oid)?;
        let slot = self.try_slot(oid.type_id(), field)?;
        obj.slots.get(slot).ok_or(StoreError::UnknownField {
            ty: oid.type_id(),
            field,
        })
    }

    /// Follows a reference path from `oid` (all links single-valued) and
    /// reads the terminal attribute. Used to build path indexes and as the
    /// semantic oracle in tests. Panics on malformed data; recovery paths
    /// use [`Store::try_eval_path`].
    pub fn eval_path(&self, oid: Oid, path: &[FieldId], key: FieldId) -> Value {
        self.try_eval_path(oid, path, key)
            .unwrap_or_else(|e| panic!("path link is not a single-valued reference: {e}"))
    }

    /// Follows a reference path, reporting dangling references and
    /// non-reference links as typed errors — malformed recovered data
    /// degrades to a query error, not a crash.
    pub fn try_eval_path(
        &self,
        oid: Oid,
        path: &[FieldId],
        key: FieldId,
    ) -> Result<Value, StoreError> {
        let mut cur = oid;
        for &link in path {
            match self.try_read_field(cur, link)? {
                Value::Ref(next) => cur = *next,
                _ => {
                    return Err(StoreError::NotARef {
                        oid: cur,
                        field: link,
                    })
                }
            }
        }
        Ok(self.try_read_field(cur, key)?.clone())
    }

    /// Builds every index declared in the catalog. Bumps the catalog's
    /// statistics epoch: the physical design just (re)materialized, so
    /// previously cached plans must re-optimize.
    pub fn build_indexes(&mut self) {
        self.try_rebuild_indexes(true)
            .unwrap_or_else(|e| panic!("index build over corrupt data: {e}"))
    }

    /// Index build with typed errors and a controllable epoch bump.
    /// WAL replay uses `bump_epoch = false` when re-materializing a
    /// checkpoint whose catalog already carries the final epoch, and the
    /// typed error path means a corrupt log record surfaces as a recovery
    /// error instead of aborting the process. All-or-nothing: on error the
    /// store is unchanged.
    pub fn try_rebuild_indexes(&mut self, bump_epoch: bool) -> Result<(), StoreError> {
        // Evaluate every index's pairs *before* mutating anything so a
        // dangling reference cannot leave a half-built index vector.
        let defs: Vec<_> = self.catalog.indexes().map(|(_, d)| d.clone()).collect();
        let mut built = Vec::with_capacity(defs.len());
        for def in &defs {
            let members = &self.members[def.collection.index()];
            let mut pairs: Vec<(Value, Oid)> = Vec::with_capacity(members.len());
            for &oid in members {
                pairs.push((self.try_eval_path(oid, &def.path, def.key)?, oid));
            }
            built.push(pairs);
        }
        if bump_epoch {
            self.catalog.bump_stats_epoch();
        }
        self.indexes.clear();
        for pairs in built {
            // Reserve internal + leaf pages after everything else on disk.
            let leaf_first = self.next_page + 4;
            let leaves = (pairs.len() as u64).div_ceil(crate::index::INDEX_FANOUT);
            self.next_page = leaf_first + leaves.max(1);
            self.indexes.push(BuiltIndex::build(pairs, leaf_first));
        }
        Ok(())
    }

    /// Whether [`Store::build_indexes`] has materialized the catalog's
    /// indexes (checkpoints record this so recovery rebuilds them).
    pub fn indexes_built(&self) -> bool {
        !self.indexes.is_empty()
    }

    /// A built index by catalog id. Panics if [`Store::build_indexes`] has
    /// not run or the catalog changed since.
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, id: IndexId) -> &BuiltIndex {
        &self.indexes[id.index()]
    }

    /// Total pages allocated so far.
    pub fn pages_allocated(&self) -> PageId {
        self.next_page
    }

    /// Collects an equi-depth histogram for every index's `(collection,
    /// path, key)` plus any extra attribute paths given, attaching them to
    /// a copy of the catalog. This is the statistics-gathering pass behind
    /// the paper's future-work item "refine ... selectivity and cost
    /// estimation"; rerun it after data changes. The returned catalog
    /// carries a bumped statistics epoch so plan caches re-optimize under
    /// the refined estimates.
    pub fn collect_statistics(
        &self,
        extra: &[(CollectionId, Vec<FieldId>, FieldId)],
        buckets: usize,
    ) -> Catalog {
        self.try_collect_statistics(extra, buckets)
            .unwrap_or_else(|e| panic!("statistics over corrupt data: {e}"))
    }

    /// Statistics collection with typed errors, for WAL replay: a corrupt
    /// log record surfaces as a recovery error, never a process abort.
    pub fn try_collect_statistics(
        &self,
        extra: &[(CollectionId, Vec<FieldId>, FieldId)],
        buckets: usize,
    ) -> Result<Catalog, StoreError> {
        let mut catalog = self.catalog.clone();
        let mut targets: Vec<(CollectionId, Vec<FieldId>, FieldId)> = self
            .catalog
            .indexes()
            .map(|(_, d)| (d.collection, d.path.clone(), d.key))
            .collect();
        targets.extend_from_slice(extra);
        targets.sort();
        targets.dedup();
        for (coll, path, key) in targets {
            let mut values: Vec<Value> = Vec::new();
            for &oid in self.members(coll) {
                values.push(self.try_eval_path(oid, &path, key)?);
            }
            if let Some(h) = oodb_object::Histogram::build(values, buckets) {
                catalog.set_histogram(coll, path, key, h);
            }
        }
        catalog.bump_stats_epoch();
        Ok(catalog)
    }

    /// Pages covering members `[0, n)` of a collection — the dense-prefix
    /// scan range. For extents this is the whole type region.
    pub fn scan_pages(&self, coll: CollectionId) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self.members[coll.index()]
            .iter()
            .map(|&o| self.page_of(o))
            .collect();
        pages.dedup();
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_object::{AttrType, CollectionDef, CollectionKind, FieldKind};

    fn tiny() -> (Store, TypeId, CollectionId) {
        let mut b = Schema::builder();
        let t = b.add_type("T", None);
        b.add_field(t, "x", FieldKind::Attr(AttrType::Int));
        let schema = b.build();
        let mut cat = Catalog::new();
        let coll = cat.add_collection(CollectionDef {
            name: "Ts".into(),
            elem_type: t,
            kind: CollectionKind::Extent,
            cardinality: 100,
            obj_bytes: 400,
        });
        let mut store = Store::new(schema, cat);
        let objs: Vec<Object> = (0..100)
            .map(|i| Object::new(Oid::new(t, i), vec![Value::Int(i as i64 % 7)]))
            .collect();
        store.insert_objects(t, objs, 400);
        let oids: Vec<Oid> = (0..100).map(|i| Oid::new(t, i)).collect();
        store.set_members(coll, oids);
        (store, t, coll)
    }

    #[test]
    fn dense_packing_page_math() {
        let (store, t, _) = tiny();
        // 4096/400 = 10 objects per page.
        assert_eq!(store.page_of(Oid::new(t, 0)), 0);
        assert_eq!(store.page_of(Oid::new(t, 9)), 0);
        assert_eq!(store.page_of(Oid::new(t, 10)), 1);
        assert_eq!(store.page_of(Oid::new(t, 99)), 9);
    }

    #[test]
    fn scan_pages_are_dense() {
        let (store, _, coll) = tiny();
        let pages = store.scan_pages(coll);
        assert_eq!(pages, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn read_field_roundtrip() {
        let (store, t, _) = tiny();
        let x = store.schema().field_by_name(t, "x").unwrap();
        assert_eq!(store.read_field(Oid::new(t, 8), x), &Value::Int(1));
    }

    #[test]
    fn index_build_and_lookup() {
        let (mut store, t, coll) = tiny();
        let x = store.schema().field_by_name(t, "x").unwrap();
        let mut cat = store.catalog().clone();
        cat.add_index(oodb_object::IndexDef {
            name: "Ts_x".into(),
            collection: coll,
            path: vec![],
            key: x,
            distinct_keys: 7,
            clustered: false,
        });
        store.set_catalog(cat);
        store.build_indexes();
        let id = store.catalog().index_by_name("Ts_x").unwrap();
        let hits = store.index(id).lookup_eq(&Value::Int(3));
        // x = i % 7 == 3 for i in {3,10,17,...,94}: 14 values.
        assert_eq!(hits.len(), 14);
        assert!(hits
            .iter()
            .all(|&o| o == Oid::new(t, o.seq()) && store.read_field(o, x) == &Value::Int(3)));
    }

    #[test]
    #[should_panic(expected = "already populated")]
    fn double_insert_panics() {
        let (mut store, t, _) = tiny();
        store.insert_objects(t, vec![], 400);
    }

    #[test]
    fn path_eval_follows_refs() {
        let mut b = Schema::builder();
        let p = b.add_type("P", None);
        let p_name = b.add_field(p, "name", FieldKind::Attr(AttrType::Str));
        let c = b.add_type("C", None);
        let c_ref = b.add_field(c, "p", FieldKind::Ref(p));
        let schema = b.build();
        let mut store = Store::new(schema, Catalog::new());
        store.insert_objects(
            p,
            vec![Object::new(Oid::new(p, 0), vec![Value::str("joe")])],
            100,
        );
        store.insert_objects(
            c,
            vec![Object::new(
                Oid::new(c, 0),
                vec![Value::Ref(Oid::new(p, 0))],
            )],
            100,
        );
        assert_eq!(
            store.eval_path(Oid::new(c, 0), &[c_ref], p_name),
            Value::str("joe")
        );
    }
}
