//! Buffer pool (LRU) and the combined I/O facade.
//!
//! The paper notes that "actual assembly performance including the effects
//! of buffer hits can only be studied in the context of a real, working
//! system" — this is that system, scaled down: a fixed-capacity LRU page
//! cache in front of the simulated disk. The executor performs all page
//! access through [`Io`], so buffer hits are free and misses are charged by
//! the [`crate::disk::Disk`].

use crate::disk::{Disk, DiskParams, DiskStats, PageId};
use std::collections::HashMap;

/// A fixed-capacity LRU page cache.
///
/// Implementation: a hash map from page to a monotically increasing access
/// stamp plus a lazily compacted eviction scan. Capacity is in pages; the
/// paper's 32 MB workstation at 4 KB pages gives 8192.
#[derive(Clone, Debug)]
pub struct BufferPool {
    capacity: usize,
    clock: u64,
    resident: HashMap<PageId, u64>,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            capacity: capacity.max(1),
            clock: 0,
            resident: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Pool sized for the paper's DECstation (32 MB at the given page size).
    pub fn decstation(page_bytes: u32) -> Self {
        BufferPool::new((32 * 1024 * 1024 / page_bytes as usize).max(1))
    }

    /// Records an access. Returns `true` on a buffer hit. On a miss the
    /// page becomes resident, evicting the least-recently-used page if the
    /// pool is full.
    pub fn access(&mut self, page: PageId) -> bool {
        self.clock += 1;
        if let Some(stamp) = self.resident.get_mut(&page) {
            *stamp = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.resident.len() >= self.capacity {
            // Evict the LRU entry. Linear scan is fine: eviction only
            // happens on misses and pools are small in tests / bounded in
            // experiments.
            if let Some((&victim, _)) = self.resident.iter().min_by_key(|(_, &s)| s) {
                self.resident.remove(&victim);
            }
        }
        self.resident.insert(page, self.clock);
        false
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Drops all cached pages and statistics.
    pub fn reset(&mut self) {
        self.resident.clear();
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

/// The I/O facade the executor charges all page access through:
/// buffer-pool check first, disk on miss.
#[derive(Clone, Debug)]
pub struct Io {
    /// The page cache.
    pub pool: BufferPool,
    /// The simulated device.
    pub disk: Disk,
}

impl Io {
    /// Creates an I/O stack with the given pool capacity and disk timing.
    pub fn new(pool_pages: usize, params: DiskParams) -> Self {
        Io {
            pool: BufferPool::new(pool_pages),
            disk: Disk::new(params),
        }
    }

    /// The paper's evaluation machine: 32 MB buffer, default disk.
    pub fn decstation() -> Self {
        let params = DiskParams::default();
        Io {
            pool: BufferPool::decstation(params.page_bytes),
            disk: Disk::new(params),
        }
    }

    /// Touches one page (sequential/random classification by the disk).
    pub fn touch(&mut self, page: PageId) {
        if !self.pool.access(page) {
            self.disk.read(page);
        }
    }

    /// Touches a batch of pages in elevator order; only misses reach disk.
    pub fn touch_elevator(&mut self, pages: &[PageId]) {
        let mut missed: Vec<PageId> = pages
            .iter()
            .copied()
            .filter(|&p| !self.pool.access(p))
            .collect();
        if !missed.is_empty() {
            self.disk.read_elevator(&mut missed);
        }
    }

    /// Simulated elapsed I/O time in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.disk.stats().total_s
    }

    /// Disk statistics.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// Clears both the pool and the disk counters.
    pub fn reset(&mut self) {
        self.pool.reset();
        self.disk.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut b = BufferPool::new(4);
        assert!(!b.access(1));
        assert!(b.access(1));
        assert_eq!(b.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut b = BufferPool::new(2);
        b.access(1);
        b.access(2);
        b.access(1); // 1 now more recent than 2
        b.access(3); // evicts 2
        assert!(b.access(1), "1 still resident");
        assert!(!b.access(2), "2 was evicted");
    }

    #[test]
    fn io_charges_only_misses() {
        let mut io = Io::new(8, DiskParams::default());
        io.touch(10);
        io.touch(10);
        io.touch(10);
        assert_eq!(io.disk_stats().pages(), 1);
        let (hits, misses) = io.pool.stats();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn elevator_batch_skips_resident_pages() {
        let mut io = Io::new(8, DiskParams::default());
        io.touch(5);
        io.touch_elevator(&[5, 6, 7]);
        // Page 5 was resident; only 6 and 7 hit the disk.
        assert_eq!(io.disk_stats().pages(), 3); // 1 initial + 2 batch
    }

    #[test]
    fn pool_never_exceeds_capacity() {
        let mut b = BufferPool::new(3);
        for p in 0..100 {
            b.access(p);
        }
        assert!(b.resident_pages() <= 3);
    }
}
