//! Buffer pool (LRU) and the combined I/O facade.
//!
//! The paper notes that "actual assembly performance including the effects
//! of buffer hits can only be studied in the context of a real, working
//! system" — this is that system, scaled down: a fixed-capacity LRU page
//! cache in front of the simulated disk. The executor performs all page
//! access through [`Io`], so buffer hits are free and misses are charged by
//! the [`crate::disk::Disk`].

use crate::disk::{Disk, DiskParams, DiskStats, PageId};
use oodb_fault::{Fault, FaultInjector};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A fixed-capacity LRU page cache.
///
/// Implementation: a hash map from page to a monotically increasing access
/// stamp plus a lazily compacted eviction scan. Capacity is in pages; the
/// paper's 32 MB workstation at 4 KB pages gives 8192.
#[derive(Clone, Debug)]
pub struct BufferPool {
    capacity: usize,
    clock: u64,
    resident: HashMap<PageId, u64>,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            capacity: capacity.max(1),
            clock: 0,
            resident: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Pool sized for the paper's DECstation (32 MB at the given page size).
    pub fn decstation(page_bytes: u32) -> Self {
        BufferPool::new((32 * 1024 * 1024 / page_bytes as usize).max(1))
    }

    /// Records an access. Returns `true` on a buffer hit. On a miss the
    /// page becomes resident, evicting the least-recently-used page if the
    /// pool is full.
    pub fn access(&mut self, page: PageId) -> bool {
        self.clock += 1;
        if let Some(stamp) = self.resident.get_mut(&page) {
            *stamp = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.resident.len() >= self.capacity {
            // Evict the LRU entry. Linear scan is fine: eviction only
            // happens on misses and pools are small in tests / bounded in
            // experiments.
            if let Some((&victim, _)) = self.resident.iter().min_by_key(|(_, &s)| s) {
                self.resident.remove(&victim);
            }
        }
        self.resident.insert(page, self.clock);
        false
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Drops all cached pages and statistics.
    pub fn reset(&mut self) {
        self.resident.clear();
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

/// A buffer pool shared by concurrent executions (one pool per database,
/// the way a real server runs). Page *residency* is global — one query's
/// fetch warms the next query's access — while hit/miss **attribution**
/// stays with each caller: [`Io::touch`] reports the outcome per access,
/// and the executor tallies its own query's hits and misses locally. The
/// pool's own counters remain the pool-wide totals.
#[derive(Clone, Debug)]
pub struct SharedBufferPool(Arc<Mutex<BufferPool>>);

impl SharedBufferPool {
    /// A shared pool holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        SharedBufferPool(Arc::new(Mutex::new(BufferPool::new(capacity))))
    }

    /// Records an access; `true` on a hit. See [`BufferPool::access`].
    pub fn access(&self, page: PageId) -> bool {
        self.0.lock().unwrap().access(page)
    }

    /// Pool-wide (hits, misses) across every sharing execution.
    pub fn stats(&self) -> (u64, u64) {
        self.0.lock().unwrap().stats()
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.0.lock().unwrap().resident_pages()
    }

    /// Drops all cached pages and statistics.
    pub fn reset(&self) {
        self.0.lock().unwrap().reset();
    }
}

/// The page cache an [`Io`] stack charges accesses through: either a
/// private pool (the historical per-executor model, which keeps every
/// simulation deterministic) or a [`SharedBufferPool`].
#[derive(Clone, Debug)]
enum PoolRef {
    Local(BufferPool),
    Shared(SharedBufferPool),
}

/// The I/O facade the executor charges all page access through:
/// buffer-pool check first, disk on miss. [`Io::touch`] and
/// [`Io::touch_elevator`] report per-access hit/miss outcomes so callers
/// can attribute I/O to the execution that performed it even when the
/// underlying pool is shared.
#[derive(Clone, Debug)]
pub struct Io {
    pool: PoolRef,
    /// The simulated device.
    pub disk: Disk,
    /// Optional fault injector consulted before every page access (see
    /// [`Io::try_touch`]). `None` keeps the read path infallible.
    injector: Option<FaultInjector>,
}

impl Io {
    /// Creates an I/O stack with the given pool capacity and disk timing.
    pub fn new(pool_pages: usize, params: DiskParams) -> Self {
        Io {
            pool: PoolRef::Local(BufferPool::new(pool_pages)),
            disk: Disk::new(params),
            injector: None,
        }
    }

    /// The paper's evaluation machine: 32 MB buffer, default disk.
    pub fn decstation() -> Self {
        let params = DiskParams::default();
        Io {
            pool: PoolRef::Local(BufferPool::decstation(params.page_bytes)),
            disk: Disk::new(params),
            injector: None,
        }
    }

    /// An I/O stack charging through a shared pool. The disk (and its
    /// timing) stays private to this stack, so simulated I/O seconds are
    /// attributed to the execution that missed.
    pub fn with_shared_pool(pool: SharedBufferPool, params: DiskParams) -> Self {
        Io {
            pool: PoolRef::Shared(pool),
            disk: Disk::new(params),
            injector: None,
        }
    }

    fn access(&mut self, page: PageId) -> bool {
        match &mut self.pool {
            PoolRef::Local(p) => p.access(page),
            PoolRef::Shared(p) => p.access(page),
        }
    }

    /// Touches one page (sequential/random classification by the disk).
    /// Returns `true` on a buffer hit.
    pub fn touch(&mut self, page: PageId) -> bool {
        let hit = self.access(page);
        if !hit {
            self.disk.read(page);
        }
        hit
    }

    /// Touches a batch of pages in elevator order; only misses reach disk.
    /// Returns `(hits, misses)` for the batch.
    pub fn touch_elevator(&mut self, pages: &[PageId]) -> (u64, u64) {
        let mut missed: Vec<PageId> = pages.iter().copied().filter(|&p| !self.access(p)).collect();
        let misses = missed.len() as u64;
        if !missed.is_empty() {
            self.disk.read_elevator(&mut missed);
        }
        (pages.len() as u64 - misses, misses)
    }

    /// Routes subsequent page access through a fault injector (or removes
    /// it with `None`). The executor installs the store's injector here.
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.injector = injector;
    }

    /// Fallible [`Io::touch`]: consults the fault injector (if any) before
    /// the buffer pool. A faulted read charges nothing — the page is
    /// neither cached nor billed to the disk — so a retry repeats the
    /// access from scratch.
    pub fn try_touch(&mut self, page: PageId) -> Result<bool, Fault> {
        if let Some(inj) = &self.injector {
            inj.check_read(page)?;
        }
        Ok(self.touch(page))
    }

    /// Fallible [`Io::touch_elevator`]: checks every page of the batch
    /// against the injector first, then performs the whole sweep. A fault
    /// aborts before any page of the batch is charged.
    pub fn try_touch_elevator(&mut self, pages: &[PageId]) -> Result<(u64, u64), Fault> {
        if let Some(inj) = &self.injector {
            for &p in pages {
                inj.check_read(p)?;
            }
        }
        Ok(self.touch_elevator(pages))
    }

    /// (hits, misses) of the underlying pool. For a shared pool these are
    /// the **pool-wide** totals, not this execution's share — per-execution
    /// attribution comes from the [`Io::touch`] return values.
    pub fn pool_stats(&self) -> (u64, u64) {
        match &self.pool {
            PoolRef::Local(p) => p.stats(),
            PoolRef::Shared(p) => p.stats(),
        }
    }

    /// Number of pages resident in the underlying pool.
    pub fn resident_pages(&self) -> usize {
        match &self.pool {
            PoolRef::Local(p) => p.resident_pages(),
            PoolRef::Shared(p) => p.resident_pages(),
        }
    }

    /// Simulated elapsed I/O time in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.disk.stats().total_s
    }

    /// Disk statistics.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// Clears both the pool and the disk counters.
    pub fn reset(&mut self) {
        match &mut self.pool {
            PoolRef::Local(p) => p.reset(),
            PoolRef::Shared(p) => p.reset(),
        }
        self.disk.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut b = BufferPool::new(4);
        assert!(!b.access(1));
        assert!(b.access(1));
        assert_eq!(b.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut b = BufferPool::new(2);
        b.access(1);
        b.access(2);
        b.access(1); // 1 now more recent than 2
        b.access(3); // evicts 2
        assert!(b.access(1), "1 still resident");
        assert!(!b.access(2), "2 was evicted");
    }

    #[test]
    fn io_charges_only_misses() {
        let mut io = Io::new(8, DiskParams::default());
        io.touch(10);
        io.touch(10);
        io.touch(10);
        assert_eq!(io.disk_stats().pages(), 1);
        let (hits, misses) = io.pool_stats();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn elevator_batch_skips_resident_pages() {
        let mut io = Io::new(8, DiskParams::default());
        io.touch(5);
        let (hits, misses) = io.touch_elevator(&[5, 6, 7]);
        // Page 5 was resident; only 6 and 7 hit the disk.
        assert_eq!((hits, misses), (1, 2));
        assert_eq!(io.disk_stats().pages(), 3); // 1 initial + 2 batch
    }

    #[test]
    fn touch_reports_per_access_outcome() {
        let mut io = Io::new(8, DiskParams::default());
        assert!(!io.touch(9), "first access misses");
        assert!(io.touch(9), "second access hits");
    }

    #[test]
    fn shared_pool_keeps_residency_across_stacks() {
        let shared = SharedBufferPool::new(16);
        let mut a = Io::with_shared_pool(shared.clone(), DiskParams::default());
        let mut b = Io::with_shared_pool(shared.clone(), DiskParams::default());
        assert!(!a.touch(1), "cold in stack a");
        assert!(b.touch(1), "warm in stack b via the shared pool");
        // Pool-wide counters aggregate both stacks; each stack's disk only
        // charged its own misses.
        assert_eq!(shared.stats(), (1, 1));
        assert_eq!(a.disk_stats().pages(), 1);
        assert_eq!(b.disk_stats().pages(), 0);
    }

    #[test]
    fn pool_never_exceeds_capacity() {
        let mut b = BufferPool::new(3);
        for p in 0..100 {
            b.access(p);
        }
        assert!(b.resident_pages() <= 3);
    }
}
