//! Simulated disk with seek accounting.
//!
//! The paper's cost model "charges less for sequential than for random I/O",
//! and assembly's I/O cost "captures the fact that seek distances are
//! minimized" by its elevator pattern. This module is the runtime mirror of
//! those cost-model assumptions: every page read is classified as
//! sequential (next page after the previous read), random, or part of an
//! elevator-ordered batch, and simulated wall-clock time is accumulated per
//! class.

/// A physical page number. Page numbers are global across the database;
/// seek distance is proportional to page-number distance.
pub type PageId = u64;

/// Device timing parameters (DECstation-era defaults).
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Transfer time for a sequentially-next page, in seconds.
    pub seq_s: f64,
    /// Seek + rotation + transfer for a random page, in seconds.
    pub rand_s: f64,
    /// Fraction of `rand_s` charged per page of an elevator-ordered batch —
    /// the discount a large assembly window earns by sweeping the arm in
    /// one direction.
    pub elevator_factor: f64,
    /// Page size in bytes (used by layout computations elsewhere).
    pub page_bytes: u32,
}

impl Default for DiskParams {
    /// Era-appropriate constants: 4 KB pages, 2 ms sequential transfer,
    /// 20 ms random access, elevator sweeps at 55% of random cost.
    fn default() -> Self {
        DiskParams {
            seq_s: 0.002,
            rand_s: 0.020,
            elevator_factor: 0.55,
            page_bytes: 4096,
        }
    }
}

/// Cumulative I/O statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiskStats {
    /// Pages read sequentially.
    pub seq_reads: u64,
    /// Pages read at random-access cost.
    pub rand_reads: u64,
    /// Pages read inside elevator-ordered batches.
    pub elevator_reads: u64,
    /// Pages written to spill partitions (hash-join overflow), charged
    /// at the sequential rate.
    pub spill_writes: u64,
    /// Pages read back from spill partitions, charged at the sequential
    /// rate. Over any completed run this equals [`DiskStats::spill_writes`].
    pub spill_reads: u64,
    /// Total simulated time in seconds.
    pub total_s: f64,
}

impl DiskStats {
    /// Total pages read from base data (spill traffic excluded — see
    /// [`DiskStats::spill_pages`]).
    pub fn pages(&self) -> u64 {
        self.seq_reads + self.rand_reads + self.elevator_reads
    }

    /// Total spill pages moved (writes + re-reads).
    pub fn spill_pages(&self) -> u64 {
        self.spill_writes + self.spill_reads
    }

    /// Counters accumulated since `base` was captured (for per-run
    /// attribution on a reused disk/executor).
    pub fn delta(&self, base: &DiskStats) -> DiskStats {
        DiskStats {
            seq_reads: self.seq_reads - base.seq_reads,
            rand_reads: self.rand_reads - base.rand_reads,
            elevator_reads: self.elevator_reads - base.elevator_reads,
            spill_writes: self.spill_writes - base.spill_writes,
            spill_reads: self.spill_reads - base.spill_reads,
            total_s: self.total_s - base.total_s,
        }
    }
}

/// The simulated disk.
#[derive(Clone, Debug)]
pub struct Disk {
    params: DiskParams,
    head: Option<PageId>,
    stats: DiskStats,
}

impl Disk {
    /// Creates a disk with the given parameters.
    pub fn new(params: DiskParams) -> Self {
        Disk {
            params,
            head: None,
            stats: DiskStats::default(),
        }
    }

    /// The device parameters.
    pub fn params(&self) -> DiskParams {
        self.params
    }

    /// Statistics so far.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Clears statistics and head position.
    pub fn reset(&mut self) {
        self.head = None;
        self.stats = DiskStats::default();
    }

    /// Reads one page. Sequential if it directly follows the previous read;
    /// random otherwise.
    pub fn read(&mut self, page: PageId) {
        let sequential = matches!(self.head, Some(h) if page == h + 1);
        if sequential {
            self.stats.seq_reads += 1;
            self.stats.total_s += self.params.seq_s;
        } else {
            self.stats.rand_reads += 1;
            self.stats.total_s += self.params.rand_s;
        }
        self.head = Some(page);
    }

    /// Reads a batch of pages in elevator order: the pages are sorted so the
    /// arm sweeps once across the region. Adjacent pages within the sweep
    /// cost a sequential transfer; gaps cost the discounted elevator rate.
    ///
    /// This is what a large assembly window buys; with a window of one the
    /// assembly operator degenerates to [`Disk::read`] per reference, "the
    /// lookup component of an unclustered index scan".
    pub fn read_elevator(&mut self, pages: &mut Vec<PageId>) {
        pages.sort_unstable();
        pages.dedup();
        let mut prev: Option<PageId> = None;
        for &p in pages.iter() {
            match prev {
                Some(q) if p == q + 1 => {
                    self.stats.seq_reads += 1;
                    self.stats.total_s += self.params.seq_s;
                }
                _ => {
                    self.stats.elevator_reads += 1;
                    self.stats.total_s += self.params.rand_s * self.params.elevator_factor;
                }
            }
            prev = Some(p);
        }
        if let Some(last) = prev {
            self.head = Some(last);
        }
    }

    /// Charges `pages` of spill-partition writes at the sequential rate
    /// (spill files are laid out contiguously) and moves the arm off the
    /// base data, matching the cost model's `2 · frac · pages · seq_s`
    /// write-then-reread formula for an overflowing hash join.
    pub fn spill_write(&mut self, pages: u64) {
        self.stats.spill_writes += pages;
        self.stats.total_s += pages as f64 * self.params.seq_s;
        self.head = None;
    }

    /// Charges `pages` of spill-partition re-reads at the sequential
    /// rate; the arm ends off the base data.
    pub fn spill_read(&mut self, pages: u64) {
        self.stats.spill_reads += pages;
        self.stats.total_s += pages as f64 * self.params.seq_s;
        self.head = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(DiskParams::default())
    }

    #[test]
    fn sequential_run_charged_cheaply() {
        let mut d = disk();
        for p in 100..200 {
            d.read(p);
        }
        let s = d.stats();
        // First read is random (no head position), rest sequential.
        assert_eq!(s.rand_reads, 1);
        assert_eq!(s.seq_reads, 99);
        let expected = 0.020 + 99.0 * 0.002;
        assert!((s.total_s - expected).abs() < 1e-9);
    }

    #[test]
    fn random_scatter_charged_fully() {
        let mut d = disk();
        for p in [5u64, 105, 3, 999, 42] {
            d.read(p);
        }
        assert_eq!(d.stats().rand_reads, 5);
        assert_eq!(d.stats().seq_reads, 0);
    }

    #[test]
    fn elevator_batch_is_cheaper_than_random() {
        let scattered: Vec<PageId> = (0..100).map(|i| i * 37 + 5).collect();

        let mut d1 = disk();
        for &p in &scattered {
            d1.read(p);
        }
        let mut d2 = disk();
        d2.read_elevator(&mut scattered.clone());

        assert!(d2.stats().total_s < d1.stats().total_s);
        // With the default 0.55 factor the batch costs exactly 55%.
        assert!((d2.stats().total_s / d1.stats().total_s - 0.55).abs() < 1e-9);
    }

    #[test]
    fn elevator_dedups_and_merges_adjacent() {
        let mut d = disk();
        d.read_elevator(&mut vec![10, 11, 11, 12, 50]);
        let s = d.stats();
        assert_eq!(s.pages(), 4, "duplicate page read once");
        assert_eq!(s.seq_reads, 2, "pages 11 and 12 follow 10");
        assert_eq!(s.elevator_reads, 2, "pages 10 and 50 start sweeps");
    }

    #[test]
    fn head_position_carries_across_calls() {
        let mut d = disk();
        d.read(7);
        d.read(8); // sequential
        d.read_elevator(&mut vec![9]); // elevator entry even though adjacent? no: gap rule
        let s = d.stats();
        assert_eq!(s.seq_reads, 1);
        // The batch's first page always pays the elevator rate (we don't
        // model cross-call adjacency).
        assert_eq!(s.elevator_reads, 1);
    }

    #[test]
    fn spill_traffic_is_sequential_and_moves_the_arm() {
        let mut d = disk();
        d.read(7);
        d.spill_write(10);
        d.spill_read(10);
        let s = d.stats();
        assert_eq!(s.spill_pages(), 20);
        assert_eq!(s.pages(), 1, "spill pages are not base-data reads");
        assert!((s.total_s - (0.020 + 20.0 * 0.002)).abs() < 1e-9);
        d.read(8);
        assert_eq!(
            d.stats().rand_reads,
            2,
            "spilling moved the arm; page 8 is no longer sequential"
        );
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = disk();
        d.read(1);
        d.reset();
        assert_eq!(d.stats(), DiskStats::default());
        d.read(2);
        assert_eq!(d.stats().rand_reads, 1, "head forgotten after reset");
    }
}
