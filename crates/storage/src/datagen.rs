//! Synthetic database generator reproducing the paper's Table 1 population.
//!
//! The authors evaluated against catalog *statistics* only (the executor was
//! not operational); we additionally generate real objects so plans can be
//! run. Value distributions are chosen to make the optimizer's estimates
//! honest at full scale:
//!
//! * person names drawn uniformly from a 5,000-name pool containing
//!   `"Joe"` → ≈2 of the 10,000 cities have a mayor named Joe;
//! * `Employees`-set names drawn from a 100-name pool containing `"Fred"`
//!   → ≈500 Freds among 50,000 employees;
//! * plant locations from 10 values containing `"Dallas"` → ≈10% of
//!   departments are in Dallas (matching the naive 10% default);
//! * department floors 1–10 → ≈10% on the third floor;
//! * task completion times from 50 values containing `100`.
//!
//! Pass a [`GenConfig`] with `scale_div > 1` to generate a proportionally
//! shrunken database for fast tests.

use crate::store::Store;
use oodb_object::paper::{paper_model_scaled, PaperModel, AVG_TEAM_MEMBERS};
use oodb_object::{Date, Object, Oid, TypeId, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Divide every Table 1 cardinality by this factor (1 = paper scale).
    pub scale_div: u64,
    /// RNG seed; generation is fully deterministic per seed.
    pub seed: u64,
    /// Fraction of `Employees`-set members whose name is forced to the
    /// hot key `"Fred"` (0.0 = off, the honest default). The catalog's
    /// per-index distinct-key statistics are *not* adjusted, so any
    /// positive fraction beyond ≈1% makes the optimizer's uniformity
    /// assumption deliberately wrong — the lever behind the
    /// estimate-drift / re-optimization experiments.
    pub hot_employee_name_fraction: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            scale_div: 1,
            seed: 0x00DB_1993,
            hot_employee_name_fraction: 0.0,
        }
    }
}

impl GenConfig {
    /// A small database (1/100 scale) for unit tests.
    pub fn small() -> Self {
        GenConfig {
            scale_div: 100,
            ..Default::default()
        }
    }
}

fn name_pool(prefix: &str, n: u64, special: &str) -> Vec<Arc<str>> {
    let mut pool: Vec<Arc<str>> = (0..n.max(1))
        .map(|i| Arc::from(format!("{prefix}{i:05}").as_str()))
        .collect();
    pool[0] = Arc::from(special);
    pool
}

fn pick<R: Rng>(rng: &mut R, pool: &[Arc<str>]) -> Value {
    Value::Str(pool[rng.gen_range(0..pool.len())].clone())
}

/// Number of `Plant` objects generated (hidden from the catalog: `Plant`
/// has no extent, so the optimizer cannot see this number — the point of
/// the paper's 50,000-fault anecdote).
pub const PLANT_POPULATION: u64 = 200;
/// Distinct plant locations (contains `"Dallas"`).
pub const DISTINCT_PLANT_LOCATIONS: u64 = 10;

/// Generates the paper database at the requested scale. Returns the
/// populated store (indexes built) and the matching scaled model.
pub fn generate_paper_db(cfg: GenConfig) -> (Store, PaperModel) {
    let model = paper_model_scaled(cfg.scale_div);
    let m = &model;
    let ids = &m.ids;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let card = |c| m.catalog.collection(c).cardinality;

    let person_names = name_pool("p", 5_000 / cfg.scale_div.max(1), "Joe");
    let employee_names = name_pool("e", 100, "Fred");
    let locations = name_pool("loc", DISTINCT_PLANT_LOCATIONS, "Dallas");
    let times: Vec<i64> = (1..=50).map(|i| i * 10).collect(); // contains 100

    let mut store = Store::new(m.schema.clone(), m.catalog.clone());

    // --- Persons -----------------------------------------------------
    let n_person = card(ids.person_extent);
    let persons: Vec<Object> = (0..n_person)
        .map(|i| {
            Object::new(
                Oid::new(ids.person, i as u32),
                vec![
                    pick(&mut rng, &person_names),
                    Value::Int(rng.gen_range(18..90)),
                ],
            )
        })
        .collect();
    store.insert_objects(ids.person, persons, 100);

    // --- Information --------------------------------------------------
    let n_info = card(ids.information_extent);
    let infos: Vec<Object> = (0..n_info)
        .map(|i| {
            Object::new(
                Oid::new(ids.information, i as u32),
                vec![Value::str(&format!("subject-{i}"))],
            )
        })
        .collect();
    store.insert_objects(ids.information, infos, 400);

    // --- Countries -----------------------------------------------------
    let n_country = card(ids.country_extent);
    let countries: Vec<Object> = (0..n_country)
        .map(|i| {
            Object::new(
                Oid::new(ids.country, i as u32),
                vec![
                    Value::str(&format!("country-{i}")),
                    Value::Ref(Oid::new(ids.person, rng.gen_range(0..n_person) as u32)),
                    Value::Ref(Oid::new(ids.information, rng.gen_range(0..n_info) as u32)),
                ],
            )
        })
        .collect();
    store.insert_objects(ids.country, countries, 300);

    // --- Plants (population invisible to the catalog) -------------------
    let n_plant = (PLANT_POPULATION / cfg.scale_div.max(1)).max(20.min(PLANT_POPULATION));
    let plants: Vec<Object> = (0..n_plant)
        .map(|i| {
            Object::new(
                Oid::new(ids.plant, i as u32),
                // Locations round-robin over the pool: exactly 1-in-10
                // plants are in Dallas, matching the optimizer's 10%
                // default selectivity for unindexed predicates.
                vec![
                    Value::str(&format!("plant-{i}")),
                    Value::Str(locations[(i % DISTINCT_PLANT_LOCATIONS) as usize].clone()),
                ],
            )
        })
        .collect();
    store.insert_objects(ids.plant, plants, 1000);

    // --- Cities ----------------------------------------------------------
    let n_city = card(ids.cities);
    let cities: Vec<Object> = (0..n_city)
        .map(|i| {
            Object::new(
                Oid::new(ids.city, i as u32),
                vec![
                    Value::str(&format!("city-{i}")),
                    Value::Int(rng.gen_range(1_000..5_000_000)),
                    Value::Ref(Oid::new(ids.person, rng.gen_range(0..n_person) as u32)),
                    Value::Ref(Oid::new(ids.country, rng.gen_range(0..n_country) as u32)),
                ],
            )
        })
        .collect();
    store.insert_objects(ids.city, cities, 200);

    // --- Capitals (own type; City layout + `since`) ----------------------
    let n_capital = card(ids.capitals);
    let capitals: Vec<Object> = (0..n_capital)
        .map(|i| {
            Object::new(
                Oid::new(ids.capital, i as u32),
                vec![
                    Value::str(&format!("capital-{i}")),
                    Value::Int(rng.gen_range(1_000..5_000_000)),
                    Value::Ref(Oid::new(ids.person, rng.gen_range(0..n_person) as u32)),
                    Value::Ref(Oid::new(ids.country, (i % n_country) as u32)),
                    Value::Date(Date::from_ymd(rng.gen_range(1800..1993), 1, 1)),
                ],
            )
        })
        .collect();
    store.insert_objects(ids.capital, capitals, 400);

    // --- Jobs -------------------------------------------------------------
    let n_job = card(ids.job_extent);
    let jobs: Vec<Object> = (0..n_job)
        .map(|i| {
            Object::new(
                Oid::new(ids.job, i as u32),
                vec![
                    Value::str(&format!("job-{i}")),
                    Value::Int(rng.gen_range(1..16)),
                ],
            )
        })
        .collect();
    store.insert_objects(ids.job, jobs, 250);

    // --- Departments -------------------------------------------------------
    let n_dept = card(ids.department_extent);
    let depts: Vec<Object> = (0..n_dept)
        .map(|i| {
            Object::new(
                Oid::new(ids.department, i as u32),
                vec![
                    Value::str(&format!("dept-{i}")),
                    Value::Int(rng.gen_range(1..=10)),
                    Value::Ref(Oid::new(ids.plant, rng.gen_range(0..n_plant) as u32)),
                ],
            )
        })
        .collect();
    store.insert_objects(ids.department, depts, 400);

    // --- Employees ----------------------------------------------------------
    // Layout (Person fields first): name, age, salary, last_raise, dept, job.
    let n_emp_extent = card(ids.employee_extent);
    let n_emp_set = card(ids.employees);
    let emps: Vec<Object> = (0..n_emp_extent)
        .map(|i| {
            // The hot-key draw only happens when the knob is on, so the
            // default configuration's RNG stream (and thus every
            // deterministic fixture built on it) is bit-identical to
            // before the knob existed.
            let name = if i < n_emp_set {
                if cfg.hot_employee_name_fraction > 0.0
                    && rng.gen_bool(cfg.hot_employee_name_fraction.clamp(0.0, 1.0))
                {
                    Value::Str(employee_names[0].clone())
                } else {
                    pick(&mut rng, &employee_names)
                }
            } else {
                pick(&mut rng, &person_names)
            };
            Object::new(
                Oid::new(ids.employee, i as u32),
                vec![
                    name,
                    Value::Int(rng.gen_range(18..70)),
                    Value::Int(rng.gen_range(20_000..150_000)),
                    Value::Date(Date::from_ymd(
                        rng.gen_range(1988..1994),
                        rng.gen_range(1..=12),
                        1,
                    )),
                    Value::Ref(Oid::new(ids.department, rng.gen_range(0..n_dept) as u32)),
                    Value::Ref(Oid::new(ids.job, rng.gen_range(0..n_job) as u32)),
                ],
            )
        })
        .collect();
    store.insert_objects(ids.employee, emps, 250);

    // --- Tasks -----------------------------------------------------------------
    let n_task_extent = card(ids.task_extent);
    let avg_team = AVG_TEAM_MEMBERS as usize;
    let tasks: Vec<Object> = (0..n_task_extent)
        .map(|i| {
            let k = rng.gen_range(1..=2 * avg_team); // mean = avg_team + 0.5
            let mut team: Vec<Oid> = (0..k)
                .map(|_| Oid::new(ids.employee, rng.gen_range(0..n_emp_set) as u32))
                .collect();
            team.sort_unstable();
            team.dedup();
            Object::new(
                Oid::new(ids.task, i as u32),
                vec![
                    Value::str(&format!("task-{i}")),
                    Value::Int(times[rng.gen_range(0..times.len())]),
                    Value::RefSet(team.into()),
                ],
            )
        })
        .collect();
    store.insert_objects(ids.task, tasks, 120);

    // --- Collection membership (dense prefixes) ----------------------------------
    let dense =
        |ty: TypeId, n: u64| -> Vec<Oid> { (0..n).map(|i| Oid::new(ty, i as u32)).collect() };
    store.set_members(ids.capitals, dense(ids.capital, n_capital));
    store.set_members(ids.cities, dense(ids.city, n_city));
    store.set_members(ids.employees, dense(ids.employee, n_emp_set));
    store.set_members(ids.tasks, dense(ids.task, card(ids.tasks)));
    store.set_members(ids.country_extent, dense(ids.country, n_country));
    store.set_members(ids.department_extent, dense(ids.department, n_dept));
    store.set_members(ids.employee_extent, dense(ids.employee, n_emp_extent));
    store.set_members(ids.information_extent, dense(ids.information, n_info));
    store.set_members(ids.job_extent, dense(ids.job, n_job));
    store.set_members(ids.person_extent, dense(ids.person, n_person));
    store.set_members(ids.task_extent, dense(ids.task, n_task_extent));

    store.build_indexes();
    (store, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_db_matches_scaled_catalog() {
        let (store, model) = generate_paper_db(GenConfig::small());
        for (id, def) in model.catalog.collections() {
            assert_eq!(
                store.members(id).len() as u64,
                def.cardinality,
                "collection {} population mismatch",
                def.name
            );
        }
    }

    #[test]
    fn references_resolve() {
        let (store, model) = generate_paper_db(GenConfig::small());
        let ids = &model.ids;
        for &oid in store.members(ids.employees) {
            let dept = store.read_field(oid, ids.emp_dept).as_ref_oid().unwrap();
            assert_eq!(dept.type_id(), ids.department);
            // Dereference must not panic and must land on a real object.
            let floor = store.read_field(dept, ids.dept_floor);
            assert!(matches!(floor, Value::Int(1..=10)));
        }
    }

    #[test]
    fn path_index_agrees_with_traversal() {
        let (store, model) = generate_paper_db(GenConfig::small());
        let ids = &model.ids;
        let idx = store.index(ids.idx_cities_mayor_name);
        // Every indexed hit must satisfy the path predicate...
        for &oid in store.members(ids.cities) {
            let name = store.eval_path(oid, &[ids.city_mayor], ids.person_name);
            let hits = idx.lookup_eq(&name);
            assert!(hits.contains(&oid));
        }
        // ...and total entries equal the set cardinality.
        assert_eq!(idx.entries(), store.members(ids.cities).len() as u64);
    }

    #[test]
    fn fred_selectivity_is_plausible() {
        let (store, model) = generate_paper_db(GenConfig::small());
        let ids = &model.ids;
        let freds = store
            .index(ids.idx_employees_name)
            .lookup_eq(&Value::str("Fred"))
            .len() as f64;
        let total = store.members(ids.employees).len() as f64;
        // 100 distinct names → ≈1% Freds; allow generous statistical slack.
        assert!(
            freds / total > 0.002 && freds / total < 0.05,
            "{freds}/{total}"
        );
    }

    #[test]
    fn hot_name_knob_skews_the_employee_set() {
        let (store, model) = generate_paper_db(GenConfig {
            scale_div: 100,
            hot_employee_name_fraction: 0.5,
            ..Default::default()
        });
        let ids = &model.ids;
        let freds = store
            .index(ids.idx_employees_name)
            .lookup_eq(&Value::str("Fred"))
            .len() as f64;
        let total = store.members(ids.employees).len() as f64;
        // ≈50% forced + ≈1% from the uniform pool; the catalog's
        // distinct-keys statistic still claims ≈1%, which is the point.
        assert!(freds / total > 0.4, "{freds}/{total}");
        assert!(freds / total < 0.65, "{freds}/{total}");
    }

    #[test]
    fn dallas_department_fraction_near_ten_percent() {
        // 1/10 scale: 100 departments over 20 plants — enough mass for the
        // 10%-of-locations expectation to show through.
        let (store, model) = generate_paper_db(GenConfig {
            scale_div: 10,
            ..Default::default()
        });
        let ids = &model.ids;
        let n = store
            .members(ids.department_extent)
            .iter()
            .filter(|&&d| {
                store.eval_path(d, &[ids.dept_plant], ids.plant_location) == Value::str("Dallas")
            })
            .count() as f64;
        let total = store.members(ids.department_extent).len() as f64;
        assert!(n / total > 0.01 && n / total < 0.4, "{n}/{total}");
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = generate_paper_db(GenConfig::small());
        let (b, _) = generate_paper_db(GenConfig::small());
        let ids = paper_model_scaled(100).ids;
        let oid = Oid::new(ids.city, 3);
        assert_eq!(a.object(oid), b.object(oid));
    }

    #[test]
    fn task_teams_reference_set_members() {
        let (store, model) = generate_paper_db(GenConfig::small());
        let ids = &model.ids;
        let set_size = store.members(ids.employees).len() as u32;
        for &t in store.members(ids.tasks) {
            let team = store.read_field(t, ids.task_team_members);
            let team = team.as_ref_set().unwrap();
            assert!(!team.is_empty());
            for m in team {
                assert!(m.seq() < set_size, "team member outside Employees set");
            }
        }
    }
}
