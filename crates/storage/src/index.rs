//! Ordered indexes (attribute and path).
//!
//! A [`BuiltIndex`] is the runtime realisation of a catalog
//! [`oodb_object::IndexDef`]: an ordered map from key value to the OIDs of
//! matching collection members. Path indexes are precomputed over the whole
//! reference path, which is exactly what lets the paper's
//! collapse-to-index-scan rule answer `c.mayor.name == "Joe"` *without
//! materializing any mayor objects*.

use crate::disk::PageId;
use oodb_object::{Oid, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Total-ordering wrapper over [`Value`] so values can key a `BTreeMap`.
/// Values of different variants order by variant tag; floats use
/// `total_cmp`. `Null` sorts first; `RefSet` cannot be a key and panics.
#[derive(Clone, Debug, PartialEq)]
pub struct OrdValue(pub Value);

impl Eq for OrdValue {}

fn tag(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Date(_) => 4,
        Value::Str(_) => 5,
        Value::Ref(_) => 6,
        Value::RefSet(_) => panic!("RefSet cannot be an index key"),
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (&self.0, &other.0) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Ref(a), Ref(b)) => a.cmp(b),
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }
}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Fan-out assumed when estimating B-tree height and leaf page counts.
pub const INDEX_FANOUT: u64 = 256;

/// A materialised ordered index.
#[derive(Clone, Debug)]
pub struct BuiltIndex {
    map: BTreeMap<OrdValue, Vec<Oid>>,
    entries: u64,
    /// First page of the simulated leaf region (for I/O charging).
    pub first_leaf_page: PageId,
}

impl BuiltIndex {
    /// Builds an index from `(key, oid)` pairs; `first_leaf_page` anchors
    /// its simulated on-disk leaf region.
    pub fn build(pairs: impl IntoIterator<Item = (Value, Oid)>, first_leaf_page: PageId) -> Self {
        let mut map: BTreeMap<OrdValue, Vec<Oid>> = BTreeMap::new();
        let mut entries = 0u64;
        for (k, oid) in pairs {
            map.entry(OrdValue(k)).or_default().push(oid);
            entries += 1;
        }
        BuiltIndex {
            map,
            entries,
            first_leaf_page,
        }
    }

    /// OIDs whose key equals `v` (empty if none).
    pub fn lookup_eq(&self, v: &Value) -> &[Oid] {
        self.map
            .get(&OrdValue(v.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// OIDs whose key lies in `[lo, hi]` (inclusive), in key order.
    pub fn lookup_range(&self, lo: &Value, hi: &Value) -> Vec<Oid> {
        self.map
            .range(OrdValue(lo.clone())..=OrdValue(hi.clone()))
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }

    /// All entries in key order — the full ordered scan behind the
    /// "interesting order" index alternative.
    pub fn all_ordered(&self) -> Vec<Oid> {
        self.map.values().flat_map(|v| v.iter().copied()).collect()
    }

    /// OIDs satisfying `key <op> v`, for any comparison operator — the
    /// B-tree range scan behind range-predicate index plans. Results are
    /// in key order.
    pub fn lookup_cmp(&self, op: oodb_object::value::CmpLike, v: &Value) -> Vec<Oid> {
        use oodb_object::value::CmpLike::*;
        use std::ops::Bound;
        let key = OrdValue(v.clone());
        let range: (Bound<&OrdValue>, Bound<&OrdValue>) = match op {
            Eq => (Bound::Included(&key), Bound::Included(&key)),
            Lt => (Bound::Unbounded, Bound::Excluded(&key)),
            Le => (Bound::Unbounded, Bound::Included(&key)),
            Gt => (Bound::Excluded(&key), Bound::Unbounded),
            Ge => (Bound::Included(&key), Bound::Unbounded),
            Ne => {
                // Two sweeps around the excluded key.
                let mut out: Vec<Oid> = self
                    .map
                    .range((Bound::Unbounded, Bound::Excluded(key.clone())))
                    .flat_map(|(_, v)| v.iter().copied())
                    .collect();
                out.extend(
                    self.map
                        .range((Bound::Excluded(key), Bound::<OrdValue>::Unbounded))
                        .flat_map(|(_, v)| v.iter().copied()),
                );
                return out;
            }
        };
        self.map
            .range(range)
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }

    /// Total number of entries.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Number of distinct keys actually present.
    pub fn distinct_keys(&self) -> u64 {
        self.map.len() as u64
    }

    /// Estimated B-tree height (non-leaf levels touched per lookup).
    pub fn height(&self) -> u32 {
        let mut h = 1;
        let mut span = INDEX_FANOUT;
        while span < self.entries.max(1) {
            span = span.saturating_mul(INDEX_FANOUT);
            h += 1;
        }
        h
    }

    /// Leaf pages an equality lookup matching `n` entries touches.
    pub fn leaf_pages_for(&self, n: u64) -> u64 {
        n.div_ceil(INDEX_FANOUT).max(1)
    }

    /// Simulated pages for a lookup: root-to-leaf walk plus leaf pages,
    /// spread across the leaf region.
    pub fn lookup_pages(&self, n_matches: u64) -> Vec<PageId> {
        let mut pages = Vec::new();
        // Internal levels: one page each, placed before the leaf region.
        for lvl in 0..self.height() as u64 {
            pages.push(self.first_leaf_page.saturating_sub(lvl + 1));
        }
        for l in 0..self.leaf_pages_for(n_matches) {
            pages.push(self.first_leaf_page + l);
        }
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_object::{Date, TypeId};

    fn oid(i: u32) -> Oid {
        Oid::new(TypeId::from_index(0), i)
    }

    #[test]
    fn eq_lookup_finds_all_matches() {
        let idx = BuiltIndex::build(
            vec![
                (Value::str("Joe"), oid(1)),
                (Value::str("Ann"), oid(2)),
                (Value::str("Joe"), oid(3)),
            ],
            100,
        );
        let joes = idx.lookup_eq(&Value::str("Joe"));
        assert_eq!(joes.len(), 2);
        assert!(idx.lookup_eq(&Value::str("Zoe")).is_empty());
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.entries(), 3);
    }

    #[test]
    fn range_lookup_in_key_order() {
        let idx = BuiltIndex::build((0..10).map(|i| (Value::Int(i), oid(i as u32))), 0);
        let hits = idx.lookup_range(&Value::Int(3), &Value::Int(6));
        assert_eq!(hits.len(), 4);
        assert_eq!(hits[0], oid(3));
        assert_eq!(hits[3], oid(6));
    }

    #[test]
    fn date_keys_order_correctly() {
        let idx = BuiltIndex::build(
            vec![
                (Value::Date(Date::from_ymd(1991, 6, 1)), oid(1)),
                (Value::Date(Date::from_ymd(1992, 1, 1)), oid(2)),
                (Value::Date(Date::from_ymd(1993, 1, 1)), oid(3)),
            ],
            0,
        );
        let hits = idx.lookup_range(
            &Value::Date(Date::from_ymd(1992, 1, 1)),
            &Value::Date(Date::from_ymd(1999, 1, 1)),
        );
        assert_eq!(hits, vec![oid(2), oid(3)]);
    }

    #[test]
    fn height_grows_with_entries() {
        let small = BuiltIndex::build((0..10).map(|i| (Value::Int(i), oid(i as u32))), 0);
        assert_eq!(small.height(), 1);
        let big = BuiltIndex::build((0..70_000).map(|i| (Value::Int(i), oid(i as u32))), 0);
        assert_eq!(big.height(), 3);
    }

    #[test]
    fn lookup_pages_cover_internal_and_leaf() {
        let idx = BuiltIndex::build((0..1000).map(|i| (Value::Int(i % 7), oid(i as u32))), 500);
        let pages = idx.lookup_pages(300);
        // height 2 internal pages + ceil(300/256)=2 leaf pages.
        assert_eq!(pages.len(), idx.height() as usize + 2);
    }

    #[test]
    fn ordvalue_total_order_on_mixed_variants() {
        let mut keys = [
            OrdValue(Value::str("x")),
            OrdValue(Value::Int(1)),
            OrdValue(Value::Null),
            OrdValue(Value::Bool(true)),
        ];
        keys.sort();
        assert_eq!(keys[0], OrdValue(Value::Null));
        assert_eq!(keys[3], OrdValue(Value::str("x")));
    }
}
