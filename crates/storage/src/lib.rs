//! # `oodb-storage` — simulated storage manager for the Open OODB reproduction
//!
//! The SIGMOD '93 paper evaluated its optimizer with *estimated* costs on a
//! DECstation 5000/125; the execution engine was not yet operational. This
//! crate supplies the substrate the paper assumed: a page-based object store
//! with dense packing of sets and extents, a disk model that distinguishes
//! sequential, random, and elevator-ordered I/O (the heart of the assembly
//! operator's advantage), a buffer pool, and B-tree-style attribute and path
//! indexes.
//!
//! Components:
//!
//! * [`disk`] — [`disk::Disk`]: simulated disk with seek accounting.
//! * [`buffer`] — [`buffer::BufferPool`]: LRU page cache;
//!   [`buffer::Io`] bundles pool + disk into the single I/O facade the
//!   executor charges against.
//! * [`store`] — [`store::Store`]: objects laid out densely in per-type
//!   page regions; collections as member lists; O(1) OID dereference.
//! * [`index`] — [`index::BuiltIndex`]: ordered indexes (attribute and
//!   path) built from catalog [`oodb_object::IndexDef`]s.
//! * [`datagen`] — synthetic database generator reproducing the paper's
//!   Table 1 population (with a scale-down knob for fast tests).

#![forbid(unsafe_code)]

pub mod buffer;
pub mod codec;
pub mod datagen;
pub mod disk;
pub mod index;
pub mod store;

pub use buffer::{BufferPool, Io, SharedBufferPool};
pub use codec::{pack_collection, unpack_pages, CodecError, Page, PAGE_BYTES};
pub use datagen::{generate_paper_db, GenConfig};
pub use disk::{Disk, DiskParams, DiskStats, PageId};
pub use index::{BuiltIndex, OrdValue};
/// Fault-injection types, re-exported so storage users reach the injector
/// without a separate dependency.
pub use oodb_fault::{Fault, FaultClass, FaultConfig, FaultInjector, FaultStats};
pub use oodb_mem::{MemStats, MemoryGovernor, MemoryGrant, PressureLevel};
pub use store::{Store, StoreError};
