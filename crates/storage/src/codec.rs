//! On-disk page format: slotted 4 KB pages with a binary object codec.
//!
//! The simulator's cost accounting works on page *numbers*; this module
//! supplies the byte-level reality underneath — the format a persistent
//! Open OODB store would actually write. Objects serialize to a compact
//! tagged binary encoding and pack into slotted pages (slot directory at
//! the front, object bytes growing from the back), the classic layout.
//!
//! Used by the persistence round-trip tests and by
//! [`pack_collection`]/[`unpack_pages`] for anyone exporting a generated
//! database.

use oodb_object::{Date, Object, Oid, Value};
use std::sync::Arc;

/// Page size in bytes (matches the cost model's 4 KB).
pub const PAGE_BYTES: usize = 4096;

/// Codec errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended mid-value.
    UnexpectedEof,
    /// Unknown tag byte.
    BadTag(u8),
    /// String payload was not UTF-8.
    BadUtf8,
    /// An object larger than a page cannot be stored.
    ObjectTooLarge(usize),
    /// Page structure inconsistent (bad slot directory).
    CorruptPage,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadTag(t) => write!(f, "unknown value tag {t:#x}"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string payload"),
            CodecError::ObjectTooLarge(n) => {
                write!(f, "object of {n} bytes exceeds the {PAGE_BYTES}-byte page")
            }
            CodecError::CorruptPage => write!(f, "corrupt slot directory"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---- value encoding -------------------------------------------------------

const TAG_NULL: u8 = 0x00;
const TAG_INT: u8 = 0x01;
const TAG_FLOAT: u8 = 0x02;
const TAG_BOOL_FALSE: u8 = 0x03;
const TAG_BOOL_TRUE: u8 = 0x04;
const TAG_STR: u8 = 0x05;
const TAG_DATE: u8 = 0x06;
const TAG_REF: u8 = 0x07;
const TAG_REFSET: u8 = 0x08;

/// Appends the encoding of one value.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Bool(false) => out.push(TAG_BOOL_FALSE),
        Value::Bool(true) => out.push(TAG_BOOL_TRUE),
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.push(TAG_DATE);
            out.extend_from_slice(&d.0.to_le_bytes());
        }
        Value::Ref(o) => {
            out.push(TAG_REF);
            out.extend_from_slice(&o.as_u64().to_le_bytes());
        }
        Value::RefSet(set) => {
            out.push(TAG_REFSET);
            out.extend_from_slice(&(set.len() as u32).to_le_bytes());
            for o in set.iter() {
                out.extend_from_slice(&o.as_u64().to_le_bytes());
            }
        }
    }
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], CodecError> {
    let end = pos.checked_add(n).ok_or(CodecError::UnexpectedEof)?;
    if end > buf.len() {
        return Err(CodecError::UnexpectedEof);
    }
    let s = &buf[*pos..end];
    *pos = end;
    Ok(s)
}

/// Decodes one value at `pos`, advancing it.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value, CodecError> {
    let tag = take(buf, pos, 1)?[0];
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_INT => Value::Int(i64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap())),
        TAG_FLOAT => Value::Float(f64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap())),
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        TAG_STR => {
            let n = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
            let bytes = take(buf, pos, n)?;
            let s = std::str::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)?;
            Value::Str(Arc::from(s))
        }
        TAG_DATE => Value::Date(Date(i32::from_le_bytes(
            take(buf, pos, 4)?.try_into().unwrap(),
        ))),
        TAG_REF => Value::Ref(Oid::from_u64(u64::from_le_bytes(
            take(buf, pos, 8)?.try_into().unwrap(),
        ))),
        TAG_REFSET => {
            let n = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
            let mut set = Vec::with_capacity(n);
            for _ in 0..n {
                set.push(Oid::from_u64(u64::from_le_bytes(
                    take(buf, pos, 8)?.try_into().unwrap(),
                )));
            }
            Value::RefSet(set.into())
        }
        other => return Err(CodecError::BadTag(other)),
    })
}

/// Encodes a whole object: OID, slot count, slots.
pub fn encode_object(obj: &Object, out: &mut Vec<u8>) {
    out.extend_from_slice(&obj.oid.as_u64().to_le_bytes());
    out.extend_from_slice(&(obj.slots.len() as u16).to_le_bytes());
    for v in &obj.slots {
        encode_value(v, out);
    }
}

/// Decodes an object.
pub fn decode_object(buf: &[u8], pos: &mut usize) -> Result<Object, CodecError> {
    let oid = Oid::from_u64(u64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap()));
    let n = u16::from_le_bytes(take(buf, pos, 2)?.try_into().unwrap()) as usize;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        slots.push(decode_value(buf, pos)?);
    }
    Ok(Object::new(oid, slots))
}

// ---- slotted pages ----------------------------------------------------------

/// A slotted page: `[n_slots: u16][slot offsets: u16 × n]...free...[data]`.
/// Object bytes grow downward from the page end; the directory grows
/// upward from the front.
#[derive(Clone)]
pub struct Page {
    buf: Box<[u8; PAGE_BYTES]>,
    /// Start of the lowest object's bytes (free space ends here).
    data_start: usize,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// An empty page.
    pub fn new() -> Self {
        Page {
            buf: Box::new([0u8; PAGE_BYTES]),
            data_start: PAGE_BYTES,
        }
    }

    fn n_slots(&self) -> usize {
        u16::from_le_bytes([self.buf[0], self.buf[1]]) as usize
    }

    fn set_n_slots(&mut self, n: usize) {
        self.buf[..2].copy_from_slice(&(n as u16).to_le_bytes());
    }

    fn slot_offset(&self, i: usize) -> usize {
        let at = 2 + 2 * i;
        u16::from_le_bytes([self.buf[at], self.buf[at + 1]]) as usize
    }

    /// Bytes of free space remaining.
    pub fn free(&self) -> usize {
        self.data_start - (2 + 2 * self.n_slots())
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.n_slots()
    }

    /// True when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.n_slots() == 0
    }

    /// Tries to append an encoded object; `false` when it does not fit.
    pub fn try_insert(&mut self, encoded: &[u8]) -> Result<bool, CodecError> {
        if encoded.len() + 2 > PAGE_BYTES - 2 {
            return Err(CodecError::ObjectTooLarge(encoded.len()));
        }
        let n = self.n_slots();
        if self.free() < encoded.len() + 2 {
            return Ok(false);
        }
        let start = self.data_start - encoded.len();
        self.buf[start..self.data_start].copy_from_slice(encoded);
        let dir_at = 2 + 2 * n;
        self.buf[dir_at..dir_at + 2].copy_from_slice(&(start as u16).to_le_bytes());
        self.set_n_slots(n + 1);
        self.data_start = start;
        Ok(true)
    }

    /// Decodes the `i`-th object.
    pub fn read(&self, i: usize) -> Result<Object, CodecError> {
        if i >= self.n_slots() {
            return Err(CodecError::CorruptPage);
        }
        let mut pos = self.slot_offset(i);
        if pos >= PAGE_BYTES {
            return Err(CodecError::CorruptPage);
        }
        decode_object(&self.buf[..], &mut pos)
    }

    /// Raw page bytes (e.g. for writing to a file).
    pub fn bytes(&self) -> &[u8; PAGE_BYTES] {
        &self.buf
    }

    /// Reconstructs a page from raw bytes (no validation beyond reads).
    pub fn from_bytes(bytes: [u8; PAGE_BYTES]) -> Self {
        let p = Page {
            buf: Box::new(bytes),
            data_start: PAGE_BYTES,
        };
        // Recompute data_start from the directory for further inserts.
        let mut start = PAGE_BYTES;
        for i in 0..p.n_slots() {
            start = start.min(p.slot_offset(i));
        }
        Page {
            data_start: start,
            ..p
        }
    }
}

/// Packs objects into as few pages as first-fit-in-order allows
/// (preserving order — the dense packing the catalog assumes).
pub fn pack_collection<'a>(
    objects: impl IntoIterator<Item = &'a Object>,
) -> Result<Vec<Page>, CodecError> {
    let mut pages: Vec<Page> = vec![Page::new()];
    let mut scratch = Vec::new();
    for obj in objects {
        scratch.clear();
        encode_object(obj, &mut scratch);
        let last = pages.last_mut().expect("non-empty");
        if !last.try_insert(&scratch)? {
            let mut fresh = Page::new();
            if !fresh.try_insert(&scratch)? {
                return Err(CodecError::ObjectTooLarge(scratch.len()));
            }
            pages.push(fresh);
        }
    }
    Ok(pages)
}

/// Reads every object back out of a packed page run, in order.
pub fn unpack_pages(pages: &[Page]) -> Result<Vec<Object>, CodecError> {
    let mut out = Vec::new();
    for p in pages {
        for i in 0..p.len() {
            out.push(p.read(i)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_object::TypeId;

    fn obj(seq: u32, slots: Vec<Value>) -> Object {
        Object::new(Oid::new(TypeId::from_index(3), seq), slots)
    }

    #[test]
    fn value_roundtrip_all_variants() {
        let vals = vec![
            Value::Null,
            Value::Int(-42),
            Value::Float(3.25),
            Value::Bool(true),
            Value::Bool(false),
            Value::str("héllo wörld"),
            Value::Date(Date::from_ymd(1992, 1, 1)),
            Value::Ref(Oid::new(TypeId::from_index(7), 99)),
            Value::RefSet(
                vec![
                    Oid::new(TypeId::from_index(1), 2),
                    Oid::new(TypeId::from_index(1), 5),
                ]
                .into(),
            ),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            encode_value(v, &mut buf);
        }
        let mut pos = 0;
        for v in &vals {
            assert_eq!(&decode_value(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len(), "no trailing bytes");
    }

    #[test]
    fn object_roundtrip() {
        let o = obj(7, vec![Value::str("x"), Value::Int(1), Value::Null]);
        let mut buf = Vec::new();
        encode_object(&o, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_object(&buf, &mut pos).unwrap(), o);
    }

    #[test]
    fn page_packs_and_reads_back() {
        let objs: Vec<Object> = (0..50)
            .map(|i| {
                obj(
                    i,
                    vec![Value::Int(i as i64), Value::str(&format!("name-{i}"))],
                )
            })
            .collect();
        let pages = pack_collection(objs.iter()).unwrap();
        assert_eq!(pages.len(), 1, "50 small objects fit one page");
        assert_eq!(unpack_pages(&pages).unwrap(), objs);
    }

    #[test]
    fn overflow_starts_a_new_page() {
        // ~200-byte objects: a 4 KB page fits ~19 of them.
        let objs: Vec<Object> = (0..100)
            .map(|i| obj(i, vec![Value::str(&"x".repeat(180)), Value::Int(i as i64)]))
            .collect();
        let pages = pack_collection(objs.iter()).unwrap();
        assert!(pages.len() >= 5, "{} pages", pages.len());
        for p in &pages {
            assert!(!p.is_empty());
        }
        assert_eq!(unpack_pages(&pages).unwrap(), objs);
    }

    #[test]
    fn oversized_object_is_rejected() {
        let huge = obj(0, vec![Value::str(&"x".repeat(PAGE_BYTES))]);
        assert!(matches!(
            pack_collection(std::iter::once(&huge)),
            Err(CodecError::ObjectTooLarge(_))
        ));
    }

    #[test]
    fn corrupt_input_reports_errors_not_panics() {
        assert_eq!(decode_value(&[], &mut 0), Err(CodecError::UnexpectedEof));
        assert_eq!(decode_value(&[0xFF], &mut 0), Err(CodecError::BadTag(0xFF)));
        // Truncated string.
        let mut buf = Vec::new();
        encode_value(&Value::str("hello"), &mut buf);
        buf.truncate(buf.len() - 2);
        assert_eq!(decode_value(&buf, &mut 0), Err(CodecError::UnexpectedEof));
        // Invalid UTF-8.
        let mut buf = vec![TAG_STR];
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(decode_value(&buf, &mut 0), Err(CodecError::BadUtf8));
    }

    #[test]
    fn page_bytes_roundtrip() {
        let objs: Vec<Object> = (0..10)
            .map(|i| obj(i, vec![Value::Int(i as i64)]))
            .collect();
        let pages = pack_collection(objs.iter()).unwrap();
        let restored = Page::from_bytes(*pages[0].bytes());
        assert_eq!(restored.len(), 10);
        assert_eq!(restored.read(3).unwrap(), objs[3]);
        // And the restored page accepts further inserts.
        let mut restored = restored;
        let mut buf = Vec::new();
        encode_object(&obj(99, vec![Value::Bool(true)]), &mut buf);
        assert!(restored.try_insert(&buf).unwrap());
        assert_eq!(restored.read(10).unwrap().oid.seq(), 99);
    }
}
