//! `oodb` — an interactive ZQL shell over the generated Table 1 database.
//!
//! ```text
//! $ cargo run -p oodb-cli
//! oodb> SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe";
//! oodb> EXPLAIN SELECT t FROM Task t IN Tasks WHERE t.time() == 100;
//! oodb> \catalog          -- collections and statistics
//! oodb> \indexes          -- index descriptors
//! oodb> \rules off join-commutativity
//! oodb> \stats            -- collect histograms (refined selectivity)
//! oodb> \help
//! ```

#![forbid(unsafe_code)]

use oodb_core::plancache::{CacheKey, CachedBody, CachedPlan, PlanCache};
use oodb_core::{
    drift_ratio, greedy_plan, CostParams, EnumLimits, FeedbackStore, Observation, OodbModel,
    OpenOodb, OptimizerConfig,
};
use oodb_exec::{try_execute_parallel, try_execute_traced, ExecResult, RunLimits};
use oodb_object::paper::PaperModel;
use oodb_object::{Catalog, Value};
use oodb_storage::{
    generate_paper_db, FaultConfig, FaultInjector, GenConfig, MemoryGovernor, Store,
};
use oodb_telemetry::{fmt_ns, MetricsRegistry, StageTimer};
use oodb_wal::{FlushPolicy, WalRecord, WalSession};
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Collects every predicate id in a logical plan (selects and joins), in
/// plan order, for the `EXPLAIN FEEDBACK` per-predicate listing.
fn collect_preds(plan: &oodb_algebra::LogicalPlan, out: &mut Vec<oodb_algebra::PredId>) {
    if let oodb_algebra::LogicalOp::Select { pred } | oodb_algebra::LogicalOp::Join { pred } =
        &plan.op
    {
        out.push(*pred);
    }
    for c in &plan.children {
        collect_preds(c, out);
    }
}

/// Renders one verifier diagnostic the same way everywhere — check name,
/// operator path ([`Diagnostic::path_string`]), operator, then the
/// expected/actual pair — whether it came from the logical linter, the
/// winning-plan verifier, or the plan-space auditor.
///
/// [`Diagnostic::path_string`]: oodb_core::verify::Diagnostic::path_string
fn print_diag(d: &oodb_core::verify::Diagnostic) {
    println!(
        "  [{}] at {} ({})\n      expected {}\n      got      {}",
        d.check,
        d.path_string(),
        d.op,
        d.expected,
        d.actual
    );
}

struct Shell {
    store: Store,
    model: PaperModel,
    catalog: Catalog,
    config: OptimizerConfig,
    cache: PlanCache,
    /// Actual-vs-estimated feedback for this shell's executions. Plain
    /// statements feed the root sample; `EXPLAIN ANALYZE` additionally
    /// records per-predicate selectivity overrides from its trace.
    feedback: FeedbackStore,
    telemetry: MetricsRegistry,
    /// Morsel worker threads for plain statement execution (1 = serial).
    exec_workers: usize,
    /// A network server launched from this shell (`\serve`).
    server: Option<oodb_server::Server>,
    /// A connection to a running server (`\connect`); while set, plain
    /// statements execute remotely.
    remote: Option<oodb_server::Client>,
    /// Active WAL session (`\durability on DIR`); while set, `\stats`
    /// is logged before it is applied to the store.
    wal: Option<WalSession>,
}

fn main() {
    let scale: u64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    // `--hot-names F` skews the Employees set so a fraction F share one
    // name while the catalog still assumes uniformity — a ready-made
    // estimate-drift fixture for exercising the feedback loop.
    let hot_names: f64 = std::env::args()
        .skip_while(|a| a != "--hot-names")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);
    eprintln!("Generating the Table 1 database at scale 1/{scale}...");
    let (store, model) = generate_paper_db(GenConfig {
        scale_div: scale,
        hot_employee_name_fraction: hot_names,
        ..Default::default()
    });
    let catalog = model.catalog.clone();
    let mut shell = Shell {
        store,
        model,
        catalog,
        config: OptimizerConfig::all_rules(),
        cache: PlanCache::default(),
        feedback: FeedbackStore::default(),
        telemetry: MetricsRegistry::new(),
        exec_workers: 1,
        server: None,
        remote: None,
        wal: None,
    };
    eprintln!("Open OODB reproduction shell. \\help for commands, \\q to quit.");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("oodb> ");
        } else {
            print!("  ..> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim_end();
        if buffer.is_empty() && line.starts_with('\\') {
            if !shell.command(line) {
                break;
            }
            continue;
        }
        buffer.push_str(line);
        buffer.push(' ');
        // Statements end with ';' (or a blank line flushes).
        if line.trim_end().ends_with(';') || line.trim().is_empty() {
            let stmt = std::mem::take(&mut buffer);
            let stmt = stmt.trim();
            if !stmt.is_empty() && stmt != ";" {
                shell.statement(stmt);
            }
        }
    }
    // Drain a shell-launched server before exiting so in-flight remote
    // requests get their responses.
    if let Some(s) = shell.server.take() {
        eprintln!("draining server on {}...", s.local_addr());
        s.shutdown();
    }
}

impl Shell {
    /// Handles a backslash command; returns false to quit.
    fn command(&mut self, line: &str) -> bool {
        let mut parts = line.split_whitespace();
        match parts.next().unwrap_or("") {
            "\\q" | "\\quit" => return false,
            "\\help" => {
                println!(
                    "Statements: any ZQL query ending in ';' — executed and printed.\n\
                     Prefix with EXPLAIN to see the optimal (and greedy) plan instead,\n\
                     EXPLAIN ANALYZE to run it and annotate each operator with\n\
                     actual rows, wall time, and buffer I/O, EXPLAIN VERIFY to\n\
                     statically check the winning plan (and, with verify-search on,\n\
                     every expression the transformation rules generated), or\n\
                     EXPLAIN AUDIT to enumerate the full plan space and prove the\n\
                     winner cost-minimal over it, or EXPLAIN FEEDBACK to compare\n\
                     catalog selectivities against feedback-derived overrides.\n\
                     Commands:\n\
                     \\schema              types and fields\n\
                     \\catalog             collections and cardinalities\n\
                     \\indexes             index descriptors\n\
                     \\rules [off NAME | on NAME | reset]   rule configuration\n\
                     \\window N            assembly window (1 = no elevator)\n\
                     \\workers N           morsel worker threads (1 = serial)\n\
                     \\stats               collect histograms for refined selectivity\n\
                     \\cache [stats|clear] plan-cache counters / drop cached plans\n\
                     \\feedback [stats|clear] actual-vs-estimated drift per query\n\
                     \\trace QUERY;        show the goal-directed search trace\n\
                     \\verify QUERY;       statically verify the query's winning plan\n\
                     \\verify search on|off   also lint every memo expression (slow)\n\
                     \\audit QUERY;        enumeration oracle + interval + rule-graph audit\n\
                     \\serve ADDR          serve this database over HTTP (\\serve stop)\n\
                     \\connect ADDR        run statements against a remote server\n\
                     \\disconnect          go back to local execution\n\
                     \\metrics             dump all metrics (Prometheus text format)\n\
                     \\profile on|off      latency histogram collection (default off)\n\
                     \\faults on [RATE] [SEED]   inject storage faults (default 0.05)\n\
                     \\faults off          detach the fault injector\n\
                     \\faults stats        injector counters and enabled state\n\
                     \\mem on [BYTES]      govern execution memory (default 1 MiB);\n\
                     \\                    hash joins and set ops spill when over\n\
                     \\mem off             detach the memory governor\n\
                     \\mem stats           governor ledger and pressure level\n\
                     \\durability on DIR [batch N | manual]   write-ahead-log \\stats\n\
                     \\                    mutations into DIR (checkpoint + log)\n\
                     \\durability off      stop logging (flushes first)\n\
                     \\wal [stats]         log counters and checkpoint sizes\n\
                     \\wal checkpoint      compact the log into a fresh checkpoint\n\
                     \\save PATH           snapshot the database to a checkpoint file\n\
                     \\open PATH           load a snapshot or recover a durability dir\n\
                     \\q                   quit"
                );
            }
            "\\schema" => {
                for (ty, def) in self.model.schema.types() {
                    let fields: Vec<String> = self
                        .model
                        .schema
                        .fields_of(ty)
                        .into_iter()
                        .map(|f| {
                            let fd = self.model.schema.field(f);
                            match fd.kind {
                                oodb_object::FieldKind::Attr(a) => {
                                    format!("{}: {a:?}", fd.name)
                                }
                                oodb_object::FieldKind::Ref(t) => {
                                    format!("{} -> {}", fd.name, self.model.schema.ty(t).name)
                                }
                                oodb_object::FieldKind::RefSet(t) => {
                                    format!("{} -> {{{}}}", fd.name, self.model.schema.ty(t).name)
                                }
                            }
                        })
                        .collect();
                    let sup = def
                        .supertype
                        .map(|s| format!(" : {}", self.model.schema.ty(s).name))
                        .unwrap_or_default();
                    println!("{}{} {{ {} }}", def.name, sup, fields.join(", "));
                }
            }
            "\\catalog" => {
                for (_, def) in self.catalog.collections() {
                    println!(
                        "{:<22} {:>9} x {:>5} bytes  ({:?})",
                        def.name, def.cardinality, def.obj_bytes, def.kind
                    );
                }
                println!("histograms collected: {}", self.catalog.histogram_count());
            }
            "\\indexes" => {
                for (_, d) in self.catalog.indexes() {
                    let path: Vec<String> = d
                        .path
                        .iter()
                        .chain(std::iter::once(&d.key))
                        .map(|&f| self.model.schema.field(f).name.clone())
                        .collect();
                    println!(
                        "{:<22} on {} ({}) distinct {}",
                        d.name,
                        self.catalog.collection(d.collection).name,
                        path.join("."),
                        d.distinct_keys
                    );
                }
            }
            "\\rules" => match (parts.next(), parts.next()) {
                (Some("off"), Some(name)) => match oodb_core::config::rule_name_by_str(name) {
                    Some(stable) => {
                        self.config.disabled_rules.insert(stable);
                        println!("disabled {stable}");
                    }
                    None => println!("unknown rule {name:?} — see \\rules"),
                },
                (Some("on"), Some(name)) => match oodb_core::config::rule_name_by_str(name) {
                    Some(stable) => {
                        self.config.disabled_rules.remove(stable);
                        println!("enabled {stable}");
                    }
                    None => println!("unknown rule {name:?}"),
                },
                (Some("reset"), _) => {
                    self.config = OptimizerConfig::all_rules();
                    println!("all rules enabled");
                }
                _ => {
                    for name in oodb_core::config::ALL_RULE_NAMES {
                        let state = if self.config.enabled(name) {
                            "on "
                        } else {
                            "OFF"
                        };
                        println!("{state} {name}");
                    }
                }
            },
            "\\window" => {
                if let Some(n) = parts.next().and_then(|s| s.parse().ok()) {
                    self.config.assembly_window = n;
                    println!("assembly window = {n}");
                } else {
                    println!("assembly window = {}", self.config.assembly_window);
                }
            }
            "\\workers" => {
                if let Some(n) = parts.next().and_then(|s| s.parse::<usize>().ok()) {
                    self.exec_workers = n.max(1);
                    println!("morsel workers = {}", self.exec_workers);
                } else {
                    println!(
                        "morsel workers = {} (machine has {} cores)",
                        self.exec_workers,
                        std::thread::available_parallelism().map_or(1, |n| n.get())
                    );
                }
            }
            "\\trace" => {
                let rest: Vec<&str> = line.splitn(2, ' ').collect();
                match rest.get(1) {
                    Some(src) => self.trace(src.trim_end_matches(';')),
                    None => println!("usage: \\trace SELECT ... ;"),
                }
            }
            "\\audit" => {
                let rest: Vec<&str> = line.splitn(2, ' ').collect();
                match rest.get(1) {
                    Some(src) => self.audit_stmt(src.trim_end_matches(';')),
                    None => println!("usage: \\audit SELECT ... ;"),
                }
            }
            "\\verify" => {
                let rest: Vec<&str> = line.splitn(2, ' ').collect();
                match rest.get(1).map(|s| s.trim()) {
                    Some("search on") => {
                        self.config.verify_search = true;
                        println!("verify-search on — every memo expression is linted");
                    }
                    Some("search off") => {
                        self.config.verify_search = false;
                        println!("verify-search off");
                    }
                    Some(src) if !src.is_empty() => self.verify_stmt(src.trim_end_matches(';')),
                    _ => println!(
                        "usage: \\verify SELECT ... ;  or  \\verify search on|off \
                         (currently {})",
                        if self.config.verify_search {
                            "on"
                        } else {
                            "off"
                        }
                    ),
                }
            }
            "\\stats" => {
                if let Some(session) = self.wal.as_mut() {
                    // Log-then-apply: the refresh reaches the WAL before
                    // the store, and replay re-runs the same composite.
                    let rec = WalRecord::StatsRefresh { buckets: 32 };
                    if let Err(e) = session.append(&rec) {
                        println!("wal append failed ({e}); durability degraded");
                    }
                    if let Err(e) = oodb_wal::apply_to(&mut self.store, &rec) {
                        println!("statistics refresh failed: {e}");
                        return true;
                    }
                    self.catalog = self.store.catalog().clone();
                } else {
                    self.catalog = self.store.collect_statistics(&[], 32);
                }
                // Feedback gathered under the old statistics described a
                // distribution the refreshed catalog supersedes.
                self.feedback.retire_older_than(self.catalog.stats_epoch());
                println!(
                    "collected {} histograms; selectivity estimation refined \
                     (stats epoch {} — cached plans will re-optimize)",
                    self.catalog.histogram_count(),
                    self.catalog.stats_epoch()
                );
            }
            "\\cache" => match parts.next() {
                Some("clear") => {
                    self.cache.clear();
                    println!("plan cache cleared");
                }
                None | Some("stats") => {
                    let s = self.cache.stats();
                    println!(
                        "plan cache: {} entries, {} hits, {} misses, {} evictions \
                         ({:.0}% hit rate); stats epoch {}",
                        s.entries,
                        s.hits,
                        s.misses,
                        s.evictions,
                        s.hit_rate() * 100.0,
                        self.catalog.stats_epoch()
                    );
                }
                Some(other) => println!("unknown subcommand {other:?}; \\cache [stats|clear]"),
            },
            "\\feedback" => match parts.next() {
                Some("clear") => {
                    self.feedback.clear();
                    println!("feedback cleared");
                }
                None | Some("stats") => {
                    let s = self.feedback.stats();
                    println!(
                        "feedback: {} fingerprints tracked, {} suspect, {} with \
                         overrides ({} overrides total); worst drift {:.1}x \
                         (threshold {:.0}x)",
                        s.tracked,
                        s.suspect,
                        s.overridden,
                        s.overrides,
                        s.worst_drift,
                        self.feedback.threshold()
                    );
                    for e in self.feedback.snapshot() {
                        println!(
                            "  {:016x}  execs {:>4}  est {:>10.1}  actual {:>8}  \
                             drift {:>7.1}x{}{}",
                            e.fingerprint,
                            e.execs,
                            e.last_est,
                            e.last_actual,
                            e.worst_drift,
                            if e.suspect { "  SUSPECT" } else { "" },
                            if e.overrides > 0 {
                                format!("  {} override(s)", e.overrides)
                            } else {
                                String::new()
                            }
                        );
                    }
                }
                Some(other) => {
                    println!("unknown subcommand {other:?}; \\feedback [stats|clear]")
                }
            },
            "\\metrics" => {
                // When serving, the service's registry carries the full
                // picture (server counters included).
                match &self.server {
                    Some(s) => print!("{}", s.service().metrics_prometheus()),
                    None => print!("{}", self.telemetry.render_prometheus()),
                }
            }
            "\\serve" => match parts.next() {
                Some("stop") => match self.server.take() {
                    Some(s) => {
                        let addr = s.local_addr();
                        s.shutdown();
                        println!("server on {addr} drained and stopped");
                    }
                    None => println!("no server running; \\serve ADDR"),
                },
                Some(addr) => {
                    if self.server.is_some() {
                        println!("a server is already running; \\serve stop first");
                    } else {
                        // The server gets its own QueryService over a
                        // snapshot of this shell's store and rule config;
                        // later \rules / \stats changes stay local.
                        let svc = oodb_service::QueryService::new(
                            self.store.clone(),
                            CostParams::default(),
                            self.config.clone(),
                            256,
                            8,
                        );
                        match oodb_server::Server::start(
                            svc,
                            addr,
                            oodb_server::ServerConfig::default(),
                        ) {
                            Ok(s) => {
                                println!(
                                    "serving on {} — POST /query, /prepare, \
                                     /execute/{{id}}; GET /metrics, /healthz, /stats",
                                    s.local_addr()
                                );
                                self.server = Some(s);
                            }
                            Err(e) => println!("cannot serve on {addr}: {e}"),
                        }
                    }
                }
                None => match &self.server {
                    Some(s) => println!("serving on {}", s.local_addr()),
                    None => println!("usage: \\serve ADDR (e.g. 127.0.0.1:7070) | \\serve stop"),
                },
            },
            "\\connect" => match parts.next() {
                Some(addr) => match oodb_server::Client::connect(addr.to_string()) {
                    Ok(mut c) => match c.healthz() {
                        Ok(()) => {
                            println!(
                                "connected to {addr}; statements now execute remotely \
                                 (\\disconnect to go local)"
                            );
                            self.remote = Some(c);
                        }
                        Err(e) => println!("{addr} did not answer /healthz: {e}"),
                    },
                    Err(e) => println!("cannot connect to {addr}: {e}"),
                },
                None => match &self.remote {
                    Some(c) => println!("connected to {}", c.host()),
                    None => println!("usage: \\connect ADDR"),
                },
            },
            "\\disconnect" => match self.remote.take() {
                Some(c) => println!("disconnected from {}", c.host()),
                None => println!("not connected"),
            },
            "\\faults" => match parts.next() {
                Some("on") => {
                    let rate = parts
                        .next()
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or(0.05)
                        .clamp(0.0, 1.0);
                    let seed: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0x00DB);
                    self.store
                        .attach_fault_injector(FaultInjector::new(FaultConfig {
                            read_fault_rate: rate,
                            seed,
                            ..Default::default()
                        }));
                    println!("fault injection on: read fault rate {rate}, seed {seed}");
                }
                Some("off") => {
                    self.store.detach_fault_injector();
                    println!("fault injection off");
                }
                None | Some("stats") => match self.store.fault_injector() {
                    Some(inj) => {
                        let s = inj.stats();
                        println!(
                            "fault injector {}: {} injected ({} transient, {} permanent), \
                             {} panics, {} healed accesses, {} latency events",
                            if inj.enabled() { "enabled" } else { "disabled" },
                            s.injected,
                            s.transient,
                            s.permanent,
                            s.panics,
                            s.healed_accesses,
                            s.latency_events
                        );
                    }
                    None => println!("no fault injector attached; \\faults on [RATE] [SEED]"),
                },
                Some(other) => {
                    println!("unknown subcommand {other:?}; \\faults on|off|stats")
                }
            },
            "\\mem" => match parts.next() {
                Some("on") => {
                    let bytes: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(1 << 20)
                        .max(1);
                    self.store
                        .attach_memory_governor(MemoryGovernor::new(bytes));
                    println!(
                        "memory governor on: {bytes} bytes capacity; operators \
                         spill to simulated disk when grants run out"
                    );
                }
                Some("off") => {
                    self.store.detach_memory_governor();
                    println!("memory governor off");
                }
                None | Some("stats") => match self.store.memory_governor() {
                    Some(gov) => {
                        let s = gov.stats();
                        println!(
                            "memory governor: {}/{} bytes reserved (peak {}), \
                             pressure {}; {} grants, {} denials, spill {} B \
                             written / {} B read",
                            s.reserved,
                            s.capacity,
                            s.peak_reserved,
                            gov.pressure(),
                            s.grants_issued,
                            s.grant_denials,
                            s.spill_bytes_written,
                            s.spill_bytes_read
                        );
                    }
                    None => println!("no memory governor attached; \\mem on [BYTES]"),
                },
                Some(other) => {
                    println!("unknown subcommand {other:?}; \\mem on|off|stats")
                }
            },
            "\\durability" => match parts.next() {
                Some("on") => match parts.next() {
                    Some(dir) => {
                        let policy = match (parts.next(), parts.next()) {
                            (Some("batch"), Some(n)) => FlushPolicy::Batch(n.parse().unwrap_or(8)),
                            (Some("manual"), _) => FlushPolicy::Manual,
                            _ => FlushPolicy::EveryRecord,
                        };
                        match WalSession::create(
                            std::path::Path::new(dir),
                            &self.store,
                            policy,
                            None,
                        ) {
                            Ok(s) => {
                                println!(
                                    "durability on: checkpointed {} records into {dir} \
                                     ({:?} flushes)",
                                    s.last_checkpoint().records,
                                    policy
                                );
                                self.wal = Some(s);
                            }
                            Err(e) => println!("cannot start durability: {e}"),
                        }
                    }
                    None => println!("\\durability on DIR [batch N | manual]"),
                },
                Some("off") => match self.wal.take() {
                    Some(mut s) => {
                        let _ = s.flush();
                        println!("durability off (log flushed)");
                    }
                    None => println!("durability is already off"),
                },
                _ => println!(
                    "durability is {}; \\durability on DIR [batch N | manual] | off",
                    match &self.wal {
                        Some(s) => format!("on ({})", s.dir().display()),
                        None => "off".into(),
                    }
                ),
            },
            "\\wal" => match parts.next() {
                Some("checkpoint") => match self.wal.as_mut() {
                    Some(s) => match s.checkpoint(&self.store) {
                        Ok(ck) => println!(
                            "checkpoint: {} records, {} bytes; log reset at seq {}",
                            ck.records,
                            ck.bytes,
                            s.next_seq()
                        ),
                        Err(e) => println!("checkpoint failed: {e}"),
                    },
                    None => println!("durability is off; \\durability on DIR first"),
                },
                None | Some("stats") => match &self.wal {
                    Some(s) => {
                        let ws = s.wal_stats();
                        let ck = s.last_checkpoint();
                        println!(
                            "wal: {} records ({} bytes), {} flushes, {} syncs, \
                             {} buffered, next seq {}{}\n\
                             checkpoint: {} records ({} bytes); {} log records \
                             compacted this session",
                            ws.records,
                            ws.bytes,
                            ws.flushes,
                            ws.syncs,
                            s.buffered_records(),
                            s.next_seq(),
                            if s.poisoned() { "  POISONED" } else { "" },
                            ck.records,
                            ck.bytes,
                            s.compacted_records(),
                        );
                    }
                    None => println!("durability is off; \\durability on DIR first"),
                },
                Some(other) => println!("unknown subcommand {other:?}; \\wal [stats|checkpoint]"),
            },
            "\\save" => match parts.next() {
                Some(path) => {
                    let recs = oodb_wal::checkpoint_records(&self.store);
                    match oodb_wal::write_checkpoint(std::path::Path::new(path), 0, &recs) {
                        Ok(ck) => println!(
                            "saved {} records ({} bytes) to {path}",
                            ck.records, ck.bytes
                        ),
                        Err(e) => println!("save failed: {e}"),
                    }
                }
                None => println!("\\save PATH — snapshot the database to a checkpoint file"),
            },
            "\\open" => match parts.next() {
                Some(path) => {
                    let p = std::path::Path::new(path);
                    // A directory is a durability dir (checkpoint + log);
                    // a file is a bare \save snapshot.
                    let recovered = if p.is_dir() {
                        oodb_wal::recover(p)
                            .map(|(store, report)| {
                                if let Some(stop) = &report.stopped {
                                    println!("replay stopped early: {stop}");
                                }
                                println!(
                                    "recovered: {} checkpoint + {} log records \
                                     ({} torn tail bytes discarded)",
                                    report.checkpoint_records,
                                    report.replayed_records,
                                    report.torn_tail_bytes
                                );
                                store
                            })
                            .map_err(|e| e.to_string())
                    } else {
                        oodb_wal::load_checkpoint(p)
                            .map_err(|e| e.to_string())
                            .and_then(|(_, recs)| {
                                let mut slot = None;
                                for rec in &recs {
                                    oodb_wal::apply_record(&mut slot, rec)
                                        .map_err(|e| e.to_string())?;
                                }
                                slot.ok_or_else(|| "empty checkpoint".into())
                            })
                    };
                    match recovered {
                        Ok(store) => {
                            self.catalog = store.catalog().clone();
                            self.store = store;
                            self.cache.clear();
                            self.feedback.clear();
                            println!(
                                "opened {path} (stats epoch {}; plan cache and \
                                 feedback cleared)",
                                self.catalog.stats_epoch()
                            );
                        }
                        Err(e) => println!("open failed: {e}"),
                    }
                }
                None => println!("\\open PATH — load a \\save snapshot or durability dir"),
            },
            "\\profile" => match parts.next() {
                Some("on") => {
                    self.telemetry.set_profiling(true);
                    println!("profiling on — latency histograms recording");
                }
                Some("off") => {
                    self.telemetry.set_profiling(false);
                    println!("profiling off");
                }
                _ => println!(
                    "profiling is {}; \\profile on|off",
                    if self.telemetry.profiling() {
                        "on"
                    } else {
                        "off"
                    }
                ),
            },
            other => println!("unknown command {other:?}; \\help"),
        }
        true
    }

    /// Statically verifies a query's winning plan (always under
    /// verify-search, regardless of the session toggle): lints the logical
    /// algebra, optimizes, and reports every diagnostic — or a clean bill.
    fn verify_stmt(&mut self, src: &str) {
        let q = match zql::compile(src, &self.model.schema, &self.catalog) {
            Ok(q) => q,
            Err(e) => {
                println!("{e}");
                return;
            }
        };
        let mut diags = oodb_core::verify::lint_logical(&q.env, &q.plan);
        let mut config = self.config.clone();
        config.verify_search = true;
        let optimizer = OpenOodb::with_config(&q.env, config);
        let searched = match optimizer.optimize_ordered(&q.plan, q.result_vars, q.order) {
            Some(out) => {
                diags.extend(out.diagnostics);
                Some((out.stats, out.cost))
            }
            None => {
                println!("no feasible plan under the current rule configuration");
                None
            }
        };
        self.telemetry
            .counter("oodb_verify_violations_total", &[])
            .add(diags.len() as u64);
        for d in &diags {
            print_diag(d);
        }
        if let Some((stats, cost)) = searched {
            if diags.is_empty() {
                println!(
                    "verify: OK — 0 diagnostics across the winning plan and \
                     {} memo expressions (estimated {:.3} s)",
                    stats.exprs,
                    cost.total()
                );
            } else {
                println!("verify: {} diagnostic(s)", diags.len());
            }
        }
    }

    /// `EXPLAIN AUDIT` / `\audit`: the plan-space auditor on one query —
    /// rule-graph termination proof, exhaustive enumeration with the
    /// winner checked for cost-minimality over the whole space, and the
    /// interval cardinality audit across every enumerated plan.
    fn audit_stmt(&mut self, src: &str) {
        let q = match zql::compile(src, &self.model.schema, &self.catalog) {
            Ok(q) => q,
            Err(e) => {
                println!("{e}");
                return;
            }
        };
        let optimizer = OpenOodb::with_config(&q.env, self.config.clone());
        match optimizer.prove_rules_terminate() {
            Ok(p) => println!(
                "rule graph: {} rules, {} enablement edges, {} in memo-cut \
                 cycles — termination proven",
                p.rules, p.edges, p.cyclic_rules
            ),
            Err(w) => println!("rule graph: TERMINATION UNPROVEN — {w}"),
        }
        let report = optimizer.audit(&q.plan, q.result_vars, q.order, EnumLimits::default());
        let Some(report) = report else {
            println!("no feasible plan under the current rule configuration");
            return;
        };
        println!(
            "enumerated {} plan(s){}; winner estimated {:.6} s, space minimum {:.6} s",
            report.plans_enumerated(),
            if report.truncated {
                " (TRUNCATED at the enumeration limits — verdict void)"
            } else {
                ""
            },
            report.winner_cost,
            report.best_cost
        );
        println!(
            "{}",
            oodb_algebra::display::render_physical(&q.env, &report.winner)
        );
        if report.cost_minimal {
            println!("audit: winner is cost-minimal over the enumerated space");
        } else {
            println!("audit: WINNER NOT PROVEN MINIMAL over the enumerated space");
        }
        if report.interval_diags.is_empty() {
            println!("intervals: every estimate inside its sound [lo, hi] bounds");
        } else {
            println!(
                "intervals: {} estimate(s) escaped their bounds",
                report.interval_diags.len()
            );
            for d in &report.interval_diags {
                print_diag(d);
            }
        }
    }

    /// `EXPLAIN FEEDBACK`: what the drift detector knows about one query —
    /// each predicate's catalog selectivity next to any feedback override,
    /// then the accumulated actual-vs-estimated record.
    fn feedback_stmt(&mut self, src: &str) {
        let q = match zql::compile(src, &self.model.schema, &self.catalog) {
            Ok(q) => q,
            Err(e) => {
                println!("{e}");
                return;
            }
        };
        let fp = oodb_algebra::fingerprint(&q.env, &q.plan, q.result_vars, q.order.as_ref());
        let overlay = self
            .feedback
            .overlay_for(fp.hash, self.catalog.stats_epoch());
        let model = OodbModel::new(&q.env, CostParams::default(), self.config.clone());
        let mut preds = Vec::new();
        collect_preds(&q.plan, &mut preds);
        if preds.is_empty() {
            println!("no predicates: nothing for the feedback loop to correct");
        }
        for pid in preds {
            let key = oodb_algebra::overlay::pred_key(&q.env, q.env.preds.pred(pid));
            let catalog_sel = model.selectivity(pid);
            match overlay.as_ref().and_then(|o| o.get(&key)) {
                Some(corrected) => {
                    println!("  {key}: catalog {catalog_sel:.6} -> corrected {corrected:.6}")
                }
                None => println!("  {key}: catalog {catalog_sel:.6}"),
            }
        }
        match self
            .feedback
            .snapshot()
            .into_iter()
            .find(|e| e.fingerprint == fp.hash)
        {
            Some(e) => println!(
                "feedback: {} execution(s), last estimated {:.0} vs actual {}, \
                 worst drift {:.1}x{}{}",
                e.execs,
                e.last_est,
                e.last_actual,
                e.worst_drift,
                if e.suspect { ", SUSPECT" } else { "" },
                if e.overrides > 0 {
                    format!(", {} override(s) active", e.overrides)
                } else {
                    String::new()
                }
            ),
            None => println!("feedback: no executions recorded for this query"),
        }
    }

    /// Folds one execution's root row count into the drift detector and
    /// tells the user when the estimate drifted past the threshold. A
    /// newly suspect query loses its cached plan so the next run probes
    /// and re-optimizes.
    fn note_drift(
        &self,
        key: &CacheKey,
        fp: u64,
        epoch: u64,
        est: f64,
        actual: u64,
        corrected: bool,
    ) {
        match self
            .feedback
            .observe_root(fp, epoch, est, actual, corrected)
        {
            Observation::InBounds => {}
            obs => {
                if obs == Observation::NewlySuspect {
                    self.cache.remove(key);
                }
                println!(
                    "note: estimate drift {:.1}x (estimated {:.0} rows, observed \
                     {actual}); run the query again to re-optimize with corrected \
                     selectivities",
                    drift_ratio(est, actual),
                    est.max(0.0),
                );
            }
        }
    }

    /// Shows the goal-level search trace for a query (the paper's
    /// Figure 11 view, live).
    fn trace(&mut self, src: &str) {
        let q = match zql::compile(src, &self.model.schema, &self.catalog) {
            Ok(q) => q,
            Err(e) => {
                println!("{e}");
                return;
            }
        };
        let optimizer = OpenOodb::with_config(&q.env, self.config.clone());
        match optimizer.optimize_traced(&q.plan, q.result_vars) {
            Some((out, lines)) => {
                for l in &lines {
                    println!("  {l}");
                }
                println!("winner estimated at {:.3} s", out.cost.total());
            }
            None => println!("no feasible plan under the current rule configuration"),
        }
    }

    /// Folds one execution's statistics into the always-on counters.
    fn record_exec(&self, stats: &oodb_exec::ExecStats) {
        self.telemetry.counter("oodb_statements_total", &[]).inc();
        self.telemetry
            .counter("oodb_exec_buffer_hits_total", &[])
            .add(stats.buffer_hits);
        self.telemetry
            .counter("oodb_exec_buffer_misses_total", &[])
            .add(stats.buffer_misses);
        self.telemetry
            .counter("oodb_exec_pages_read_total", &[])
            .add(stats.disk.pages());
    }

    /// Runs one statement against the connected server; IO failures
    /// drop the connection back to local mode.
    fn remote_statement(&mut self, src: &str) {
        let Some(client) = self.remote.as_mut() else {
            return;
        };
        match client.query(src, Default::default()) {
            Ok(out) => {
                for row in out.rows.iter().take(20) {
                    println!("  {row}");
                }
                if out.rows.len() > 20 {
                    println!("  ... ({} rows total)", out.rows.len());
                }
                println!(
                    "{} rows from {} in {} server-side{}{}",
                    out.row_count,
                    client.host(),
                    fmt_ns(out.stages.execute_ns),
                    if out.cache_hit {
                        " [plan cache hit]"
                    } else {
                        ""
                    },
                    if out.degraded { " [degraded]" } else { "" }
                );
            }
            Err(e @ oodb_server::ClientError::Io(_)) => {
                println!("{e} — disconnecting; statements are local again");
                self.remote = None;
            }
            Err(e) => println!("{e}"),
        }
    }

    fn statement(&mut self, stmt: &str) {
        let upper = stmt.to_ascii_uppercase();
        if self.remote.is_some() {
            if upper.starts_with("EXPLAIN") {
                println!("EXPLAIN runs locally (the wire carries results, not plans)");
            } else {
                self.remote_statement(stmt.trim_end_matches(';').trim());
                return;
            }
        }
        // EXPLAIN VERIFY statically checks the plan; EXPLAIN ANALYZE runs
        // the plan and annotates it; bare EXPLAIN only shows the search
        // result.
        if upper.starts_with("EXPLAIN VERIFY") {
            let src = stmt["EXPLAIN VERIFY".len()..].trim();
            self.verify_stmt(src.trim_end_matches(';'));
            return;
        }
        if upper.starts_with("EXPLAIN AUDIT") {
            let src = stmt["EXPLAIN AUDIT".len()..].trim();
            self.audit_stmt(src.trim_end_matches(';'));
            return;
        }
        if upper.starts_with("EXPLAIN FEEDBACK") {
            let src = stmt["EXPLAIN FEEDBACK".len()..].trim();
            self.feedback_stmt(src.trim_end_matches(';'));
            return;
        }
        let (explain, analyze, src) = if upper.starts_with("EXPLAIN ANALYZE") {
            (false, true, stmt["EXPLAIN ANALYZE".len()..].trim())
        } else if upper.starts_with("EXPLAIN") {
            (true, false, stmt["EXPLAIN".len()..].trim())
        } else {
            (false, false, stmt)
        };
        let mut timer = StageTimer::start();
        let q = match zql::compile(src, &self.model.schema, &self.catalog) {
            Ok(q) => q,
            Err(e) => {
                println!("{e}");
                return;
            }
        };
        timer.lap_into(
            &self
                .telemetry
                .histogram("oodb_stage_latency_ns", &[("stage", "compile")]),
        );
        if explain {
            // EXPLAIN always optimizes fresh: it exists to show the search.
            let optimizer = OpenOodb::with_config(&q.env, self.config.clone());
            let Some(out) = optimizer.optimize_ordered(&q.plan, q.result_vars, q.order) else {
                println!("no feasible plan under the current rule configuration");
                return;
            };
            println!("Logical algebra:");
            println!("{}", oodb_algebra::display::render_logical(&q.env, &q.plan));
            println!(
                "Optimal plan (estimated {:.3} s, {} groups, {} exprs, {:?}):",
                out.cost.total(),
                out.stats.groups,
                out.stats.exprs,
                out.stats.elapsed
            );
            println!(
                "{}",
                oodb_algebra::display::render_physical(&q.env, &out.plan)
            );
            if let Some(g) = greedy_plan(&q.env, CostParams::default(), &q.plan) {
                println!(
                    "Greedy (ObjectStore-style) plan ({:.3} s):",
                    g.total_io_s() + g.total_cpu_s()
                );
                println!("{}", oodb_algebra::display::render_physical(&q.env, &g));
            }
            return;
        }
        // Plan via the cache: key on canonical fingerprint + rule config +
        // statistics epoch + index set + feedback-overlay fingerprint, so
        // \stats, \rules, or \feedback changes can never serve a stale plan.
        let fp = oodb_algebra::fingerprint(&q.env, &q.plan, q.result_vars, q.order.as_ref());
        let epoch = self.catalog.stats_epoch();
        let overlay = self.feedback.overlay_for(fp.hash, epoch);
        let key = CacheKey::static_plan(
            &fp,
            self.config.fingerprint(),
            epoch,
            self.catalog.index_set_hash(),
            overlay.as_ref().map_or(0, |o| o.fingerprint()),
        );
        let (entry, hit) = match self.cache.get(&key, &fp.key) {
            Some(entry) => (entry, true),
            None => {
                // Scope the optimizer so its borrow of `q.env` ends
                // before the env moves into the cache entry.
                let out = {
                    let mut optimizer = OpenOodb::with_config(&q.env, self.config.clone());
                    if let Some(ov) = overlay.as_ref() {
                        optimizer = optimizer.with_overlay(Arc::clone(ov));
                    }
                    optimizer.optimize_ordered(&q.plan, q.result_vars, q.order)
                };
                let Some(out) = out else {
                    println!("no feasible plan under the current rule configuration");
                    return;
                };
                let entry = Arc::new(CachedPlan {
                    structural: fp.key.clone(),
                    env: q.env,
                    result_vars: q.result_vars,
                    body: CachedBody::Static {
                        plan: out.plan,
                        cost: out.cost,
                    },
                });
                self.cache.insert(key, Arc::clone(&entry));
                (entry, false)
            }
        };
        timer.lap_into(
            &self
                .telemetry
                .histogram("oodb_stage_latency_ns", &[("stage", "plan")]),
        );
        // Cached ids index into the entry's captured env, not this parse's.
        let env = &entry.env;
        let CachedBody::Static { plan, cost } = &entry.body else {
            unreachable!("the shell only caches static plans")
        };
        if analyze {
            let (result, stats, trace) =
                match try_execute_traced(&self.store, env, plan, RunLimits::default()) {
                    Ok(run) => run,
                    Err(e) => {
                        println!("execution failed: {e}");
                        return;
                    }
                };
            timer.lap_into(
                &self
                    .telemetry
                    .histogram("oodb_stage_latency_ns", &[("stage", "execute")]),
            );
            self.record_exec(&stats);
            self.note_drift(
                &key,
                fp.hash,
                epoch,
                plan.est.out_card,
                stats.root_rows,
                overlay.is_some(),
            );
            // The analyzed trace doubles as the feedback probe: record
            // per-predicate overrides so the next run of a drifting query
            // re-optimizes under corrected selectivities.
            if self
                .feedback
                .observe_trace(fp.hash, epoch, env, plan, &trace)
                > 0
                && overlay.is_none()
            {
                self.cache.remove(&key);
            }
            println!("Physical plan (analyzed):");
            print!("{}", trace.render());
            let spilled = stats.disk.spill_pages();
            println!(
                "{} rows in {}; estimated {:.3} s, simulated I/O {:.3} s \
                 ({} pages, {} buffer hits / {} misses){}{}",
                result.len(),
                fmt_ns(trace.elapsed_ns),
                cost.total(),
                stats.disk.total_s,
                stats.disk.pages(),
                stats.buffer_hits,
                stats.buffer_misses,
                if spilled > 0 {
                    format!(
                        ", {} spill pages (peak {} B)",
                        spilled, stats.mem.peak_bytes
                    )
                } else {
                    String::new()
                },
                if hit { " [plan cache hit]" } else { "" }
            );
            return;
        }
        // A suspect plan's next run is probed — internally traced, like
        // the service's hot path — so the per-predicate actuals needed
        // for re-optimization are gathered without the user having to
        // ask for EXPLAIN ANALYZE.
        let (result, stats) = if self.feedback.wants_probe(fp.hash) {
            match try_execute_traced(&self.store, env, plan, RunLimits::default()) {
                Ok((result, stats, trace)) => {
                    if self
                        .feedback
                        .observe_trace(fp.hash, epoch, env, plan, &trace)
                        > 0
                        && overlay.is_none()
                    {
                        self.cache.remove(&key);
                    }
                    (result, stats)
                }
                Err(e) => {
                    println!("execution failed: {e}");
                    return;
                }
            }
        } else {
            match try_execute_parallel(
                &self.store,
                env,
                plan,
                RunLimits::default(),
                self.exec_workers,
            ) {
                Ok(run) => run,
                Err(e) => {
                    println!("execution failed: {e}");
                    return;
                }
            }
        };
        timer.lap_into(
            &self
                .telemetry
                .histogram("oodb_stage_latency_ns", &[("stage", "execute")]),
        );
        self.record_exec(&stats);
        self.note_drift(
            &key,
            fp.hash,
            epoch,
            plan.est.out_card,
            stats.root_rows,
            overlay.is_some(),
        );
        match &result {
            ExecResult::Rows(rows) => {
                for row in rows.iter().take(20) {
                    let cells: Vec<String> = row.iter().map(Value::to_string).collect();
                    println!("  {}", cells.join(" | "));
                }
                if rows.len() > 20 {
                    println!("  ... ({} rows total)", rows.len());
                }
            }
            ExecResult::Tuples(tuples) => {
                for t in tuples.iter().take(20) {
                    let cells: Vec<String> = env
                        .scopes
                        .iter()
                        .filter_map(|(id, v)| t.try_get(id).map(|o| format!("{}={o}", v.name)))
                        .collect();
                    println!("  {}", cells.join("  "));
                }
                if tuples.len() > 20 {
                    println!("  ... ({} rows total)", tuples.len());
                }
            }
        }
        println!(
            "{} rows; estimated {:.3} s, simulated I/O {:.3} s ({} pages, {} buffer hits){}",
            result.len(),
            cost.total(),
            stats.disk.total_s,
            stats.disk.pages(),
            stats.buffer_hits,
            if hit { " [plan cache hit]" } else { "" }
        );
    }
}
