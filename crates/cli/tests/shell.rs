//! End-user test: drive the `oodb` shell binary through a pipe, the way a
//! person would, and check the full stack answers.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_shell(input: &str) -> String {
    run_shell_with(&["--scale", "100"], input)
}

fn run_shell_with(args: &[&str], input: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_oodb"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("shell starts");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write");
    let out = child.wait_with_output().expect("shell exits");
    assert!(out.status.success(), "shell exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn queries_execute_and_explain() {
    let out = run_shell(
        r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe";
EXPLAIN SELECT t FROM Task t IN Tasks WHERE t.time() == 100;
\q
"#,
    );
    assert!(out.contains("rows;"), "execution summary expected:\n{out}");
    assert!(
        out.contains("Optimal plan"),
        "EXPLAIN output expected:\n{out}"
    );
    assert!(out.contains("Logical algebra:"), "{out}");
}

#[test]
fn rule_toggles_change_plans() {
    let out = run_shell(
        r#"\rules off collapse-to-index-scan
\rules off mat-to-join
EXPLAIN SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe";
\rules reset
EXPLAIN SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe";
\q
"#,
    );
    assert!(out.contains("disabled collapse-to-index-scan"), "{out}");
    // First EXPLAIN (rules off) must assemble; second must use the index.
    let first = out.find("Assembly").expect("naive plan assembles");
    let second = out.rfind("Index Scan").expect("reset plan uses index");
    assert!(first < second, "order of plans:\n{out}");
}

#[test]
fn catalog_and_error_reporting() {
    let out = run_shell(
        r#"\catalog
SELECT x FROM x IN Nowhere;
SELECT c FROM c IN Cities WHERE c.name() == 3;
\q
"#,
    );
    assert!(out.contains("Employees"), "{out}");
    assert!(out.contains("unknown collection"), "{out}");
    assert!(
        out.contains("incomparable") || out.contains("cannot compare"),
        "{out}"
    );
}

#[test]
fn stats_collection_reports() {
    let out = run_shell("\\stats\n\\q\n");
    assert!(
        out.contains("histograms; selectivity estimation refined"),
        "{out}"
    );
}

#[test]
fn explain_analyze_annotates_operators() {
    let out = run_shell(
        r#"EXPLAIN ANALYZE SELECT t FROM Task t IN Tasks WHERE t.time() == 100;
explain analyze SELECT t FROM Task t IN Tasks WHERE t.time() == 100;
\q
"#,
    );
    assert!(out.contains("Physical plan (analyzed):"), "{out}");
    assert!(
        out.contains("actual rows="),
        "per-operator annotations expected:\n{out}"
    );
    assert!(out.contains("buf hit/miss="), "{out}");
    assert!(out.contains("rows in "), "summary line expected:\n{out}");
    assert!(
        out.contains("[plan cache hit]"),
        "second analyze should hit the plan cache:\n{out}"
    );
}

#[test]
fn metrics_dump_is_prometheus_text() {
    let out = run_shell(
        r#"\profile on
SELECT t FROM Task t IN Tasks WHERE t.time() == 100;
\metrics
\profile off
\q
"#,
    );
    assert!(out.contains("profiling on"), "{out}");
    assert!(
        out.contains("# TYPE oodb_statements_total counter"),
        "{out}"
    );
    assert!(out.contains("oodb_statements_total 1"), "{out}");
    assert!(
        out.contains(r#"oodb_stage_latency_ns_count{stage="execute"} 1"#),
        "{out}"
    );
    // Histograms must expose their `_sum` series alongside `_count` —
    // without it a scraper cannot compute average latency.
    assert!(
        out.contains(r#"oodb_stage_latency_ns_sum{stage="execute"}"#),
        "histogram _sum series expected:\n{out}"
    );
    // Every exposition line is either a comment or `name{labels} value`.
    let dump_start = out.find("# TYPE").expect("exposition present");
    for line in out[dump_start..].lines() {
        if line.starts_with('#') || line.is_empty() || !line.contains("oodb_") {
            continue;
        }
        if line.starts_with("oodb_") {
            let mut halves = line.rsplitn(2, ' ');
            let value = halves.next().expect("value column");
            assert!(
                value.parse::<f64>().is_ok(),
                "unparsable sample value in {line:?}"
            );
        }
    }
}

#[test]
fn mem_governor_toggles_spills_and_reports() {
    let out = run_shell(
        r#"\mem stats
\mem on 512
\rules off pointer-join
\rules off merge-join
EXPLAIN ANALYZE SELECT Newobject(e.name(), d.name()) FROM Employee e IN Employees, Department d IN Department WHERE e.dept() == d;
\mem stats
\mem off
\mem stats
\q
"#,
    );
    assert!(out.contains("no memory governor attached"), "{out}");
    assert!(
        out.contains("memory governor on: 512 bytes capacity"),
        "{out}"
    );
    // A 500-row hash join under a 512-byte governor must overflow: the
    // analyze summary and the governor ledger both say so.
    assert!(
        out.contains("spill pages (peak "),
        "spill summary expected:\n{out}"
    );
    assert!(out.contains("spill=") && out.contains(" pages)"), "{out}");
    assert!(
        out.contains("memory governor: 0/512 bytes reserved"),
        "{out}"
    );
    assert!(out.contains("memory governor off"), "{out}");
    let after_off = out.rfind("no memory governor attached");
    assert!(after_off > out.find("memory governor off"), "{out}");
}

#[test]
fn fault_injection_toggles_and_reports() {
    let out = run_shell(
        r#"\faults on 1.0 7
SELECT t FROM Task t IN Tasks WHERE t.time() == 100;
\faults stats
\faults off
SELECT t FROM Task t IN Tasks WHERE t.time() == 100;
\faults stats
\q
"#,
    );
    assert!(
        out.contains("fault injection on: read fault rate 1, seed 7"),
        "{out}"
    );
    // At rate 1.0 the very first page read faults, as a typed error — the
    // shell keeps running instead of panicking.
    assert!(
        out.contains("execution failed") && out.contains("storage fault"),
        "fault should surface as a printed error:\n{out}"
    );
    assert!(out.contains("fault injector enabled"), "{out}");
    assert!(out.contains("fault injection off"), "{out}");
    // After detaching, the same query runs to completion.
    assert!(
        out.contains("rows;"),
        "query should succeed once off:\n{out}"
    );
    assert!(out.contains("no fault injector attached"), "{out}");
}

#[test]
fn feedback_ladder_runs_end_to_end_in_the_shell() {
    // `--hot-names 0.5` skews Employees so half share one name while the
    // catalog still claims ~1% — the hot-key query drifts ~50x. Four
    // plain executions walk the full ladder: detect → evict → probe →
    // re-optimize, with no EXPLAIN ANALYZE anywhere.
    let out = run_shell_with(
        &["--scale", "100", "--hot-names", "0.5"],
        r#"SELECT e FROM Employee e IN Employees WHERE e.name() == "Fred";
SELECT e FROM Employee e IN Employees WHERE e.name() == "Fred";
SELECT e FROM Employee e IN Employees WHERE e.name() == "Fred";
SELECT e FROM Employee e IN Employees WHERE e.name() == "Fred";
\feedback stats
EXPLAIN FEEDBACK SELECT e FROM Employee e IN Employees WHERE e.name() == "Fred";
\feedback clear
\feedback stats
\q
"#,
    );
    assert!(
        out.contains("note: estimate drift"),
        "untraced drift note expected:\n{out}"
    );
    assert!(out.contains("SUSPECT"), "suspect marker expected:\n{out}");
    assert!(
        out.contains("override(s)"),
        "probe should have recorded overrides:\n{out}"
    );
    assert!(
        out.contains("-> corrected"),
        "EXPLAIN FEEDBACK should show corrected selectivities:\n{out}"
    );
    assert!(out.contains("feedback cleared"), "{out}");
    // After the clear, the stats line reports an empty store.
    assert!(
        out.rfind("0 fingerprints tracked").is_some(),
        "cleared store expected:\n{out}"
    );
}

#[test]
fn profile_off_skips_histograms() {
    let out = run_shell(
        r#"SELECT t FROM Task t IN Tasks WHERE t.time() == 100;
\metrics
\q
"#,
    );
    // Counters are always live; histograms need \profile on.
    assert!(out.contains("oodb_statements_total 1"), "{out}");
    assert!(
        !out.contains(r#"oodb_stage_latency_ns_count{stage="execute"} 1"#),
        "histogram should not record with profiling off:\n{out}"
    );
}
