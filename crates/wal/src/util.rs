//! Small filesystem helpers (no `tempfile` dependency in the offline
//! container).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static SCRATCH_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Makes the directory *entry* for `path` durable: fsyncing a file's
/// contents does not persist its name (or a rename onto it) — the parent
/// directory must be synced too, or power loss can leave a fully-synced
/// file that simply is not there.
pub(crate) fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()
}

/// A process-unique scratch directory under the OS temp dir, removed on
/// drop (best effort). Used by the durability tests and bench.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Creates `<tmp>/oodb-wal-<tag>-<pid>-<n>`.
    pub fn new(tag: &str) -> std::io::Result<ScratchDir> {
        let n = SCRATCH_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "oodb-wal-{tag}-{pid}-{n}",
            pid = std::process::id()
        ));
        std::fs::create_dir_all(&path)?;
        Ok(ScratchDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
