//! Record framing: `[len: u32][crc: u32][payload]`, little-endian.
//!
//! The frame layer is deliberately dumb: it knows nothing about record
//! contents, only how to delimit byte payloads so that a reader can walk
//! a log and *prove* where the valid prefix ends. Three properties carry
//! the durability guarantees:
//!
//! * A truncated tail (torn write) parses as [`FrameError::Truncated`] —
//!   never as a shorter valid frame, because the CRC covers the whole
//!   payload.
//! * A bit flip anywhere in a frame fails the CRC (or the length sanity
//!   cap, when the flip lands in the length word and inflates it).
//! * Parsing is total: any byte string yields either frames or a typed
//!   error, never a panic — the proptest suite drives this at every
//!   truncation point and under random corruption.

use crate::crc::crc32;

/// Bytes of framing overhead per record (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// Sanity cap on a single frame's payload. A bit flip in the length word
/// can claim up to 4 GiB; anything beyond this cap is rejected as corrupt
/// without attempting to read it. Checkpoint `InsertObjects` records for
/// the full paper database are ~15 MB, so 64 MiB leaves ample headroom.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Frame parse failures. `Truncated` specifically means "the buffer ended
/// mid-frame" — the reader treats it as a torn tail, not corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer ended inside a header or payload (torn write).
    Truncated,
    /// Length word exceeds [`MAX_FRAME_PAYLOAD`] (corrupt header).
    Oversized(u32),
    /// Payload checksum mismatch (corrupt payload or header).
    BadCrc,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated (torn tail)"),
            FrameError::Oversized(n) => write!(f, "frame length {n} exceeds sanity cap"),
            FrameError::BadCrc => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends one framed payload to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Reads the frame starting at `*pos`, advancing `*pos` past it.
///
/// Returns `Ok(None)` when `*pos` sits exactly at the end of the buffer
/// (a clean log end). Errors do not advance `*pos`.
pub fn read_frame<'a>(buf: &'a [u8], pos: &mut usize) -> Result<Option<&'a [u8]>, FrameError> {
    let at = *pos;
    if at == buf.len() {
        return Ok(None);
    }
    if at + FRAME_HEADER > buf.len() {
        return Err(FrameError::Truncated);
    }
    let len = u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(buf[at + 4..at + 8].try_into().expect("4 bytes"));
    if len as usize > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let start = at + FRAME_HEADER;
    let end = start + len as usize;
    if end > buf.len() {
        return Err(FrameError::Truncated);
    }
    let payload = &buf[start..end];
    if crc32(payload) != crc {
        return Err(FrameError::BadCrc);
    }
    *pos = end;
    Ok(Some(payload))
}

/// Offsets (from the start of `buf`) just past each valid frame in the
/// prefix beginning at `start`. The crash harness kills the log at exactly
/// these boundaries; the last entry is where a clean reader stops.
pub fn frame_boundaries(buf: &[u8], start: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut pos = start;
    while let Ok(Some(_)) = read_frame(buf, &mut pos) {
        out.push(pos);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_boundaries() {
        let mut buf = Vec::new();
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![7], vec![1, 2, 3], vec![0xFF; 5000]];
        for p in &payloads {
            write_frame(&mut buf, p);
        }
        let mut pos = 0;
        for p in &payloads {
            assert_eq!(read_frame(&buf, &mut pos).unwrap().unwrap(), &p[..]);
        }
        assert_eq!(read_frame(&buf, &mut pos).unwrap(), None);
        let bounds = frame_boundaries(&buf, 0);
        assert_eq!(bounds.len(), payloads.len());
        assert_eq!(*bounds.last().unwrap(), buf.len());
    }

    #[test]
    fn every_truncation_is_torn_not_valid() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello");
        write_frame(&mut buf, b"world!");
        for cut in 0..buf.len() {
            let cut_buf = &buf[..cut];
            let mut pos = 0;
            // Walk frames until the log ends; a cut mid-frame must
            // surface Truncated, never a bogus frame.
            loop {
                match read_frame(cut_buf, &mut pos) {
                    Ok(Some(p)) => assert!(p == b"hello" || p == b"world!"),
                    Ok(None) => break,
                    Err(FrameError::Truncated) => break,
                    Err(e) => panic!("cut {cut}: unexpected {e}"),
                }
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_reading() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            read_frame(&buf, &mut 0),
            Err(FrameError::Oversized(u32::MAX))
        );
    }

    #[test]
    fn payload_corruption_fails_crc() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload bytes");
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        assert_eq!(read_frame(&buf, &mut 0), Err(FrameError::BadCrc));
    }
}
