//! The append-only log file: header, framed records, torn-tail recovery.
//!
//! File layout: `[magic "OODBWAL1"][base_seq: u64]` followed by framed
//! records (see [`crate::frame`]). Each frame's payload is
//! `[seq: u64][record bytes]` with sequence numbers strictly incrementing
//! from `base_seq` — a reader that observes a gap stops, because a gap
//! means the file is not the log it claims to be.
//!
//! Durability is acknowledged per [`FlushPolicy`]: `EveryRecord` flushes
//! and syncs after each append, `Batch(n)` after every `n`-th record, and
//! `Manual` only on explicit [`Wal::flush`]. Un-flushed records live in a
//! write buffer and die with the process — exactly the window the crash
//! harness explores.
//!
//! Write-path faults (see [`oodb_fault::WriteFaultInjector`]) are
//! honored at flush time: a torn write persists a strict prefix of the
//! outgoing bytes, a partial flush persists a strict prefix of the
//! buffered records, and a sync failure persists everything but reports
//! failure. All three *poison* the log — the next reopen runs torn-tail
//! recovery just as a crash would.

use crate::frame::{read_frame, write_frame, FrameError, FRAME_HEADER};
use crate::util::sync_parent_dir;
use oodb_fault::{WriteFault, WriteFaultInjector};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Log file magic (8 bytes).
pub const WAL_MAGIC: &[u8; 8] = b"OODBWAL1";

/// Header bytes before the first frame (magic + base sequence).
pub const WAL_HEADER: usize = 16;

/// When durability is acknowledged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush + sync after every appended record (safest, slowest).
    EveryRecord,
    /// Flush + sync after every `n` buffered records (the batching that
    /// keeps logging overhead under the bench gate).
    Batch(usize),
    /// Only on explicit [`Wal::flush`] (checkpoints and tests).
    Manual,
}

/// Counters for one log's lifetime (monotonic; survives poisoning).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalLogStats {
    /// Records accepted by [`Wal::append`].
    pub records: u64,
    /// Frame bytes accepted (header + payload).
    pub bytes: u64,
    /// Flushes that reached the file.
    pub flushes: u64,
    /// Syncs that completed.
    pub syncs: u64,
    /// Write faults injected (torn writes + partial flushes + sync
    /// failures).
    pub faults: u64,
}

/// Log errors.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// An injected write fault fired; the log is now poisoned.
    Fault(WriteFault),
    /// The log was poisoned by an earlier fault and must be reopened
    /// (recovery truncates the torn tail).
    Poisoned,
    /// The file does not start with [`WAL_MAGIC`].
    BadMagic,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o: {e}"),
            WalError::Fault(WriteFault::TornWrite { kept }) => {
                write!(f, "injected torn write ({kept} bytes persisted)")
            }
            WalError::Fault(WriteFault::PartialFlush { kept_records }) => {
                write!(
                    f,
                    "injected partial flush ({kept_records} records persisted)"
                )
            }
            WalError::Fault(WriteFault::SyncFailure) => write!(f, "injected sync failure"),
            WalError::Poisoned => write!(f, "log poisoned by an earlier write fault"),
            WalError::BadMagic => write!(f, "not a wal file (bad magic)"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// An open, appendable log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Next sequence number to assign.
    next_seq: u64,
    policy: FlushPolicy,
    /// Frames accepted but not yet written to the file, with the record
    /// count they represent.
    buffer: Vec<u8>,
    buffered_records: Vec<usize>,
    stats: WalLogStats,
    injector: Option<WriteFaultInjector>,
    /// Monotonic write-op counter feeding the injector's hash streams.
    ops: u64,
    poisoned: bool,
}

/// What a scan of an existing log found.
#[derive(Debug)]
pub struct WalScan {
    /// `base_seq` from the header.
    pub base_seq: u64,
    /// Valid `(seq, record bytes)` payloads in order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Bytes of torn/corrupt tail discarded after the valid prefix.
    pub torn_bytes: u64,
    /// File offset where the valid prefix ends.
    pub valid_len: u64,
    /// Why the scan stopped before a clean end, if it did.
    pub stop: Option<FrameError>,
}

impl Wal {
    /// Creates a fresh log at `path` (truncating any existing file) whose
    /// first record will carry sequence `base_seq`.
    pub fn create(
        path: &Path,
        base_seq: u64,
        policy: FlushPolicy,
        injector: Option<WriteFaultInjector>,
    ) -> Result<Wal, WalError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(WAL_HEADER);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&base_seq.to_le_bytes());
        file.write_all(&header)?;
        file.sync_all()?;
        sync_parent_dir(path)?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            next_seq: base_seq,
            policy,
            buffer: Vec::new(),
            buffered_records: Vec::new(),
            stats: WalLogStats::default(),
            injector,
            ops: 0,
            poisoned: false,
        })
    }

    /// Scans an existing log file, returning the longest valid record
    /// prefix and the size of the discarded tail. Corrupt or torn bytes
    /// after the prefix are *reported*, never replayed.
    pub fn scan(path: &Path) -> Result<WalScan, WalError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < WAL_HEADER || &bytes[..8] != WAL_MAGIC {
            return Err(WalError::BadMagic);
        }
        let base_seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let mut records = Vec::new();
        let mut pos = WAL_HEADER;
        let mut valid = WAL_HEADER;
        let mut stop = None;
        loop {
            match read_frame(&bytes, &mut pos) {
                Ok(None) => break,
                Ok(Some(payload)) => {
                    if payload.len() < 8 {
                        stop = Some(FrameError::BadCrc);
                        break;
                    }
                    let seq = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
                    if seq != base_seq + records.len() as u64 {
                        // A sequence gap means these frames belong to a
                        // different log generation; stop replaying.
                        stop = Some(FrameError::BadCrc);
                        break;
                    }
                    records.push((seq, payload[8..].to_vec()));
                    valid = pos;
                }
                Err(e) => {
                    stop = Some(e);
                    break;
                }
            }
        }
        Ok(WalScan {
            base_seq,
            records,
            torn_bytes: (bytes.len() - valid) as u64,
            valid_len: valid as u64,
            stop,
        })
    }

    /// Reopens an existing log for appending, truncating any torn tail
    /// found by [`Wal::scan`]. Returns the log and the scan it recovered
    /// from.
    pub fn open_append(
        path: &Path,
        policy: FlushPolicy,
        injector: Option<WriteFaultInjector>,
    ) -> Result<(Wal, WalScan), WalError> {
        Wal::open_append_at(path, u64::MAX, policy, injector)
    }

    /// Reopens an existing log for appending, keeping only records with
    /// sequence below `keep_below` — everything at or above it, plus any
    /// torn tail, is truncated away. A degraded recovery that stopped
    /// replay early resumes through this (with the report's `next_seq`)
    /// so appends never land behind a record that will not replay.
    pub fn open_append_at(
        path: &Path,
        keep_below: u64,
        policy: FlushPolicy,
        injector: Option<WriteFaultInjector>,
    ) -> Result<(Wal, WalScan), WalError> {
        let scan = Wal::scan(path)?;
        let keep = keep_below
            .saturating_sub(scan.base_seq)
            .min(scan.records.len() as u64) as usize;
        let valid_len = WAL_HEADER as u64
            + scan.records[..keep]
                .iter()
                .map(|(_, rec)| (FRAME_HEADER + 8 + rec.len()) as u64)
                .sum::<u64>();
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        file.sync_all()?;
        let next_seq = scan.base_seq + keep as u64;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                next_seq,
                policy,
                buffer: Vec::new(),
                buffered_records: Vec::new(),
                stats: WalLogStats::default(),
                injector,
                ops: 0,
                poisoned: false,
            },
            scan,
        ))
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WalLogStats {
        self.stats
    }

    /// Records buffered but not yet flushed to the file.
    pub fn buffered_records(&self) -> usize {
        self.buffered_records.len()
    }

    /// Whether an injected fault has poisoned this log handle.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Appends one record payload, assigning it the next sequence number.
    /// Flushes per policy. Returns the record's sequence number.
    pub fn append(&mut self, record: &[u8]) -> Result<u64, WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        let seq = self.next_seq;
        let mut payload = Vec::with_capacity(8 + record.len());
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(record);
        let frame_len = FRAME_HEADER + payload.len();
        let mark = self.buffer.len();
        write_frame(&mut self.buffer, &payload);
        self.buffered_records.push(self.buffer.len() - mark);
        self.next_seq += 1;
        self.stats.records += 1;
        self.stats.bytes += frame_len as u64;
        let due = match self.policy {
            FlushPolicy::EveryRecord => true,
            FlushPolicy::Batch(n) => self.buffered_records.len() >= n.max(1),
            FlushPolicy::Manual => false,
        };
        if due {
            self.flush()?;
        }
        Ok(seq)
    }

    /// Writes the buffered frames to the file and syncs. Injected write
    /// faults fire here; any fault poisons the handle after persisting
    /// exactly the prefix the fault dictates.
    pub fn flush(&mut self) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        if self.buffer.is_empty() {
            return Ok(());
        }
        self.ops += 1;
        let op = self.ops;
        if let Some(inj) = &self.injector {
            if let Err(fault) = inj.check_flush(op, self.buffered_records.len()) {
                let kept = match fault {
                    WriteFault::PartialFlush { kept_records } => kept_records,
                    _ => 0,
                };
                let kept_bytes: usize = self.buffered_records.iter().take(kept).sum();
                self.stats.faults += 1;
                self.poisoned = true;
                let _ = self.file.write_all(&self.buffer[..kept_bytes]);
                let _ = self.file.sync_all();
                return Err(WalError::Fault(fault));
            }
            if let Err(fault) = inj.check_append(op, self.buffer.len()) {
                let kept = match fault {
                    WriteFault::TornWrite { kept } => kept,
                    _ => 0,
                };
                self.stats.faults += 1;
                self.poisoned = true;
                let _ = self.file.write_all(&self.buffer[..kept]);
                let _ = self.file.sync_all();
                return Err(WalError::Fault(fault));
            }
        }
        // A real write or sync failure (ENOSPC, EIO) leaves the file in
        // an unknown partially-written state; retrying the buffer later
        // would append duplicate bytes after that unknown prefix and
        // corrupt everything behind them. Poison the handle exactly as
        // an injected fault would — the owner must reopen, and reopening
        // truncates back to the last whole frame.
        if let Err(e) = self.file.write_all(&self.buffer) {
            self.poisoned = true;
            return Err(WalError::Io(e));
        }
        self.stats.flushes += 1;
        if let Some(inj) = &self.injector {
            if let Err(fault) = inj.check_sync(op) {
                // Bytes reached the file but the sync "failed": the
                // caller must treat the batch as unacknowledged.
                self.stats.faults += 1;
                self.poisoned = true;
                self.buffer.clear();
                self.buffered_records.clear();
                return Err(WalError::Fault(fault));
            }
        }
        if let Err(e) = self.file.sync_all() {
            self.poisoned = true;
            return Err(WalError::Io(e));
        }
        self.buffer.clear();
        self.buffered_records.clear();
        self.stats.syncs += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::ScratchDir;
    use oodb_fault::WriteFaultConfig;

    #[test]
    fn append_scan_roundtrip() {
        let dir = ScratchDir::new("log-roundtrip").unwrap();
        let path = dir.path().join("wal.oodb");
        let mut wal = Wal::create(&path, 5, FlushPolicy::EveryRecord, None).unwrap();
        for i in 0..10u8 {
            assert_eq!(wal.append(&[i; 9]).unwrap(), 5 + i as u64);
        }
        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.base_seq, 5);
        assert_eq!(scan.records.len(), 10);
        assert_eq!(scan.torn_bytes, 0);
        assert!(scan.stop.is_none());
        for (i, (seq, rec)) in scan.records.iter().enumerate() {
            assert_eq!(*seq, 5 + i as u64);
            assert_eq!(rec, &vec![i as u8; 9]);
        }
    }

    #[test]
    fn manual_policy_buffers_until_flush() {
        let dir = ScratchDir::new("log-manual").unwrap();
        let path = dir.path().join("wal.oodb");
        let mut wal = Wal::create(&path, 0, FlushPolicy::Manual, None).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        assert_eq!(Wal::scan(&path).unwrap().records.len(), 0, "unflushed");
        wal.flush().unwrap();
        assert_eq!(Wal::scan(&path).unwrap().records.len(), 2);
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let dir = ScratchDir::new("log-torn").unwrap();
        let path = dir.path().join("wal.oodb");
        let mut wal = Wal::create(&path, 0, FlushPolicy::EveryRecord, None).unwrap();
        wal.append(b"keep me").unwrap();
        wal.append(b"also keep").unwrap();
        // Simulate a torn write: append raw garbage past the valid end.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; 5]).unwrap();
        drop(f);
        let (mut wal2, scan) = Wal::open_append(&path, FlushPolicy::EveryRecord, None).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_bytes, 5);
        assert_eq!(scan.stop, Some(FrameError::Truncated));
        // The truncated log accepts appends at the right sequence.
        assert_eq!(wal2.append(b"three").unwrap(), 2);
        let rescan = Wal::scan(&path).unwrap();
        assert_eq!(rescan.records.len(), 3);
        assert_eq!(rescan.torn_bytes, 0);
    }

    #[test]
    fn open_append_at_truncates_unkept_records() {
        let dir = ScratchDir::new("log-keep").unwrap();
        let path = dir.path().join("wal.oodb");
        let mut wal = Wal::create(&path, 3, FlushPolicy::EveryRecord, None).unwrap();
        for i in 0..5u8 {
            wal.append(&[i; 6]).unwrap();
        }
        drop(wal);
        // Keep only sequences below 5: records 3 and 4 survive, 5..8 go.
        let (mut wal2, scan) =
            Wal::open_append_at(&path, 5, FlushPolicy::EveryRecord, None).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(wal2.next_seq(), 5);
        assert_eq!(wal2.append(b"new").unwrap(), 5);
        let rescan = Wal::scan(&path).unwrap();
        assert_eq!(rescan.records.len(), 3);
        assert_eq!(rescan.records.last().unwrap().0, 5);
        assert_eq!(rescan.torn_bytes, 0);
    }

    #[test]
    fn real_write_error_poisons_the_handle() {
        let dir = ScratchDir::new("log-io-poison").unwrap();
        let path = dir.path().join("wal.oodb");
        let mut wal = Wal::create(&path, 0, FlushPolicy::Manual, None).unwrap();
        wal.append(b"buffered").unwrap();
        // Swap in a read-only handle: the flush's write_all now fails
        // with a real (non-injected) I/O error, which must poison the
        // handle exactly as an injected fault would.
        wal.file = File::open(&path).unwrap();
        assert!(matches!(wal.flush().unwrap_err(), WalError::Io(_)));
        assert!(wal.poisoned());
        assert!(matches!(wal.append(b"x").unwrap_err(), WalError::Poisoned));
    }

    #[test]
    fn injected_partial_flush_persists_strict_prefix_and_poisons() {
        let dir = ScratchDir::new("log-fault").unwrap();
        let path = dir.path().join("wal.oodb");
        let inj = WriteFaultInjector::new(WriteFaultConfig {
            partial_flush_rate: 1.0,
            ..WriteFaultConfig::default()
        });
        let mut wal = Wal::create(&path, 0, FlushPolicy::Manual, Some(inj)).unwrap();
        for i in 0..4u8 {
            wal.append(&[i; 20]).unwrap();
        }
        let err = wal.flush().unwrap_err();
        assert!(matches!(
            err,
            WalError::Fault(WriteFault::PartialFlush { .. })
        ));
        assert!(wal.poisoned());
        assert!(matches!(wal.append(b"x").unwrap_err(), WalError::Poisoned));
        // The persisted prefix is a strict subset of the 4 records and
        // scans cleanly (no corrupt bytes — partial flush loses whole
        // frames from the tail only here; torn writes cover mid-frame).
        let scan = Wal::scan(&path).unwrap();
        assert!(scan.records.len() < 4);
    }

    #[test]
    fn injected_torn_write_leaves_recoverable_prefix() {
        let dir = ScratchDir::new("log-torn-inject").unwrap();
        let path = dir.path().join("wal.oodb");
        let inj = WriteFaultInjector::new(WriteFaultConfig {
            torn_write_rate: 1.0,
            seed: 42,
            ..WriteFaultConfig::default()
        });
        let mut wal = Wal::create(&path, 0, FlushPolicy::Manual, Some(inj)).unwrap();
        for i in 0..6u8 {
            wal.append(&[i; 40]).unwrap();
        }
        let err = wal.flush().unwrap_err();
        assert!(matches!(err, WalError::Fault(WriteFault::TornWrite { .. })));
        // Reopen recovers: whatever whole frames survived replay, the
        // torn remainder is truncated.
        let (wal2, scan) = Wal::open_append(&path, FlushPolicy::Manual, None).unwrap();
        assert!(scan.records.len() < 6);
        assert_eq!(wal2.next_seq(), scan.records.len() as u64);
    }
}
