//! Replay, checkpointing of live stores, and the durable session.
//!
//! The single most load-bearing function here is [`apply_record`]: the
//! live write path appends a record and then applies it through this
//! function; recovery replays the persisted records through the *same*
//! function. Replayed state therefore matches applied state by
//! construction — there is no second interpretation of a record to drift.
//!
//! Recovery semantics (redo-only): load the checkpoint if present, then
//! replay the longest valid prefix of the WAL. A torn tail, a corrupt
//! frame, a record that fails to decode, or a record that cannot apply
//! all end the prefix — everything before it is kept, everything after
//! is reported and discarded. Recovery never panics and never applies a
//! record it cannot prove whole.

use crate::checkpoint::{load_checkpoint, write_checkpoint, CheckpointError, CheckpointStats};
use crate::frame::FrameError;
use crate::log::{FlushPolicy, Wal, WalError, WalLogStats};
use crate::record::WalRecord;
use oodb_fault::WriteFaultInjector;
use oodb_object::TypeId;
use oodb_storage::{Store, StoreError};
use std::path::{Path, PathBuf};

/// WAL file name inside a durability directory.
pub const WAL_FILE: &str = "wal.oodb";
/// Checkpoint file name inside a durability directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.oodb";

/// Why a record could not be applied to the store it arrived at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApplyError {
    /// A non-`Genesis` record arrived before any `Genesis`.
    MissingGenesis,
    /// A `Genesis` arrived for an already-initialized store.
    UnexpectedGenesis,
    /// `InsertObjects` named a type outside the schema.
    UnknownType(TypeId),
    /// `InsertObjects` for a type that already owns a region.
    TypeAlreadyPopulated(TypeId),
    /// `InsertObjects` payload was not dense in OID order.
    NotDense,
    /// `SetMembers` named a collection outside the catalog.
    UnknownCollection(u32),
    /// `SetCatalog` changed the collection count (the store's membership
    /// arrays are sized at birth; a reshaping catalog cannot replay).
    CatalogShape {
        /// Collections in the store's current catalog.
        have: usize,
        /// Collections in the arriving catalog.
        got: usize,
    },
    /// The store rejected the mutation (dangling reference during index
    /// rebuild or statistics collection over inconsistent data).
    Store(StoreError),
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::MissingGenesis => write!(f, "record precedes genesis"),
            ApplyError::UnexpectedGenesis => write!(f, "second genesis record"),
            ApplyError::UnknownType(t) => write!(f, "insert for unknown type {t:?}"),
            ApplyError::TypeAlreadyPopulated(t) => write!(f, "type {t:?} already populated"),
            ApplyError::NotDense => write!(f, "insert payload not dense in oid order"),
            ApplyError::UnknownCollection(c) => write!(f, "unknown collection index {c}"),
            ApplyError::CatalogShape { have, got } => {
                write!(f, "catalog reshapes collections ({have} -> {got})")
            }
            ApplyError::Store(e) => write!(f, "store rejected replay: {e}"),
        }
    }
}

impl std::error::Error for ApplyError {}

impl From<StoreError> for ApplyError {
    fn from(e: StoreError) -> Self {
        ApplyError::Store(e)
    }
}

/// Applies one record to an optional store slot (`None` until `Genesis`).
/// Every precondition the underlying `Store` would assert is checked here
/// first and surfaced as a typed error — corrupt or out-of-order records
/// must not abort the process.
pub fn apply_record(slot: &mut Option<Store>, rec: &WalRecord) -> Result<(), ApplyError> {
    match rec {
        WalRecord::Genesis { schema, catalog } => {
            if slot.is_some() {
                return Err(ApplyError::UnexpectedGenesis);
            }
            *slot = Some(Store::new(schema.clone(), catalog.clone()));
            Ok(())
        }
        other => {
            let store = slot.as_mut().ok_or(ApplyError::MissingGenesis)?;
            apply_to(store, other)
        }
    }
}

/// Applies a non-`Genesis` record to a live store. The service's durable
/// write path calls this after logging; replay calls it via
/// [`apply_record`].
pub fn apply_to(store: &mut Store, rec: &WalRecord) -> Result<(), ApplyError> {
    match rec {
        WalRecord::Genesis { .. } => Err(ApplyError::UnexpectedGenesis),
        WalRecord::InsertObjects {
            ty,
            obj_bytes,
            objects,
        } => {
            if ty.index() >= store.schema().type_count() {
                return Err(ApplyError::UnknownType(*ty));
            }
            if store.has_region(*ty) {
                return Err(ApplyError::TypeAlreadyPopulated(*ty));
            }
            for (i, o) in objects.iter().enumerate() {
                if o.oid != oodb_object::Oid::new(*ty, i as u32) {
                    return Err(ApplyError::NotDense);
                }
            }
            store.insert_objects(*ty, objects.clone(), *obj_bytes);
            Ok(())
        }
        WalRecord::SetMembers { coll, oids } => {
            if coll.index() >= store.catalog().collections().count() {
                return Err(ApplyError::UnknownCollection(coll.index() as u32));
            }
            store.set_members(*coll, oids.clone());
            Ok(())
        }
        WalRecord::SetCatalog { catalog } => {
            let have = store.catalog().collections().count();
            let got = catalog.collections().count();
            if have != got {
                return Err(ApplyError::CatalogShape { have, got });
            }
            store.set_catalog(catalog.clone());
            Ok(())
        }
        WalRecord::BuildIndexes { bump_epoch } => {
            store.try_rebuild_indexes(*bump_epoch)?;
            Ok(())
        }
        WalRecord::StatsRefresh { buckets } => {
            let cat = store.try_collect_statistics(&[], *buckets as usize)?;
            store.set_catalog(cat);
            store.try_rebuild_indexes(true)?;
            Ok(())
        }
    }
}

/// The compacted record stream that rebuilds `store` exactly: genesis at
/// the current catalog (and epoch), per-type inserts in original
/// page-allocation order, memberships, and an epoch-preserving index
/// materialization.
pub fn checkpoint_records(store: &Store) -> Vec<WalRecord> {
    let mut recs = vec![WalRecord::Genesis {
        schema: store.schema().clone(),
        catalog: store.catalog().clone(),
    }];
    let mut populated: Vec<TypeId> = store
        .schema()
        .types()
        .map(|(id, _)| id)
        .filter(|&t| store.has_region(t))
        .collect();
    populated.sort_by_key(|&t| store.region_first_page(t).expect("has_region"));
    for ty in populated {
        recs.push(WalRecord::InsertObjects {
            ty,
            obj_bytes: store.region_obj_bytes(ty).expect("has_region"),
            objects: store.objects_of(ty).to_vec(),
        });
    }
    for (coll, _) in store.catalog().collections() {
        let members = store.members(coll);
        if !members.is_empty() {
            recs.push(WalRecord::SetMembers {
                coll,
                oids: members.to_vec(),
            });
        }
    }
    if store.indexes_built() {
        recs.push(WalRecord::BuildIndexes { bump_epoch: false });
    }
    recs
}

/// A content fingerprint of the store's logical state: objects, members,
/// catalog epoch, and whether indexes are materialized. Page numbers and
/// buffer-pool state are deliberately excluded — two stores with equal
/// digests answer every query identically.
pub fn store_digest(store: &Store) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let mut scratch = Vec::new();
    for (ty, _) in store.schema().types() {
        eat(&(store.population(ty) as u64).to_le_bytes());
        for obj in store.objects_of(ty) {
            scratch.clear();
            oodb_storage::codec::encode_object(obj, &mut scratch);
            eat(&scratch);
        }
    }
    for (coll, _) in store.catalog().collections() {
        eat(&(store.members(coll).len() as u64).to_le_bytes());
        for o in store.members(coll) {
            eat(&o.as_u64().to_le_bytes());
        }
    }
    eat(&store.catalog().stats_epoch().to_le_bytes());
    eat(&store.catalog().index_set_hash().to_le_bytes());
    eat(&[store.indexes_built() as u8]);
    h
}

/// Errors establishing or operating a durable session (distinct from
/// recovery, which degrades instead of failing where it can).
#[derive(Debug)]
pub enum SessionError {
    /// Checkpoint write/load failed.
    Checkpoint(CheckpointError),
    /// Log append/flush/create failed.
    Wal(WalError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Checkpoint(e) => write!(f, "{e}"),
            SessionError::Wal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<CheckpointError> for SessionError {
    fn from(e: CheckpointError) -> Self {
        SessionError::Checkpoint(e)
    }
}

impl From<WalError> for SessionError {
    fn from(e: WalError) -> Self {
        SessionError::Wal(e)
    }
}

/// An active durability session: a checkpoint on disk plus an appendable
/// log. Owned by whoever mutates the store (the query service); queries
/// never touch it.
#[derive(Debug)]
pub struct WalSession {
    dir: PathBuf,
    wal: Wal,
    policy: FlushPolicy,
    injector: Option<WriteFaultInjector>,
    /// Stats of the most recent checkpoint written by this session.
    last_checkpoint: CheckpointStats,
    /// Log records folded into checkpoints over this session's lifetime
    /// (compaction effectiveness).
    compacted_records: u64,
}

impl WalSession {
    /// Starts durability for `store` in `dir`: writes a full checkpoint
    /// and opens a fresh log at its base sequence.
    ///
    /// A prior log in the directory (the recover-then-re-enable path)
    /// pins the base sequence: the new checkpoint is written at that
    /// log's end sequence, not 0, so a crash between the checkpoint
    /// rename and the log truncation below leaves every stale record
    /// strictly under the checkpoint's base — re-recovery skips them
    /// instead of replaying them on top of the full snapshot (or, with
    /// a compacted old log whose base exceeds 0, hard-failing with a
    /// generation mismatch). This is the same race
    /// [`WalSession::checkpoint`] closes with `wal.next_seq()`.
    pub fn create(
        dir: &Path,
        store: &Store,
        policy: FlushPolicy,
        injector: Option<WriteFaultInjector>,
    ) -> Result<WalSession, SessionError> {
        std::fs::create_dir_all(dir).map_err(WalError::Io)?;
        let wal_path = dir.join(WAL_FILE);
        let base = match Wal::scan(&wal_path) {
            Ok(scan) => scan.base_seq + scan.records.len() as u64,
            // No prior log (or an unreadable one, which recovery treats
            // as a zero-record torn tail): nothing can replay, base 0.
            Err(_) => 0,
        };
        let recs = checkpoint_records(store);
        let last_checkpoint = write_checkpoint(&dir.join(CHECKPOINT_FILE), base, &recs)?;
        let wal = Wal::create(&wal_path, base, policy, injector.clone())?;
        Ok(WalSession {
            dir: dir.to_path_buf(),
            wal,
            policy,
            injector,
            last_checkpoint,
            compacted_records: 0,
        })
    }

    /// Resumes a durability session over an existing directory after
    /// [`recover`], truncating the log to the sequence recovery actually
    /// applied (the report's `next_seq`). A degraded recovery stops at
    /// the first record that fails to decode or apply; seq-valid frames
    /// *after* that point must not stay in the log, or records appended
    /// by the resumed session would sit behind a poison record and never
    /// replay. Returns the session and the log bytes discarded (torn
    /// tail plus unapplied records).
    pub fn resume(
        dir: &Path,
        applied_next_seq: u64,
        policy: FlushPolicy,
        injector: Option<WriteFaultInjector>,
    ) -> Result<(WalSession, u64), SessionError> {
        let (wal, scan) = Wal::open_append_at(
            &dir.join(WAL_FILE),
            applied_next_seq,
            policy,
            injector.clone(),
        )?;
        let kept = (wal.next_seq() - scan.base_seq) as usize;
        let dropped_records: u64 = scan.records[kept..]
            .iter()
            .map(|(_, rec)| (crate::frame::FRAME_HEADER + 8 + rec.len()) as u64)
            .sum();
        Ok((
            WalSession {
                dir: dir.to_path_buf(),
                wal,
                policy,
                injector,
                last_checkpoint: CheckpointStats::default(),
                compacted_records: 0,
            },
            scan.torn_bytes + dropped_records,
        ))
    }

    /// The session directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The flush policy appends are acknowledged under.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Appends one record; returns its sequence number. The caller
    /// applies the record to its store only after this returns `Ok` —
    /// log-then-apply.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, WalError> {
        self.wal.append(&rec.encode())
    }

    /// Forces buffered records to disk (used by `FlushPolicy::Manual`
    /// and at clean shutdown).
    pub fn flush(&mut self) -> Result<(), WalError> {
        self.wal.flush()
    }

    /// Compacts: writes a fresh checkpoint of `store` and truncates the
    /// log to empty at the new base sequence. `store` must reflect every
    /// acknowledged record (it does, under log-then-apply).
    pub fn checkpoint(&mut self, store: &Store) -> Result<CheckpointStats, SessionError> {
        self.wal.flush()?;
        let base = self.wal.next_seq();
        let folded = self.wal.stats().records;
        let recs = checkpoint_records(store);
        let stats = write_checkpoint(&self.dir.join(CHECKPOINT_FILE), base, &recs)?;
        // A crash between the rename above and the create below is safe:
        // recovery skips log records below the checkpoint's base.
        self.wal = Wal::create(
            &self.dir.join(WAL_FILE),
            base,
            self.policy,
            self.injector.clone(),
        )?;
        self.last_checkpoint = stats;
        self.compacted_records += folded;
        Ok(stats)
    }

    /// Log counters.
    pub fn wal_stats(&self) -> WalLogStats {
        self.wal.stats()
    }

    /// Stats of the most recent checkpoint this session wrote.
    pub fn last_checkpoint(&self) -> CheckpointStats {
        self.last_checkpoint
    }

    /// Records folded into checkpoints over this session's lifetime.
    pub fn compacted_records(&self) -> u64 {
        self.compacted_records
    }

    /// Records appended but not yet flushed.
    pub fn buffered_records(&self) -> usize {
        self.wal.buffered_records()
    }

    /// The next sequence number the log will assign.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Whether an injected write fault poisoned the log handle.
    pub fn poisoned(&self) -> bool {
        self.wal.poisoned()
    }
}

/// What recovery found and did.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Records replayed from the checkpoint.
    pub checkpoint_records: u64,
    /// Log records replayed after the checkpoint.
    pub replayed_records: u64,
    /// Log records skipped because the checkpoint already covered them
    /// (crash between checkpoint rename and log reset).
    pub skipped_records: u64,
    /// Torn/corrupt tail bytes discarded from the log.
    pub torn_tail_bytes: u64,
    /// The sequence number the next appended record should carry.
    pub next_seq: u64,
    /// Why replay stopped before the log's clean end, if it did
    /// (frame corruption, record decode failure, or apply failure).
    pub stopped: Option<String>,
}

/// Recovery failures. Only states that cannot yield *any* consistent
/// store error out; torn tails and trailing garbage degrade into the
/// [`RecoveryReport`] instead.
#[derive(Debug)]
pub enum RecoverError {
    /// Filesystem error reading the directory.
    Io(std::io::Error),
    /// The checkpoint file exists but is corrupt (it is written
    /// atomically, so this indicates external damage, not a crash).
    Checkpoint(CheckpointError),
    /// The log's base sequence is ahead of the checkpoint's — the pair
    /// cannot be from the same history.
    Generations {
        /// Checkpoint base sequence.
        checkpoint: u64,
        /// Log base sequence.
        wal: u64,
    },
    /// Neither a checkpoint nor a log `Genesis` was found; there is no
    /// state to recover.
    NoState,
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "recovery i/o: {e}"),
            RecoverError::Checkpoint(e) => write!(f, "{e}"),
            RecoverError::Generations { checkpoint, wal } => write!(
                f,
                "log generation mismatch: checkpoint base {checkpoint}, wal base {wal}"
            ),
            RecoverError::NoState => write!(f, "no durable state in directory"),
        }
    }
}

impl std::error::Error for RecoverError {}

/// Rebuilds a store from a durability directory: checkpoint first, then
/// the longest valid prefix of the log. See the module docs for the
/// exact degradation rules.
pub fn recover(dir: &Path) -> Result<(Store, RecoveryReport), RecoverError> {
    let mut report = RecoveryReport::default();
    let mut slot: Option<Store> = None;
    let ckpt_path = dir.join(CHECKPOINT_FILE);
    let mut base = 0u64;
    if ckpt_path.exists() {
        let (ckpt_base, records) = load_checkpoint(&ckpt_path).map_err(RecoverError::Checkpoint)?;
        for rec in &records {
            apply_record(&mut slot, rec)
                .map_err(|e| RecoverError::Checkpoint(CheckpointError::Corrupt(e.to_string())))?;
        }
        report.checkpoint_records = records.len() as u64;
        base = ckpt_base;
    }
    report.next_seq = base;
    let wal_path = dir.join(WAL_FILE);
    if wal_path.exists() {
        let scan = Wal::scan(&wal_path).map_err(|e| match e {
            WalError::Io(io) => RecoverError::Io(io),
            // Bad magic on the log: treat the whole file as a torn tail
            // of zero valid records — the checkpoint still stands.
            _ => RecoverError::Io(std::io::Error::other("unreadable wal")),
        });
        let scan = match scan {
            Ok(s) => s,
            Err(e) => {
                if ckpt_path.exists() {
                    report.stopped = Some(format!("wal unreadable: {e}"));
                    let store = slot.ok_or(RecoverError::NoState)?;
                    return Ok((store, report));
                }
                return Err(e);
            }
        };
        if scan.base_seq > base {
            return Err(RecoverError::Generations {
                checkpoint: base,
                wal: scan.base_seq,
            });
        }
        report.torn_tail_bytes = scan.torn_bytes;
        match scan.stop {
            // A truncated final frame is the expected crash signature —
            // accounted by `torn_tail_bytes`, not reported as corruption.
            None | Some(FrameError::Truncated) => {}
            Some(stop) => report.stopped = Some(format!("frame: {stop}")),
        }
        for (seq, rec_bytes) in &scan.records {
            if *seq < base {
                report.skipped_records += 1;
                continue;
            }
            let rec = match WalRecord::decode(rec_bytes) {
                Ok(r) => r,
                Err(e) => {
                    report.stopped = Some(format!("decode (seq {seq}): {e}"));
                    break;
                }
            };
            if let Err(e) = apply_record(&mut slot, &rec) {
                report.stopped = Some(format!("apply (seq {seq}, {}): {e}", rec.kind()));
                break;
            }
            report.replayed_records += 1;
            report.next_seq = seq + 1;
        }
    }
    let store = slot.ok_or(RecoverError::NoState)?;
    Ok((store, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::ScratchDir;
    use oodb_storage::{generate_paper_db, GenConfig};

    fn small_store() -> Store {
        let (mut store, _) = generate_paper_db(GenConfig {
            scale_div: 200,
            ..GenConfig::small()
        });
        store.build_indexes();
        store
    }

    #[test]
    fn checkpoint_roundtrip_is_digest_exact() {
        let store = small_store();
        let recs = checkpoint_records(&store);
        let mut slot = None;
        for r in &recs {
            apply_record(&mut slot, r).unwrap();
        }
        let rebuilt = slot.unwrap();
        assert_eq!(store_digest(&store), store_digest(&rebuilt));
        assert_eq!(
            store.catalog().stats_epoch(),
            rebuilt.catalog().stats_epoch(),
            "epoch must replay exactly"
        );
        // Index pages may sit at different page numbers (the original
        // store can have rebuilt indexes more than once), but every data
        // region must land exactly where it was.
        for (ty, _) in store.schema().types() {
            assert_eq!(store.region_first_page(ty), rebuilt.region_first_page(ty));
        }
        assert_eq!(store.indexes_built(), rebuilt.indexes_built());
    }

    #[test]
    fn session_logs_and_recovers_mutations() {
        let dir = ScratchDir::new("session").unwrap();
        let mut store = small_store();
        let mut session =
            WalSession::create(dir.path(), &store, FlushPolicy::EveryRecord, None).unwrap();
        // Log-then-apply a statistics refresh.
        let rec = WalRecord::StatsRefresh { buckets: 16 };
        session.append(&rec).unwrap();
        apply_to(&mut store, &rec).unwrap();

        let (recovered, report) = recover(dir.path()).unwrap();
        assert_eq!(report.replayed_records, 1);
        assert!(report.stopped.is_none());
        assert_eq!(store_digest(&store), store_digest(&recovered));
    }

    #[test]
    fn compaction_folds_log_into_checkpoint() {
        let dir = ScratchDir::new("compact").unwrap();
        let mut store = small_store();
        let mut session =
            WalSession::create(dir.path(), &store, FlushPolicy::EveryRecord, None).unwrap();
        for buckets in [8u32, 16, 32] {
            let rec = WalRecord::StatsRefresh { buckets };
            session.append(&rec).unwrap();
            apply_to(&mut store, &rec).unwrap();
        }
        session.checkpoint(&store).unwrap();
        assert_eq!(session.compacted_records(), 3);
        let (recovered, report) = recover(dir.path()).unwrap();
        assert_eq!(report.replayed_records, 0, "log was compacted away");
        assert_eq!(report.next_seq, 3);
        assert_eq!(store_digest(&store), store_digest(&recovered));
    }

    #[test]
    fn apply_precondition_violations_are_typed() {
        let store = small_store();
        let recs = checkpoint_records(&store);
        let mut slot = None;
        // Non-genesis first.
        assert_eq!(
            apply_record(&mut slot, &WalRecord::BuildIndexes { bump_epoch: true }).unwrap_err(),
            ApplyError::MissingGenesis
        );
        apply_record(&mut slot, &recs[0]).unwrap();
        // Second genesis.
        assert_eq!(
            apply_record(&mut slot, &recs[0]).unwrap_err(),
            ApplyError::UnexpectedGenesis
        );
        // Double insert is an error, not a panic.
        apply_record(&mut slot, &recs[1]).unwrap();
        assert!(matches!(
            apply_record(&mut slot, &recs[1]).unwrap_err(),
            ApplyError::TypeAlreadyPopulated(_)
        ));
    }

    #[test]
    fn recovery_skips_pre_checkpoint_records() {
        // Simulate a crash between checkpoint rename and log reset: the
        // old log still holds records the new checkpoint already covers.
        let dir = ScratchDir::new("ckpt-race").unwrap();
        let mut store = small_store();
        let mut session =
            WalSession::create(dir.path(), &store, FlushPolicy::EveryRecord, None).unwrap();
        let rec = WalRecord::StatsRefresh { buckets: 16 };
        session.append(&rec).unwrap();
        apply_to(&mut store, &rec).unwrap();
        // Write the new checkpoint directly, leaving the old log behind.
        let recs = checkpoint_records(&store);
        write_checkpoint(&dir.path().join(CHECKPOINT_FILE), session.next_seq(), &recs).unwrap();
        let (recovered, report) = recover(dir.path()).unwrap();
        assert_eq!(report.skipped_records, 1);
        assert_eq!(report.replayed_records, 0);
        assert_eq!(store_digest(&store), store_digest(&recovered));
    }

    #[test]
    fn recreate_over_existing_log_survives_crash_before_truncate() {
        // WalSession::create over a directory that already holds a log
        // (recover-then-re-enable) must write its checkpoint at the old
        // log's end sequence. Simulate the crash window between the
        // checkpoint rename and the log truncation by restoring the old
        // log wholesale after create: its records must fall below the
        // new base and be skipped, not replayed on top of the snapshot.
        let dir = ScratchDir::new("recreate-race").unwrap();
        let mut store = small_store();
        let mut session =
            WalSession::create(dir.path(), &store, FlushPolicy::EveryRecord, None).unwrap();
        let rec = WalRecord::StatsRefresh { buckets: 16 };
        session.append(&rec).unwrap();
        apply_to(&mut store, &rec).unwrap();
        drop(session);
        let wal_path = dir.path().join(WAL_FILE);
        let stale_log = std::fs::read(&wal_path).unwrap();
        let session2 =
            WalSession::create(dir.path(), &store, FlushPolicy::EveryRecord, None).unwrap();
        assert_eq!(session2.next_seq(), 1, "base pinned by the old log");
        drop(session2);
        std::fs::write(&wal_path, &stale_log).unwrap();
        let (recovered, report) = recover(dir.path()).unwrap();
        assert_eq!(report.skipped_records, 1, "stale record below the base");
        assert_eq!(report.replayed_records, 0);
        assert!(report.stopped.is_none());
        assert_eq!(
            store_digest(&store),
            store_digest(&recovered),
            "a re-replayed StatsRefresh would bump the epoch and diverge"
        );
    }

    #[test]
    fn resume_truncates_records_recovery_did_not_apply() {
        let dir = ScratchDir::new("resume-degraded").unwrap();
        let mut store = small_store();
        let session =
            WalSession::create(dir.path(), &store, FlushPolicy::EveryRecord, None).unwrap();
        drop(session);
        // Build a log whose middle record cannot decode: replay stops
        // after the first record, stranding the third behind the poison.
        let wal_path = dir.path().join(WAL_FILE);
        let (mut wal, _) = Wal::open_append(&wal_path, FlushPolicy::EveryRecord, None).unwrap();
        let good = WalRecord::StatsRefresh { buckets: 16 };
        wal.append(&good.encode()).unwrap();
        wal.append(&[0xFF; 10]).unwrap();
        wal.append(&good.encode()).unwrap();
        drop(wal);
        apply_to(&mut store, &good).unwrap();

        let (recovered, report) = recover(dir.path()).unwrap();
        assert_eq!(report.replayed_records, 1);
        assert!(report.stopped.is_some(), "decode failure stops replay");
        assert_eq!(report.next_seq, 1);
        assert_eq!(store_digest(&store), store_digest(&recovered));

        // Resume at the applied sequence: the poison record and the
        // stranded one behind it are truncated, so a fresh append lands
        // at seq 1 and replays on the next recovery.
        let (mut resumed, discarded) =
            WalSession::resume(dir.path(), report.next_seq, FlushPolicy::EveryRecord, None)
                .unwrap();
        assert!(discarded > 0);
        assert_eq!(resumed.next_seq(), 1);
        let rec = WalRecord::StatsRefresh { buckets: 32 };
        assert_eq!(resumed.append(&rec).unwrap(), 1);
        let mut store2 = recovered;
        apply_to(&mut store2, &rec).unwrap();
        let (recovered2, report2) = recover(dir.path()).unwrap();
        assert_eq!(report2.replayed_records, 2);
        assert!(report2.stopped.is_none());
        assert_eq!(store_digest(&store2), store_digest(&recovered2));
    }
}
