//! Checkpoint snapshots: a compacted record log written atomically.
//!
//! A checkpoint is not a special page dump — it is the *same* framed
//! record stream the WAL carries, reduced to the minimal sequence that
//! rebuilds the store: one `Genesis` (schema + catalog at its exact
//! statistics epoch), one `InsertObjects` per populated type in original
//! page-allocation order, one `SetMembers` per non-empty collection, and
//! a final `BuildIndexes { bump_epoch: false }` when the live store had
//! materialized indexes. Replaying it through the ordinary apply path
//! (see [`crate::durable::apply_record`]) reproduces page geometry and
//! epoch exactly.
//!
//! File layout: `[magic "OODBCKP1"][base_seq: u64]` + frames (payload =
//! record bytes, no per-record sequence — the file is atomic). `base_seq`
//! is the WAL sequence the snapshot covers up to: the companion log's
//! records below it are already folded in. Writes go to a `.tmp` sibling
//! and rename into place, so a crash leaves either the old checkpoint or
//! the new one, never a torn hybrid.

use crate::frame::{read_frame, write_frame};
use crate::record::WalRecord;
use crate::util::sync_parent_dir;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Checkpoint file magic (8 bytes).
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"OODBCKP1";

/// What `write_checkpoint` produced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Compacted records written.
    pub records: u64,
    /// Total file bytes (header + frames).
    pub bytes: u64,
}

/// Why a checkpoint failed to load. Unlike WAL tails, a checkpoint has no
/// benign torn state — it is written atomically, so any inconsistency is
/// a hard error.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Missing magic or truncated header.
    BadHeader,
    /// A frame or record inside the file failed validation.
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            CheckpointError::BadHeader => write!(f, "not a checkpoint file (bad header)"),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes `records` as a checkpoint covering WAL sequences below
/// `base_seq`, atomically: tmp file, content fsync, rename, then a
/// parent-directory fsync so the rename itself survives power loss —
/// without that last sync the new checkpoint's directory entry can
/// vanish even though its contents were synced.
pub fn write_checkpoint(
    path: &Path,
    base_seq: u64,
    records: &[WalRecord],
) -> Result<CheckpointStats, CheckpointError> {
    let mut buf = Vec::new();
    buf.extend_from_slice(CHECKPOINT_MAGIC);
    buf.extend_from_slice(&base_seq.to_le_bytes());
    for rec in records {
        write_frame(&mut buf, &rec.encode());
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    Ok(CheckpointStats {
        records: records.len() as u64,
        bytes: buf.len() as u64,
    })
}

/// Loads a checkpoint: `(base_seq, records)`. Total — corrupt inputs are
/// typed errors, never panics.
pub fn load_checkpoint(path: &Path) -> Result<(u64, Vec<WalRecord>), CheckpointError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 16 || &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadHeader);
    }
    let base_seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let mut records = Vec::new();
    let mut pos = 16;
    loop {
        match read_frame(&bytes, &mut pos) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                let rec = WalRecord::decode(payload)
                    .map_err(|e| CheckpointError::Corrupt(format!("record: {e}")))?;
                records.push(rec);
            }
            Err(e) => return Err(CheckpointError::Corrupt(format!("frame: {e}"))),
        }
    }
    Ok((base_seq, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::ScratchDir;

    #[test]
    fn roundtrip_and_atomic_replace() {
        let dir = ScratchDir::new("ckpt").unwrap();
        let path = dir.path().join("checkpoint.oodb");
        let recs = vec![
            WalRecord::BuildIndexes { bump_epoch: false },
            WalRecord::StatsRefresh { buckets: 64 },
        ];
        let stats = write_checkpoint(&path, 17, &recs).unwrap();
        assert_eq!(stats.records, 2);
        let (base, back) = load_checkpoint(&path).unwrap();
        assert_eq!(base, 17);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].encode(), recs[0].encode());
        // Overwrite with a new generation; the old one fully disappears.
        write_checkpoint(&path, 99, &recs[..1]).unwrap();
        let (base2, back2) = load_checkpoint(&path).unwrap();
        assert_eq!((base2, back2.len()), (99, 1));
    }

    #[test]
    fn corruption_is_a_typed_error() {
        let dir = ScratchDir::new("ckpt-corrupt").unwrap();
        let path = dir.path().join("checkpoint.oodb");
        write_checkpoint(&path, 0, &[WalRecord::StatsRefresh { buckets: 8 }]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Corrupt(_))
        ));
    }
}
