//! # `oodb-wal` — write-ahead logging and crash recovery
//!
//! The SIGMOD '93 Open OODB prototype ran entirely in memory; this crate
//! gives the reproduction the durability layer the paper's system left to
//! its Exodus storage manager. The design is deliberately small:
//!
//! * **Typed logical records** ([`record::WalRecord`]) mirror the store's
//!   mutation surface — `Genesis`, `InsertObjects` (carried as raw 4 KiB
//!   page images via the storage codec), `SetMembers`, `SetCatalog`,
//!   `BuildIndexes`, `StatsRefresh` — so replay drives the *same* store
//!   methods the live path uses.
//! * **CRC-framed log** ([`log::Wal`]): `[len][crc32][seq + record]`
//!   frames appended to a real file under a [`log::FlushPolicy`]. A scan
//!   accepts the longest valid prefix; a torn tail is truncated, a CRC
//!   mismatch stops replay.
//! * **Atomic checkpoints** ([`checkpoint`]): the log compacted to the
//!   minimal record stream that rebuilds the store, written tmp+rename.
//! * **Redo-only recovery** ([`durable::recover`]): checkpoint, then the
//!   longest valid log prefix. Never panics, never applies a record it
//!   cannot prove whole.
//!
//! Fault injection from `oodb-fault` extends to the write path: torn
//! writes, partial flushes, and sync failures poison the log handle and
//! force re-open through recovery, which is exactly what the crash
//! harness (`tests/durability.rs`) exercises at every kill point.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod crc;
pub mod durable;
pub mod frame;
pub mod log;
pub mod record;
pub mod util;

pub use checkpoint::{
    load_checkpoint, write_checkpoint, CheckpointError, CheckpointStats, CHECKPOINT_MAGIC,
};
pub use crc::crc32;
pub use durable::{
    apply_record, apply_to, checkpoint_records, recover, store_digest, ApplyError, RecoverError,
    RecoveryReport, SessionError, WalSession, CHECKPOINT_FILE, WAL_FILE,
};
pub use frame::{frame_boundaries, read_frame, write_frame, FrameError, FRAME_HEADER};
pub use log::{FlushPolicy, Wal, WalError, WalLogStats, WalScan, WAL_HEADER, WAL_MAGIC};
pub use record::{DecodeError, WalRecord};
pub use util::ScratchDir;
