//! Typed log records and their binary codec.
//!
//! One [`WalRecord`] per store mutation. The codec is *canonical*: map-
//! backed catalog state (ref domains, fan-outs, histograms) serializes in
//! sorted key order, so `encode(decode(bytes)) == bytes` for every valid
//! encoding — the property the proptest suite round-trips on (neither
//! [`oodb_object::Schema`] nor [`oodb_object::Catalog`] implements
//! `PartialEq`, so re-encoding *is* the equality check).
//!
//! Object payloads reuse the storage crate's page codec: an
//! `InsertObjects` record carries the collection packed through
//! [`oodb_storage::pack_collection`] as raw 4 KB page images, restored on
//! decode via [`Page::from_bytes`] + [`oodb_storage::unpack_pages`] — the
//! exact bytes a paged store would persist.
//!
//! Decoding is total and allocation-bounded: every length is checked
//! against the remaining input before use, unknown tags and inconsistent
//! structures (duplicate names, dangling ids, malformed histograms) are
//! typed errors, and nothing panics on arbitrary input.

use oodb_object::{
    AttrType, Catalog, CollectionDef, CollectionId, CollectionKind, FieldId, FieldKind, Histogram,
    IndexDef, Object, Oid, Schema, TypeId, Value,
};
use oodb_storage::codec::{decode_value, encode_value};
use oodb_storage::{pack_collection, unpack_pages, CodecError, Page, PAGE_BYTES};

/// Why a record failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the structure was complete.
    UnexpectedEof,
    /// Unknown record or enum tag.
    BadTag(u8),
    /// A length prefix exceeds the remaining input (corrupt, possibly
    /// adversarial — rejected before allocating).
    BadLength,
    /// A string payload was not UTF-8.
    BadUtf8,
    /// An id referenced a type/collection/field that the same record's
    /// context does not define.
    DanglingId,
    /// A schema or catalog carried duplicate names (would panic the
    /// builders if replayed).
    Duplicate,
    /// Histogram parts violate `Histogram::from_parts` invariants.
    BadHistogram,
    /// Trailing bytes after a complete record.
    TrailingBytes,
    /// The embedded object-page codec rejected a page.
    Page(CodecError),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "record truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown tag {t:#x}"),
            DecodeError::BadLength => write!(f, "length prefix exceeds input"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in name"),
            DecodeError::DanglingId => write!(f, "id references an undefined entity"),
            DecodeError::Duplicate => write!(f, "duplicate name in schema/catalog"),
            DecodeError::BadHistogram => write!(f, "histogram parts violate invariants"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after record"),
            DecodeError::Page(e) => write!(f, "object page codec: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<CodecError> for DecodeError {
    fn from(e: CodecError) -> Self {
        DecodeError::Page(e)
    }
}

/// One logged store mutation. The live write path appends these *before*
/// applying them; recovery replays the same records through the same
/// apply function (`crate::durable::apply_record`), so replayed state
/// matches applied state by construction.
#[derive(Clone, Debug)]
pub enum WalRecord {
    /// Database birth (or checkpoint base): schema + catalog, including
    /// the catalog's exact statistics epoch.
    Genesis {
        /// The schema (types and fields, reconstructed id-exact).
        schema: Schema,
        /// The catalog, carrying collections, indexes, statistics, and
        /// the statistics epoch at logging time.
        catalog: Catalog,
    },
    /// Bulk population of one type's page region
    /// ([`oodb_storage::Store::insert_objects`]).
    InsertObjects {
        /// The populated type.
        ty: TypeId,
        /// Per-object byte size the region is packed at (page-geometry
        /// fidelity on replay).
        obj_bytes: u32,
        /// The instances, dense in OID order.
        objects: Vec<Object>,
    },
    /// Collection membership assignment
    /// ([`oodb_storage::Store::set_members`]).
    SetMembers {
        /// The collection.
        coll: CollectionId,
        /// Members in storage order.
        oids: Vec<Oid>,
    },
    /// Catalog replacement ([`oodb_storage::Store::set_catalog`] — index
    /// availability sweeps).
    SetCatalog {
        /// The replacement catalog.
        catalog: Catalog,
    },
    /// Index (re)materialization
    /// ([`oodb_storage::Store::try_rebuild_indexes`]). Checkpoints log it
    /// with `bump_epoch = false` so replay lands on the checkpointed
    /// epoch exactly; live rebuilds log `true`.
    BuildIndexes {
        /// Whether the statistics epoch advances.
        bump_epoch: bool,
    },
    /// Statistics refresh (histogram collection + catalog swap + index
    /// rebuild, the `QueryService::refresh_statistics` composite).
    StatsRefresh {
        /// Equi-depth bucket count.
        buckets: u32,
    },
}

const TAG_GENESIS: u8 = 0x01;
const TAG_INSERT_OBJECTS: u8 = 0x02;
const TAG_SET_MEMBERS: u8 = 0x03;
const TAG_SET_CATALOG: u8 = 0x04;
const TAG_BUILD_INDEXES: u8 = 0x05;
const TAG_STATS_REFRESH: u8 = 0x06;

// ---- primitive readers ----------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// A count prefix that the remaining input must be able to satisfy at
    /// `min_item_bytes` each — rejects corrupt lengths before `Vec`
    /// allocation can amplify them.
    fn count(&mut self, min_item_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_item_bytes.max(1)) > self.buf.len() - self.pos {
            return Err(DecodeError::BadLength);
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(DecodeError::BadLength);
        }
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| DecodeError::BadUtf8)
    }

    fn value(&mut self) -> Result<Value, DecodeError> {
        decode_value(self.buf, &mut self.pos).map_err(|e| match e {
            CodecError::UnexpectedEof => DecodeError::UnexpectedEof,
            CodecError::BadTag(t) => DecodeError::BadTag(t),
            CodecError::BadUtf8 => DecodeError::BadUtf8,
            other => DecodeError::Page(other),
        })
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

// ---- schema codec ---------------------------------------------------------

fn encode_schema(schema: &Schema, out: &mut Vec<u8>) {
    out.extend_from_slice(&(schema.type_count() as u32).to_le_bytes());
    for (_, t) in schema.types() {
        put_str(out, &t.name);
        match t.supertype {
            None => out.push(0),
            Some(s) => {
                out.push(1);
                out.extend_from_slice(&(s.index() as u32).to_le_bytes());
            }
        }
    }
    out.extend_from_slice(&(schema.field_count() as u32).to_le_bytes());
    for i in 0..schema.field_count() {
        let f = schema.field(FieldId::from_index(i));
        out.extend_from_slice(&(f.owner.index() as u32).to_le_bytes());
        put_str(out, &f.name);
        match f.kind {
            FieldKind::Attr(a) => {
                out.push(0);
                out.push(match a {
                    AttrType::Int => 0,
                    AttrType::Float => 1,
                    AttrType::Str => 2,
                    AttrType::Bool => 3,
                    AttrType::Date => 4,
                });
            }
            FieldKind::Ref(t) => {
                out.push(1);
                out.extend_from_slice(&(t.index() as u32).to_le_bytes());
            }
            FieldKind::RefSet(t) => {
                out.push(2);
                out.extend_from_slice(&(t.index() as u32).to_le_bytes());
            }
        }
    }
}

fn decode_schema(r: &mut Reader<'_>) -> Result<Schema, DecodeError> {
    let n_types = r.count(5)?;
    let mut types: Vec<(String, Option<TypeId>)> = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        let name = r.str()?;
        let supertype = match r.u8()? {
            0 => None,
            1 => {
                let raw = r.u32()? as usize;
                if raw >= n_types {
                    return Err(DecodeError::DanglingId);
                }
                Some(TypeId::from_index(raw))
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        if types.iter().any(|(n, _)| n == &name) {
            return Err(DecodeError::Duplicate);
        }
        types.push((name, supertype));
    }
    let n_fields = r.count(10)?;
    let mut fields: Vec<(TypeId, String, FieldKind)> = Vec::with_capacity(n_fields);
    for _ in 0..n_fields {
        let owner_raw = r.u32()? as usize;
        if owner_raw >= n_types {
            return Err(DecodeError::DanglingId);
        }
        let owner = TypeId::from_index(owner_raw);
        let name = r.str()?;
        let kind = match r.u8()? {
            0 => FieldKind::Attr(match r.u8()? {
                0 => AttrType::Int,
                1 => AttrType::Float,
                2 => AttrType::Str,
                3 => AttrType::Bool,
                4 => AttrType::Date,
                t => return Err(DecodeError::BadTag(t)),
            }),
            tag @ (1 | 2) => {
                let raw = r.u32()? as usize;
                if raw >= n_types {
                    return Err(DecodeError::DanglingId);
                }
                let t = TypeId::from_index(raw);
                if tag == 1 {
                    FieldKind::Ref(t)
                } else {
                    FieldKind::RefSet(t)
                }
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        if fields.iter().any(|(o, n, _)| *o == owner && n == &name) {
            return Err(DecodeError::Duplicate);
        }
        fields.push((owner, name, kind));
    }
    // Replay through the builder in declaration order: ids come out dense
    // and identical to the encoded schema's (the `field_count` invariant).
    let mut b = Schema::builder();
    for (name, supertype) in &types {
        b.add_type(name, *supertype);
    }
    for (owner, name, kind) in &fields {
        b.add_field(*owner, name, *kind);
    }
    Ok(b.build())
}

// ---- catalog codec --------------------------------------------------------

fn encode_catalog(catalog: &Catalog, out: &mut Vec<u8>) {
    out.extend_from_slice(&catalog.stats_epoch().to_le_bytes());

    let colls: Vec<_> = catalog.collections().collect();
    out.extend_from_slice(&(colls.len() as u32).to_le_bytes());
    for (_, c) in &colls {
        put_str(out, &c.name);
        out.extend_from_slice(&(c.elem_type.index() as u32).to_le_bytes());
        out.push(match c.kind {
            CollectionKind::UserSet => 0,
            CollectionKind::Extent => 1,
        });
        out.extend_from_slice(&c.cardinality.to_le_bytes());
        out.extend_from_slice(&c.obj_bytes.to_le_bytes());
    }

    let idxs: Vec<_> = catalog.indexes().collect();
    out.extend_from_slice(&(idxs.len() as u32).to_le_bytes());
    for (_, d) in &idxs {
        put_str(out, &d.name);
        out.extend_from_slice(&(d.collection.index() as u32).to_le_bytes());
        out.extend_from_slice(&(d.path.len() as u32).to_le_bytes());
        for f in &d.path {
            out.extend_from_slice(&(f.index() as u32).to_le_bytes());
        }
        out.extend_from_slice(&(d.key.index() as u32).to_le_bytes());
        out.extend_from_slice(&d.distinct_keys.to_le_bytes());
        out.push(d.clustered as u8);
    }

    // Map-backed state in sorted key order (canonical form).
    let mut domains: Vec<_> = catalog.ref_domains().collect();
    domains.sort();
    out.extend_from_slice(&(domains.len() as u32).to_le_bytes());
    for (f, c) in domains {
        out.extend_from_slice(&(f.index() as u32).to_le_bytes());
        out.extend_from_slice(&(c.index() as u32).to_le_bytes());
    }

    let mut fanouts: Vec<_> = catalog.fanouts().collect();
    fanouts.sort_by_key(|(f, _)| *f);
    out.extend_from_slice(&(fanouts.len() as u32).to_le_bytes());
    for (f, v) in fanouts {
        out.extend_from_slice(&(f.index() as u32).to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }

    let mut hists: Vec<_> = catalog.histograms().collect();
    hists.sort_by_key(|((c, p, k), _)| (*c, p.to_vec(), *k));
    out.extend_from_slice(&(hists.len() as u32).to_le_bytes());
    for ((c, p, k), h) in hists {
        out.extend_from_slice(&(c.index() as u32).to_le_bytes());
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        for f in p {
            out.extend_from_slice(&(f.index() as u32).to_le_bytes());
        }
        out.extend_from_slice(&(k.index() as u32).to_le_bytes());
        out.extend_from_slice(&(h.bounds().len() as u32).to_le_bytes());
        for v in h.bounds() {
            encode_value(v, out);
        }
        out.extend_from_slice(&h.total().to_le_bytes());
        out.extend_from_slice(&h.distinct().to_le_bytes());
    }
}

fn decode_catalog(r: &mut Reader<'_>) -> Result<Catalog, DecodeError> {
    let epoch = r.u64()?;
    let mut catalog = Catalog::new();

    let n_colls = r.count(18)?;
    let mut extent_types = Vec::new();
    let mut coll_names = Vec::with_capacity(n_colls);
    for _ in 0..n_colls {
        let name = r.str()?;
        let elem_type = TypeId::from_index(r.u32()? as usize);
        let kind = match r.u8()? {
            0 => CollectionKind::UserSet,
            1 => CollectionKind::Extent,
            t => return Err(DecodeError::BadTag(t)),
        };
        let cardinality = r.u64()?;
        let obj_bytes = r.u32()?;
        if coll_names.contains(&name) {
            return Err(DecodeError::Duplicate);
        }
        if kind == CollectionKind::Extent {
            if extent_types.contains(&elem_type) {
                return Err(DecodeError::Duplicate);
            }
            extent_types.push(elem_type);
        }
        coll_names.push(name.clone());
        catalog.add_collection(CollectionDef {
            name,
            elem_type,
            kind,
            cardinality,
            obj_bytes,
        });
    }

    let n_idxs = r.count(22)?;
    let mut idx_names = Vec::with_capacity(n_idxs);
    for _ in 0..n_idxs {
        let name = r.str()?;
        let coll_raw = r.u32()? as usize;
        if coll_raw >= n_colls {
            return Err(DecodeError::DanglingId);
        }
        let path_len = r.count(4)?;
        let mut path = Vec::with_capacity(path_len);
        for _ in 0..path_len {
            path.push(FieldId::from_index(r.u32()? as usize));
        }
        let key = FieldId::from_index(r.u32()? as usize);
        let distinct_keys = r.u64()?;
        let clustered = match r.u8()? {
            0 => false,
            1 => true,
            t => return Err(DecodeError::BadTag(t)),
        };
        if idx_names.contains(&name) {
            return Err(DecodeError::Duplicate);
        }
        idx_names.push(name.clone());
        catalog.add_index(IndexDef {
            name,
            collection: CollectionId::from_index(coll_raw),
            path,
            key,
            distinct_keys,
            clustered,
        });
    }

    let n_domains = r.count(8)?;
    for _ in 0..n_domains {
        let f = FieldId::from_index(r.u32()? as usize);
        let c_raw = r.u32()? as usize;
        if c_raw >= n_colls {
            return Err(DecodeError::DanglingId);
        }
        catalog.set_ref_domain(f, CollectionId::from_index(c_raw));
    }

    let n_fanouts = r.count(12)?;
    for _ in 0..n_fanouts {
        let f = FieldId::from_index(r.u32()? as usize);
        let v = r.f64()?;
        catalog.set_fanout(f, v);
    }

    let n_hists = r.count(28)?;
    for _ in 0..n_hists {
        let c_raw = r.u32()? as usize;
        if c_raw >= n_colls {
            return Err(DecodeError::DanglingId);
        }
        let path_len = r.count(4)?;
        let mut path = Vec::with_capacity(path_len);
        for _ in 0..path_len {
            path.push(FieldId::from_index(r.u32()? as usize));
        }
        let key = FieldId::from_index(r.u32()? as usize);
        let n_bounds = r.count(1)?;
        let mut bounds = Vec::with_capacity(n_bounds);
        for _ in 0..n_bounds {
            bounds.push(r.value()?);
        }
        let total = r.u64()?;
        let distinct = r.u64()?;
        let h = Histogram::from_parts(bounds, total, distinct).ok_or(DecodeError::BadHistogram)?;
        catalog.set_histogram(CollectionId::from_index(c_raw), path, key, h);
    }

    catalog.raise_stats_epoch_to(epoch);
    Ok(catalog)
}

// ---- record codec ---------------------------------------------------------

impl WalRecord {
    /// Encodes the record to its canonical byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Genesis { schema, catalog } => {
                out.push(TAG_GENESIS);
                encode_schema(schema, &mut out);
                encode_catalog(catalog, &mut out);
            }
            WalRecord::InsertObjects {
                ty,
                obj_bytes,
                objects,
            } => {
                out.push(TAG_INSERT_OBJECTS);
                out.extend_from_slice(&(ty.index() as u32).to_le_bytes());
                out.extend_from_slice(&obj_bytes.to_le_bytes());
                out.extend_from_slice(&(objects.len() as u64).to_le_bytes());
                // Pack through the store's own page codec: the record
                // carries the byte-exact page images a paged store would
                // write for this collection.
                let pages = pack_collection(objects.iter())
                    .expect("objects originating from a store fit its pages");
                out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
                for p in &pages {
                    out.extend_from_slice(p.bytes());
                }
            }
            WalRecord::SetMembers { coll, oids } => {
                out.push(TAG_SET_MEMBERS);
                out.extend_from_slice(&(coll.index() as u32).to_le_bytes());
                out.extend_from_slice(&(oids.len() as u64).to_le_bytes());
                for o in oids {
                    out.extend_from_slice(&o.as_u64().to_le_bytes());
                }
            }
            WalRecord::SetCatalog { catalog } => {
                out.push(TAG_SET_CATALOG);
                encode_catalog(catalog, &mut out);
            }
            WalRecord::BuildIndexes { bump_epoch } => {
                out.push(TAG_BUILD_INDEXES);
                out.push(*bump_epoch as u8);
            }
            WalRecord::StatsRefresh { buckets } => {
                out.push(TAG_STATS_REFRESH);
                out.extend_from_slice(&buckets.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a record from its byte form. Total: arbitrary input yields
    /// a typed error, never a panic, and trailing bytes are rejected.
    pub fn decode(buf: &[u8]) -> Result<WalRecord, DecodeError> {
        let mut r = Reader::new(buf);
        let rec = match r.u8()? {
            TAG_GENESIS => {
                let schema = decode_schema(&mut r)?;
                let catalog = decode_catalog(&mut r)?;
                WalRecord::Genesis { schema, catalog }
            }
            TAG_INSERT_OBJECTS => {
                let ty = TypeId::from_index(r.u32()? as usize);
                let obj_bytes = r.u32()?;
                let n_objects = r.u64()?;
                let n_pages = r.count(PAGE_BYTES)?;
                let mut pages = Vec::with_capacity(n_pages);
                for _ in 0..n_pages {
                    let raw: [u8; PAGE_BYTES] =
                        r.take(PAGE_BYTES)?.try_into().expect("PAGE_BYTES slice");
                    pages.push(Page::from_bytes(raw));
                }
                let objects = unpack_pages(&pages)?;
                if objects.len() as u64 != n_objects {
                    return Err(DecodeError::BadLength);
                }
                WalRecord::InsertObjects {
                    ty,
                    obj_bytes,
                    objects,
                }
            }
            TAG_SET_MEMBERS => {
                let coll = CollectionId::from_index(r.u32()? as usize);
                let n = r.u64()?;
                if n.saturating_mul(8) > (buf.len() - r.pos) as u64 {
                    return Err(DecodeError::BadLength);
                }
                let mut oids = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    oids.push(Oid::from_u64(r.u64()?));
                }
                WalRecord::SetMembers { coll, oids }
            }
            TAG_SET_CATALOG => WalRecord::SetCatalog {
                catalog: decode_catalog(&mut r)?,
            },
            TAG_BUILD_INDEXES => WalRecord::BuildIndexes {
                bump_epoch: match r.u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(DecodeError::BadTag(t)),
                },
            },
            TAG_STATS_REFRESH => WalRecord::StatsRefresh { buckets: r.u32()? },
            t => return Err(DecodeError::BadTag(t)),
        };
        r.finish()?;
        Ok(rec)
    }

    /// Short kind name for logs and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::Genesis { .. } => "genesis",
            WalRecord::InsertObjects { .. } => "insert-objects",
            WalRecord::SetMembers { .. } => "set-members",
            WalRecord::SetCatalog { .. } => "set-catalog",
            WalRecord::BuildIndexes { .. } => "build-indexes",
            WalRecord::StatsRefresh { .. } => "stats-refresh",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_object::paper::paper_model;

    fn sample_records() -> Vec<WalRecord> {
        let m = paper_model();
        let objects: Vec<Object> = (0..40)
            .map(|i| {
                Object::new(
                    Oid::new(m.ids.job, i),
                    vec![Value::str(&format!("job-{i}")), Value::Int(i as i64)],
                )
            })
            .collect();
        vec![
            WalRecord::Genesis {
                schema: m.schema.clone(),
                catalog: m.catalog.clone(),
            },
            WalRecord::InsertObjects {
                ty: m.ids.job,
                obj_bytes: 50,
                objects,
            },
            WalRecord::SetMembers {
                coll: m.ids.job_extent,
                oids: (0..40).map(|i| Oid::new(m.ids.job, i)).collect(),
            },
            WalRecord::SetCatalog {
                catalog: m.catalog.clone(),
            },
            WalRecord::BuildIndexes { bump_epoch: true },
            WalRecord::BuildIndexes { bump_epoch: false },
            WalRecord::StatsRefresh { buckets: 32 },
        ]
    }

    #[test]
    fn canonical_roundtrip() {
        for rec in sample_records() {
            let bytes = rec.encode();
            let back = WalRecord::decode(&bytes).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(back.encode(), bytes, "{} not canonical", rec.kind());
        }
    }

    #[test]
    fn histogram_catalog_roundtrips() {
        let m = paper_model();
        let mut cat = m.catalog.clone();
        let h = Histogram::build((0..500).map(Value::Int).collect(), 16).unwrap();
        cat.set_histogram(m.ids.cities, vec![m.ids.city_mayor], m.ids.person_name, h);
        cat.set_fanout(m.ids.task_team_members, 12.5);
        cat.bump_stats_epoch();
        let rec = WalRecord::SetCatalog { catalog: cat };
        let bytes = rec.encode();
        let back = WalRecord::decode(&bytes).unwrap();
        let WalRecord::SetCatalog { catalog } = &back else {
            panic!("wrong variant");
        };
        assert!(catalog
            .histogram(m.ids.cities, &[m.ids.city_mayor], m.ids.person_name)
            .is_some());
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn truncation_never_panics() {
        for rec in sample_records() {
            let bytes = rec.encode();
            for cut in 0..bytes.len() {
                assert!(
                    WalRecord::decode(&bytes[..cut]).is_err(),
                    "{} prefix of {cut} bytes decoded",
                    rec.kind()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = WalRecord::StatsRefresh { buckets: 8 }.encode();
        bytes.push(0);
        assert_eq!(
            WalRecord::decode(&bytes).unwrap_err(),
            DecodeError::TrailingBytes
        );
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // SetMembers claiming u64::MAX members over a 4-byte body.
        let mut bytes = vec![TAG_SET_MEMBERS];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            WalRecord::decode(&bytes).unwrap_err(),
            DecodeError::BadLength
        );
    }
}
