//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! The container is offline, so no `crc32fast`; a 256-entry const table
//! gives the same checksums (`cksum`-compatible bit order as used by
//! zlib/PNG) at a few cycles per byte — more than enough for a log that
//! is I/O-bound anyway.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (zlib/PNG convention: init and final XOR with
/// `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_every_bit() {
        let base = crc32(b"open oodb wal");
        for i in 0..13 * 8 {
            let mut flipped = b"open oodb wal".to_vec();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), base, "bit {i} went undetected");
        }
    }
}
