//! Property-based adversarial testing of the WAL codec layers: record
//! round-trips through the canonical byte form, truncation at every
//! prefix length is a typed error, bit flips never panic, and the frame
//! reader never yields a payload that differs from what was written —
//! corruption either stops the scan or is absorbed after the last intact
//! frame, mirroring the longest-valid-prefix recovery contract.

use oodb_object::{CollectionId, Date, Object, Oid, TypeId, Value};
use oodb_wal::frame::{read_frame, write_frame, FrameError};
use oodb_wal::record::{DecodeError, WalRecord};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1.0e12f64..1.0e12).prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        "[ -~]{0,24}".prop_map(|s: String| Value::str(&s)),
        (1970u16..2100, 1u8..13, 1u8..29)
            .prop_map(|(y, m, d)| Value::Date(Date::from_ymd(y as i32, m as u32, d as u32))),
        arb_oid().prop_map(Value::Ref),
        proptest::collection::vec(arb_oid(), 0..6).prop_map(|mut v| {
            v.sort();
            v.dedup();
            Value::RefSet(v.into())
        }),
    ]
}

fn arb_oid() -> impl Strategy<Value = Oid> {
    (0usize..64, any::<u32>()).prop_map(|(ty, seq)| Oid::new(TypeId::from_index(ty), seq))
}

/// Records over arbitrary payloads (`Genesis`/`SetCatalog` carry a whole
/// schema + catalog and are exercised by the unit tests over the paper
/// model; here the focus is the length-prefixed collection codecs).
fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (
            0usize..32,
            1u32..4096,
            proptest::collection::vec(proptest::collection::vec(arb_value(), 0..6), 0..12),
        )
            .prop_map(|(ty, obj_bytes, slot_sets)| {
                let ty = TypeId::from_index(ty);
                let objects: Vec<Object> = slot_sets
                    .into_iter()
                    .enumerate()
                    .map(|(i, slots)| Object::new(Oid::new(ty, i as u32), slots))
                    .collect();
                WalRecord::InsertObjects {
                    ty,
                    obj_bytes,
                    objects,
                }
            }),
        (0usize..32, proptest::collection::vec(arb_oid(), 0..48)).prop_map(|(coll, oids)| {
            WalRecord::SetMembers {
                coll: CollectionId::from_index(coll),
                oids,
            }
        }),
        any::<bool>().prop_map(|bump_epoch| WalRecord::BuildIndexes { bump_epoch }),
        any::<u32>().prop_map(|buckets| WalRecord::StatsRefresh { buckets }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode → decode → encode is the identity on bytes: the canonical
    /// form is a fixed point, so re-encoding is a valid equality check
    /// for types without `PartialEq`.
    #[test]
    fn record_roundtrips_canonically(rec in arb_record()) {
        let bytes = rec.encode();
        let back = WalRecord::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Every strict prefix of a valid record is a typed decode error —
    /// the codec can never mistake a torn record for a whole one.
    #[test]
    fn every_truncation_is_a_typed_error(rec in arb_record(), cut in any::<u16>()) {
        let bytes = rec.encode();
        let cut = cut as usize % bytes.len().max(1);
        if cut < bytes.len() {
            prop_assert!(WalRecord::decode(&bytes[..cut]).is_err());
        }
    }

    /// A flipped bit never panics the decoder: it yields a typed error
    /// or a well-formed record (flips in value bytes change the payload;
    /// flips in page slack are canonicalized away). Either way the result
    /// re-encodes to a stable canonical form — no partially-corrupt
    /// record ever escapes the codec.
    #[test]
    fn bit_flips_never_panic(rec in arb_record(), at in any::<u16>(), bit in 0u8..8) {
        let mut bytes = rec.encode();
        let at = at as usize % bytes.len();
        bytes[at] ^= 1 << bit;
        if let Ok(back) = WalRecord::decode(&bytes) {
            let canon = back.encode();
            prop_assert_eq!(WalRecord::decode(&canon).expect("canonical form decodes").encode(), canon);
        }
    }

    /// Hostile bytes (not derived from any record) decode to a typed
    /// error without panicking or over-allocating.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = WalRecord::decode(&bytes);
    }

    /// Frame streams: whatever prefix of the file survives, the reader
    /// returns exactly the payloads whose frames are intact, in order,
    /// and reports the tear instead of inventing data.
    #[test]
    fn truncated_frame_stream_yields_exact_prefix(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..8),
        cut in any::<u16>(),
    ) {
        let mut buf = Vec::new();
        let mut ends = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p);
            ends.push(buf.len());
        }
        let cut = cut as usize % (buf.len() + 1);
        let buf = &buf[..cut];
        let whole = ends.iter().take_while(|&&e| e <= cut).count();
        let mut pos = 0;
        for expect in payloads.iter().take(whole) {
            match read_frame(buf, &mut pos) {
                Ok(Some(p)) => prop_assert_eq!(p, &expect[..]),
                other => prop_assert!(false, "intact frame misread: {:?}", other),
            }
        }
        // Past the intact prefix: clean end or a torn tail, never data.
        match read_frame(buf, &mut pos) {
            Ok(None) | Err(FrameError::Truncated) => {}
            other => prop_assert!(false, "tail must end or tear: {:?}", other),
        }
    }

    /// A bit flip anywhere in a frame stream never panics the reader and
    /// never corrupts a payload that precedes the flip.
    #[test]
    fn flipped_frame_stream_never_yields_wrong_prefix(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..8),
        at in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        let mut ends = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p);
            ends.push(buf.len());
        }
        let at = at as usize % buf.len();
        buf[at] ^= 1 << bit;
        let untouched = ends.iter().take_while(|&&e| e <= at).count();
        let mut pos = 0;
        let mut read = 0usize;
        while let Ok(Some(p)) = read_frame(&buf, &mut pos) {
            if read < untouched {
                prop_assert_eq!(p, &payloads[read][..]);
            }
            read += 1;
        }
        prop_assert!(read >= untouched, "flip at {at} lost an intact frame");
    }
}

/// Decode must also reject records whose trailing bytes extend a valid
/// record — a frame carries exactly one record.
#[test]
fn trailing_garbage_after_valid_record_is_rejected() {
    let mut bytes = WalRecord::StatsRefresh { buckets: 9 }.encode();
    bytes.push(0);
    assert_eq!(
        WalRecord::decode(&bytes).unwrap_err(),
        DecodeError::TrailingBytes
    );
}
