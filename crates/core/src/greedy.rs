//! The ObjectStore-style greedy baseline.
//!
//! "ObjectStore's query optimizer uses a fixed, greedy strategy designed
//! to exploit any available indices. We show that such a greedy strategy
//! will not always lead to the optimal plan." (§4, Table 3.)
//!
//! The strategy, reconstructed from the paper's Figure 13:
//!
//! 1. if any conjunct over the base collection (directly or through a
//!    single-valued path) has an index, use the *first* such index for the
//!    initial scan — no cost comparison;
//! 2. replay the query's Unnest/Mat chain; whenever a materialized
//!    component carries an indexed conjunct, resolve it with an index scan
//!    joined by hybrid hash join (use the index because it exists);
//! 3. everything left becomes filters (after assembling the components
//!    they mention);
//! 4. project on top.
//!
//! No costing happens during construction; costs are annotated afterwards
//! through the same estimator as the real optimizer, so Table 3 compares
//! like against like.

use crate::config::OptimizerConfig;
use crate::cost::CostParams;
use crate::model::OodbModel;
use crate::optimizer::annotate_physical;
use oodb_algebra::{
    CmpOp, LogicalOp, LogicalPlan, Operand, PhysicalOp, PhysicalPlan, PlanEst, Pred, QueryEnv,
    Term, VarId, VarOrigin,
};
use oodb_object::Value;

/// One step of the decomposed linear query.
enum ChainStep {
    Mat(VarId),
    Unnest(VarId),
}

/// Produces the greedy plan for a linear query
/// (`Project? · Select* · (Mat|Unnest)* · Get`). Returns `None` for plan
/// shapes outside the greedy strategy's repertoire (explicit joins, set
/// operators) — the real ObjectStore optimizer had the same limitation.
pub fn greedy_plan(env: &QueryEnv, params: CostParams, plan: &LogicalPlan) -> Option<PhysicalPlan> {
    let model = OodbModel::new(env, params, OptimizerConfig::default());

    // ---- decompose -------------------------------------------------------
    let mut project: Option<Vec<Operand>> = None;
    let mut terms: Vec<Term> = Vec::new();
    let mut chain: Vec<ChainStep> = Vec::new();
    let mut cur = plan;
    loop {
        match &cur.op {
            LogicalOp::Project { items } => {
                if project.is_some() || !terms.is_empty() || !chain.is_empty() {
                    return None;
                }
                project = Some(items.clone());
                cur = &cur.children[0];
            }
            LogicalOp::Select { pred } => {
                terms.extend(env.preds.pred(*pred).terms.iter().cloned());
                cur = &cur.children[0];
            }
            LogicalOp::Mat { out } => {
                chain.push(ChainStep::Mat(*out));
                cur = &cur.children[0];
            }
            LogicalOp::Unnest { out } => {
                chain.push(ChainStep::Unnest(*out));
                cur = &cur.children[0];
            }
            LogicalOp::Get { coll, var } => {
                chain.reverse(); // bottom-up order
                return build(&model, env, *coll, *var, chain, terms, project);
            }
            LogicalOp::Join { .. } | LogicalOp::SetOp { .. } => return None,
        }
    }
}

fn const_eq_term(t: &Term) -> Option<(VarId, oodb_object::FieldId, Value)> {
    if t.op != CmpOp::Eq {
        return None;
    }
    match (&t.left, &t.right) {
        (Operand::Attr { var, field }, Operand::Const(v))
        | (Operand::Const(v), Operand::Attr { var, field }) => Some((*var, *field, v.clone())),
        _ => None,
    }
}

fn node(op: PhysicalOp, children: Vec<PhysicalPlan>) -> PhysicalPlan {
    PhysicalPlan {
        op,
        children,
        est: PlanEst::default(),
    }
}

fn build(
    model: &OodbModel<'_>,
    env: &QueryEnv,
    base_coll: oodb_object::CollectionId,
    base_var: VarId,
    chain: Vec<ChainStep>,
    mut terms: Vec<Term>,
    project: Option<Vec<Operand>>,
) -> Option<PhysicalPlan> {
    // ---- 1. base access: grab the first index that matches any term ----
    let mut base: Option<PhysicalPlan> = None;
    for (i, t) in terms.iter().enumerate() {
        let Some((v, f, _)) = const_eq_term(t) else {
            continue;
        };
        let Some((coll, bvar, links)) = model.index_path_of(v) else {
            continue;
        };
        if coll != base_coll || bvar != base_var {
            continue;
        }
        if let Some((idx_id, _)) = env.catalog.find_index(coll, &links, f) {
            let pred = env.preds.intern(Pred::term(t.clone()));
            base = Some(node(
                PhysicalOp::IndexScan {
                    index: idx_id,
                    var: base_var,
                    pred,
                },
                vec![],
            ));
            terms.remove(i);
            break;
        }
    }
    let mut current = base.unwrap_or_else(|| {
        node(
            PhysicalOp::FileScan {
                coll: base_coll,
                var: base_var,
            },
            vec![],
        )
    });

    // ---- 2. replay the chain, exploiting component indexes ------------
    for step in chain {
        match step {
            ChainStep::Unnest(out) => {
                current = node(PhysicalOp::AlgUnnest { out }, vec![current]);
            }
            ChainStep::Mat(out) => {
                // Look for an indexed conjunct on this component.
                let mut joined = false;
                if let Some(domain) = model.var_domain(out) {
                    for (i, t) in terms.iter().enumerate() {
                        let Some((v, f, _)) = const_eq_term(t) else {
                            continue;
                        };
                        if v != out {
                            continue;
                        }
                        if let Some((idx_id, _)) = env.catalog.find_index(domain, &[], f) {
                            let scan_pred = env.preds.intern(Pred::term(t.clone()));
                            let index_scan = node(
                                PhysicalOp::IndexScan {
                                    index: idx_id,
                                    var: out,
                                    pred: scan_pred,
                                },
                                vec![],
                            );
                            let ref_operand = match env.scopes.var(out).origin {
                                VarOrigin::Mat {
                                    src,
                                    field: Some(fld),
                                } => Operand::RefField {
                                    var: src,
                                    field: fld,
                                },
                                VarOrigin::Mat { src, field: None } => Operand::VarRef(src),
                                _ => return None,
                            };
                            let join_pred =
                                env.preds.cmp(ref_operand, CmpOp::Eq, Operand::VarOid(out));
                            // Hash table on the indexed (referenced) side.
                            current = node(
                                PhysicalOp::HybridHashJoin { pred: join_pred },
                                vec![index_scan, current],
                            );
                            terms.remove(i);
                            joined = true;
                            break;
                        }
                    }
                }
                if !joined {
                    current = node(
                        PhysicalOp::Assembly {
                            targets: vec![out],
                            window: model.config.assembly_window,
                        },
                        vec![current],
                    );
                }
            }
        }
    }

    // ---- 3. residual filters -------------------------------------------
    if !terms.is_empty() {
        let pred = env.preds.intern(Pred { terms });
        current = node(PhysicalOp::Filter { pred }, vec![current]);
    }

    // ---- 4. projection ----------------------------------------------------
    if let Some(items) = project {
        current = node(PhysicalOp::AlgProject { items }, vec![current]);
    }

    Some(annotate_physical(model, &current).0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_algebra::QueryBuilder;
    use oodb_object::paper::paper_model;

    /// Query 4 with both indexes: greedy uses both (Figure 13), pairing
    /// the time index scan with a hash join against the name index scan.
    #[test]
    fn greedy_query4_uses_both_indexes() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (tasks, t) = qb.get(m.ids.tasks, "t");
        let (unn, mm) = qb.unnest(tasks, t, m.ids.task_team_members, "m");
        let (matd, e) = qb.mat_deref(unn, mm, "e");
        let name_t = qb.term(
            Operand::Attr {
                var: e,
                field: m.ids.person_name,
            },
            CmpOp::Eq,
            Operand::Const(Value::str("Fred")),
        );
        let time_t = qb.term(
            Operand::Attr {
                var: t,
                field: m.ids.task_time,
            },
            CmpOp::Eq,
            Operand::Const(Value::Int(100)),
        );
        let pred = qb.conj(vec![name_t, time_t]);
        let q = qb.select(matd, pred);
        let env = qb.into_env();

        let plan = greedy_plan(&env, CostParams::default(), &q).expect("greedy plan");
        let rendered = oodb_algebra::display::render_physical(&env, &plan);
        // Both index scans present (time on Tasks, name on Employees).
        let index_scans = plan
            .iter_ops()
            .into_iter()
            .filter(|op| matches!(op, PhysicalOp::IndexScan { .. }))
            .count();
        assert_eq!(index_scans, 2, "{rendered}");
        assert!(
            plan.contains_op(&|op| matches!(op, PhysicalOp::HybridHashJoin { .. })),
            "{rendered}"
        );
        assert!(
            !plan.contains_op(&|op| matches!(op, PhysicalOp::Assembly { .. })),
            "greedy with both indexes avoids assembly:\n{rendered}"
        );
    }

    /// Without any index, greedy degenerates to scan + unnest + assembly +
    /// filter — identical to the naive plan.
    #[test]
    fn greedy_without_indexes_degenerates_to_naive() {
        let m = paper_model();
        let catalog = m.catalog.with_only_indexes(&[]);
        let mut qb = QueryBuilder::new(m.schema.clone(), catalog);
        let (tasks, t) = qb.get(m.ids.tasks, "t");
        let (unn, mm) = qb.unnest(tasks, t, m.ids.task_team_members, "m");
        let (matd, e) = qb.mat_deref(unn, mm, "e");
        let pred = qb.conj(vec![
            qb.term(
                Operand::Attr {
                    var: e,
                    field: m.ids.person_name,
                },
                CmpOp::Eq,
                Operand::Const(Value::str("Fred")),
            ),
            qb.term(
                Operand::Attr {
                    var: t,
                    field: m.ids.task_time,
                },
                CmpOp::Eq,
                Operand::Const(Value::Int(100)),
            ),
        ]);
        let q = qb.select(matd, pred);
        let env = qb.into_env();

        let plan = greedy_plan(&env, CostParams::default(), &q).expect("greedy plan");
        assert!(matches!(plan.op, PhysicalOp::Filter { .. }));
        assert!(plan.contains_op(&|op| matches!(op, PhysicalOp::FileScan { .. })));
        assert!(plan.contains_op(&|op| matches!(op, PhysicalOp::Assembly { .. })));
        assert!(!plan.contains_op(&|op| matches!(op, PhysicalOp::IndexScan { .. })));
    }

    /// Greedy declines plans with explicit joins.
    #[test]
    fn greedy_rejects_join_shapes() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (emp, e) = qb.get(m.ids.employees, "e");
        let (dept, d) = qb.get(m.ids.department_extent, "d");
        let pred = qb.ref_eq(e, m.ids.emp_dept, d);
        let q = qb.join(emp, dept, pred);
        let env = qb.into_env();
        assert!(greedy_plan(&env, CostParams::default(), &q).is_none());
    }
}
